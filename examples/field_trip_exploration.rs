//! Example 3 of the paper: Alexia's exploratory "American history" query.
//!
//! The results span the whole country and many topics, so a single ranked
//! list is a poor presentation. SocialScope groups them — geographically,
//! topically, and by *who* endorsed them (classmates vs. soccer team) — and
//! attaches explanations and related topics.
//!
//! Run with `cargo run -p socialscope --example field_trip_exploration`.

use socialscope::discovery::analyzer::assoc::{mine_association_rules, related_tags};
use socialscope::prelude::*;

fn main() {
    let mut b = GraphBuilder::new();
    let alexia = b.add_user_with_interests("Alexia", &["history", "soccer"]);
    let classmates: Vec<_> = (0..3).map(|i| b.add_user(&format!("Classmate{i}"))).collect();
    let team: Vec<_> = (0..3).map(|i| b.add_user(&format!("Teammate{i}"))).collect();
    let jane = b.add_user("Jane");
    for &c in &classmates {
        b.befriend(alexia, c);
    }
    for &t in &team {
        b.befriend(alexia, t);
    }

    let gettysburg = b.add_item_with_keywords(
        "Gettysburg Battlefield",
        &["destination"],
        &["american", "history", "war", "pennsylvania"],
    );
    let liberty = b.add_item_with_keywords(
        "Liberty Bell",
        &["destination"],
        &["american", "history", "independence", "philadelphia"],
    );
    let mount_vernon = b.add_item_with_keywords(
        "Mount Vernon",
        &["destination"],
        &["american", "history", "virginia"],
    );
    let soccer_hall = b.add_item_with_keywords(
        "National Soccer Hall of Fame",
        &["destination"],
        &["american", "history", "soccer", "texas"],
    );

    // Classmates endorse the independence-era sites; team mates the soccer
    // hall; Jane comments on many of them.
    for &c in &classmates {
        b.visit(c, gettysburg);
        b.visit(c, liberty);
        b.tag(c, liberty, &["independence", "history"]);
        b.tag(c, gettysburg, &["war", "history"]);
    }
    for &t in &team {
        b.visit(t, soccer_hall);
        b.tag(t, soccer_hall, &["soccer", "history"]);
    }
    for item in [gettysburg, liberty, mount_vernon, soccer_hall] {
        b.review(jane, item, "left a comment");
    }
    let mut graph = b.build();

    // Offline content analysis: derive topics and similarity links.
    let report = ContentAnalyzer::default().analyze(&mut graph);
    println!(
        "Content analysis: {} topics, {} belong links, {} match links, {} rules",
        report.topics_added,
        report.belong_links_added,
        report.match_links_added,
        report.rules_mined
    );

    // Discovery.
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(alexia, "American history"));
    println!("\n{} relevant places found for \"American history\"", msg.len());

    // Presentation: pick the most meaningful grouping automatically.
    let organizer = InformationOrganizer::default();
    let presentations = organizer.best_presentation(&graph, &msg, "keywords");
    for p in &presentations {
        println!("\nGrouping {:?}: meaningfulness={:.3}", p.strategy, p.meaningfulness.score);
        for group in &p.groups {
            let names: Vec<String> = group
                .items
                .iter()
                .filter_map(|i| graph.node(*i).and_then(|n| n.name().map(str::to_string)))
                .collect();
            let expl = group_explanation(&graph, alexia, group);
            println!("  [{}] {:?} — {}", group.label, names, expl.summary);
        }
    }

    // Related topics via association rules (e.g. "Independence War").
    let rules = mine_association_rules(&graph, 0.05, 0.4);
    let related = related_tags(&rules, &["history".to_string()], 3);
    println!("\nRelated topics for 'history': {related:?}");
}
