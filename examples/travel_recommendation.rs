//! Example 1 + Example 5 of the paper: John in Denver.
//!
//! John searches for "Denver attractions"; pure keyword relevance cannot
//! discriminate between the many attractions, so SocialScope combines it
//! with social relevance, and the collaborative-filtering pipeline of
//! Example 5 (expressed in the algebra) recommends the ballpark museum a
//! fellow baseball fan endorsed.
//!
//! Run with `cargo run -p socialscope --example travel_recommendation`.

use socialscope::discovery::recommend::algebra_cf::{collaborative_filtering, CfConfig};
use socialscope::prelude::*;

fn main() {
    // A Denver-centric slice of Y!Travel.
    let mut b = GraphBuilder::new();
    let john = b.add_user_with_interests("John", &["baseball"]);
    let alice = b.add_user_with_interests("Alice", &["baseball"]);
    let bob = b.add_user("Bob");

    let coors = b.add_item_with_keywords(
        "Coors Field",
        &["destination"],
        &["denver", "attractions", "baseball"],
    );
    let museum = b.add_item_with_keywords(
        "B's Ballpark Museum",
        &["destination"],
        &["denver", "attractions", "baseball", "museum"],
    );
    let red_rocks = b.add_item_with_keywords(
        "Red Rocks Amphitheatre",
        &["destination"],
        &["denver", "attractions", "music"],
    );
    let game = b.add_item_with_keywords(
        "Yankees vs Rockies",
        &["destination", "event"],
        &["denver", "baseball", "game"],
    );

    // John's history: he has visited ballparks before.
    b.visit(john, coors);
    // Alice shares John's taste and also visited the museum and the game.
    b.visit(alice, coors);
    b.visit(alice, museum);
    b.visit(alice, game);
    // Bob has different taste.
    b.visit(bob, red_rocks);
    b.befriend(john, alice);
    b.befriend(john, bob);
    let graph = b.build();

    // --- Example 1: the query path ------------------------------------
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(john, "Denver attractions"));
    println!("Example 1 — \"Denver attractions\" for John:");
    for r in &msg.ranked {
        let name =
            graph.node(r.item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        println!(
            "  {:<26} combined={:.3} semantic={:.3} social={:.3}",
            name, r.combined, r.semantic, r.social
        );
    }

    // --- Example 5: collaborative filtering in the algebra -------------
    let recs = collaborative_filtering(&graph, john, &CfConfig::default());
    println!("\nExample 5 — collaborative filtering for John:");
    for rec in &recs {
        let name =
            graph.node(rec.item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        println!("  {:<26} score={:.3}", name, rec.score);
    }
    assert!(
        recs.iter().any(|r| r.item == museum),
        "the ballpark museum should be recommended to John"
    );
}
