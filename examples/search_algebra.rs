//! Example 4 of the paper, verbatim: "Find John's friends who have visited
//! travel destinations near Denver and all their activities", expressed as
//! a composition of algebra operators, evaluated both directly and as an
//! optimized logical plan.
//!
//! Run with `cargo run -p socialscope --example search_algebra`.

use socialscope::prelude::*;

fn main() {
    // The site: John, his friends, destinations near Denver and elsewhere.
    let mut b = GraphBuilder::new();
    let john = b.add_user("John");
    let mary = b.add_user("Mary");
    let pete = b.add_user("Pete");
    let sara = b.add_user("Sara"); // not John's friend
    b.befriend(john, mary);
    b.befriend(john, pete);

    let red_rocks = b.add_item_with_keywords("Red Rocks", &["destination"], &["near", "denver"]);
    let zoo = b.add_item_with_keywords("Denver Zoo", &["destination"], &["near", "denver"]);
    let eiffel = b.add_item_with_keywords("Eiffel Tower", &["destination"], &["paris"]);

    b.visit(mary, red_rocks);
    b.tag(mary, red_rocks, &["hiking"]);
    b.visit(pete, eiffel);
    b.visit(sara, zoo);
    b.rate(mary, zoo, 4.0);
    let g = b.build();

    // --- Direct operator formulation (the paper's G1 … G7) --------------
    let john_nodes = node_select(&g, &Condition::on_attr("id", john.raw() as i64), None);
    // G1: John's friendship links.
    let g1 = link_select(
        &semi_join(&g, &john_nodes, DirectionalCondition::src_src()),
        &Condition::on_attr("type", "friend"),
        None,
    );
    // G2: visits of destinations near Denver.
    let near_denver = node_select(
        &g,
        &Condition::on_attr("type", "destination").and_keywords(["near", "denver"]),
        None,
    );
    let g2 = link_select(
        &semi_join(&g, &near_denver, DirectionalCondition::tgt_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );
    // G3: John's friends who visited places near Denver.
    let g3 = semi_join(&g1, &g2, DirectionalCondition::tgt_src());
    // G4: the places near Denver visited by John's friends.
    let g4 = semi_join(&g2, &g1, DirectionalCondition::src_tgt());
    // G5 = G3 ∪ G4.
    let g5 = union(&g3, &g4);
    // G6: all activities of those friends.
    let friends_with_visits = semi_join(&g, &g3, DirectionalCondition::src_tgt());
    let g6 = link_select(&friends_with_visits, &Condition::on_attr("type", "act"), None);
    // G7 = G5 ∪ G6.
    let g7 = union(&g5, &g6);

    println!("Example 4 result graph: {} nodes, {} links", g7.node_count(), g7.link_count());
    for link in g7.links() {
        let src = g.node(link.src).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        let tgt = g.node(link.tgt).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        println!("  {src:<8} -[{}]-> {tgt}", link.type_values().join(","));
    }
    assert!(g7.has_node(mary), "Mary visited Red Rocks and is John's friend");
    assert!(!g7.has_node(sara), "Sara is not John's friend");

    // --- The same task as a logical plan, optimized ----------------------
    let john_sel = PlanBuilder::base().node_select(Condition::on_attr("id", john.raw() as i64));
    let friends_plan = PlanBuilder::base()
        .semi_join(&john_sel, DirectionalCondition::src_src())
        .link_select(Condition::on_attr("type", "friend"));
    let near_plan = PlanBuilder::base()
        .node_select(Condition::on_attr("type", "destination").and_keywords(["near", "denver"]));
    let visits_plan = PlanBuilder::base()
        .semi_join(&near_plan, DirectionalCondition::tgt_src())
        .link_select(Condition::on_attr("type", "visit"));
    let plan = friends_plan.semi_join(&visits_plan, DirectionalCondition::tgt_src()).build();

    let (optimized, report) = Optimizer::new().optimize(&plan);
    println!(
        "\nLogical plan ({} operators, {} after optimization):",
        plan.size(),
        optimized.size()
    );
    println!("{}", optimized.explain());
    println!("Optimizer rules applied: {:?}", report.rules_applied);

    let mut ev = Evaluator::new(&g);
    let result = ev.evaluate(&optimized).expect("plan evaluates");
    println!("Plan result: {} nodes, {} links", result.node_count(), result.link_count());
    assert_eq!(result.link_id_set(), g3.link_id_set());
}
