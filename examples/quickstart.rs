//! Quickstart: build a tiny social content site, run a query that combines
//! semantic and social relevance, and print the grouped, explained results.
//!
//! Run with `cargo run -p socialscope --example quickstart`.

use socialscope::prelude::*;

fn main() {
    // 1. Build a small Y!Travel-like site.
    let mut b = GraphBuilder::new();
    let john = b.add_user_with_interests("John", &["baseball"]);
    let mary = b.add_user("Mary");
    let pete = b.add_user("Pete");
    b.befriend(john, mary);
    b.befriend(john, pete);

    let coors = b.add_item_with_keywords(
        "Coors Field",
        &["destination"],
        &["denver", "baseball", "stadium"],
    );
    let museum = b.add_item_with_keywords(
        "B's Ballpark Museum",
        &["destination"],
        &["denver", "baseball", "museum"],
    );
    let zoo = b.add_item_with_keywords("City Zoo", &["destination"], &["animals", "wildlife"]);

    b.visit(mary, coors);
    b.tag(mary, coors, &["baseball"]);
    b.visit(pete, museum);
    b.visit(pete, zoo);
    let graph = b.build();

    println!("Site: {} nodes, {} links", graph.node_count(), graph.link_count());

    // 2. Discover relevant items for John's query.
    let query = UserQuery::keywords_for(john, "Denver baseball");
    let msg = InformationDiscoverer::default().discover(&graph, &query);
    println!("\nResults for \"Denver baseball\" (semantic + social):");
    for r in &msg.ranked {
        let name =
            graph.node(r.item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        println!(
            "  {:<22} combined={:.3} (semantic={:.3}, social={:.3})",
            name, r.combined, r.semantic, r.social
        );
    }

    // 3. Group and explain the results.
    let organizer = InformationOrganizer::default();
    let presentation = organizer.organize(&graph, &msg, GroupingStrategy::Social { theta: 0.3 });
    println!("\nGroups (social grouping):");
    for group in &presentation.groups {
        println!("  [{}] {} item(s)", group.label, group.items.len());
        for item in &group.items {
            let expl = aggregate_explanation(&graph, john, *item);
            let name =
                graph.node(*item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
            println!("     - {:<22} {}", name, expl.summary);
        }
    }

    // 4. Pure recommendations (no query).
    let recs = recommend_for_user(&graph, john, &[], 3);
    println!("\nRecommendations for John:");
    for rec in recs {
        let name =
            graph.node(rec.item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        println!("  {:<22} score={:.3} via {}", name, rec.score, rec.strategy);
    }
}
