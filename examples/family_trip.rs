//! Example 2 of the paper: Selma's family trip to Barcelona.
//!
//! Selma is well connected to musician friends, but none of them can inform
//! a family-with-babies trip. SocialScope analyzes her connections, finds
//! them unsuitable for this query, and falls back to topic experts to
//! recommend baby-friendly attractions.
//!
//! Run with `cargo run -p socialscope --example family_trip`.

use socialscope::prelude::*;

fn main() {
    let mut b = GraphBuilder::new();
    let selma = b.add_user_with_interests("Selma", &["music"]);

    // Her musician friends: plenty of activity, none of it family travel.
    let musicians: Vec<_> =
        (0..4).map(|i| b.add_user_with_interests(&format!("Musician{i}"), &["music"])).collect();
    let jazz_bar =
        b.add_item_with_keywords("Jamboree Jazz Club", &["destination"], &["barcelona", "music"]);
    for &m in &musicians {
        b.befriend(selma, m);
        b.visit(m, jazz_bar);
    }

    // Parents who have made similar family trips (the "experts").
    let parents: Vec<_> =
        (0..3).map(|i| b.add_user_with_interests(&format!("Parent{i}"), &["family"])).collect();
    let parc = b.add_item_with_keywords(
        "Parc de la Ciutadella",
        &["destination"],
        &["barcelona", "family", "babies", "park"],
    );
    let aquarium = b.add_item_with_keywords(
        "L'Aquarium de Barcelona",
        &["destination"],
        &["barcelona", "family", "kids"],
    );
    for &p in &parents {
        b.tag(p, parc, &["family", "babies"]);
        b.tag(p, aquarium, &["family", "kids"]);
    }
    let graph = b.build();

    let query = UserQuery::keywords_for(selma, "Barcelona family trip with babies");
    let msg = InformationDiscoverer::default().discover(&graph, &query);

    println!("Selma's query: \"Barcelona family trip with babies\"");
    println!("(her musician friends carry no signal for it — expert fallback applies)\n");
    for r in &msg.ranked {
        let name =
            graph.node(r.item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
        println!(
            "  {:<26} combined={:.3} semantic={:.3} social={:.3}",
            name, r.combined, r.semantic, r.social
        );
    }

    let top = msg.ranked.first().expect("results");
    let top_name =
        graph.node(top.item).and_then(|n| n.name().map(str::to_string)).unwrap_or_default();
    println!("\nRecommended first: {top_name}");
    assert!(
        top_name.contains("Parc") || top_name.contains("Aquarium"),
        "a family-friendly attraction should rank first"
    );
}
