//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Exposes `parking_lot`'s poison-free locking API (`lock()` returns the
//! guard directly). Poisoning from the underlying std primitives is ignored,
//! matching `parking_lot` semantics where a panicking holder does not poison
//! the lock. Performance characteristics are std's, not parking_lot's; swap
//! `[workspace.dependencies] parking_lot` to crates.io when contended-lock
//! throughput starts to matter.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably access the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
