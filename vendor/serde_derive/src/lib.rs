//! Offline no-op stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds in environments without network access, so the real
//! crates.io dependency graph is unavailable. SocialScope only *derives*
//! `Serialize` / `Deserialize` on its public types (there is no serializer in
//! the tree yet), so empty derive expansions are sufficient: the attribute
//! compiles away and the types stay exactly as written. When a real
//! serialization backend lands, point `[workspace.dependencies] serde` at
//! crates.io and delete this shim.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts the same helper attribute surface as
/// the real macro and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts the same helper attribute surface
/// as the real macro and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
