//! Offline stand-in for the `rand` crate, covering the rand 0.8 API surface
//! SocialScope uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool,
//! gen}`, and `seq::SliceRandom::{choose, shuffle}`.
//!
//! The generator is SplitMix64 — statistically fine for synthetic-workload
//! generation and benchmarks, and fully deterministic for a given seed, which
//! is all the workspace requires. It is NOT cryptographically secure and the
//! streams differ from the real `StdRng`; swap `[workspace.dependencies]
//! rand` to crates.io if bit-compatible streams ever matter.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit values. Mirrors `rand::RngCore`.
pub trait RngCore {
    /// Return the next value of the underlying stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64`. Mirrors
/// `rand::SeedableRng` far enough for `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniformly-sampled value. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_inclusive_f64(rng) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// A uniform draw from `[0, 1)` using the top 53 bits of the stream.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform draw from `[0, 1]`.
fn unit_inclusive_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
}

/// Convenience sampling methods over any [`RngCore`]. Mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Sample a value of a supported type uniformly over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable over their full domain via [`Rng::gen`]. Stands in for
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generator types, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Alias: the shim uses one generator for both `StdRng` and `SmallRng`.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related helpers, mirroring `rand::seq`.

    use super::Rng;

    /// Extension methods on slices. Mirrors `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}
