//! Offline no-op stand-in for the `thiserror-impl` proc-macro crate.
//!
//! The SocialScope error enums currently implement `Display` and
//! `std::error::Error` by hand, so `#[derive(Error)]` only has to parse and
//! vanish. Swap `[workspace.dependencies] thiserror` to crates.io when the
//! hand-written impls should be replaced by generated ones.

use proc_macro::TokenStream;

/// No-op `#[derive(Error)]`: accepts `#[error(...)]`, `#[from]` and
/// `#[source]` helper attributes and expands to nothing.
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
