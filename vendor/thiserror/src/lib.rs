//! Offline API-surface stand-in for `thiserror`.
//!
//! Re-exports a no-op `Error` derive so `use thiserror::Error;` +
//! `#[derive(Error)]` compile in offline builds. The workspace's error types
//! implement `Display`/`std::error::Error` by hand today; this shim exists so
//! the workspace dependency entry required by the roadmap is wired and
//! swappable for the real crate without touching member manifests.

pub use thiserror_impl::Error;
