//! Collection strategies. Mirrors `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet`s whose size is drawn from `size`.
///
/// Duplicates drawn from the element strategy collapse, so the resulting set
/// may be smaller than the drawn size; generation retries a bounded number of
/// times to reach the lower bound.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.usize_in(self.size.start, self.size.end);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 20 + 20 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
