//! Offline minimal stand-in for `proptest`.
//!
//! Implements the subset the SocialScope property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range / tuple /
//! string-pattern strategies, `prop::collection::{vec, btree_set}`,
//! `Strategy::prop_map`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * inputs are drawn from a deterministic per-test generator (seeded from
//!   the test name), so runs are reproducible but do not explore new seeds
//!   across invocations;
//! * there is **no shrinking** — a failing case reports the raw inputs;
//! * string strategies accept only the `[a-z]`/`[a-z0-9]`-class,
//!   `{m,n}`-quantified regex shapes the tests use, and fall back to short
//!   lowercase strings for anything fancier.
//!
//! Swap `[workspace.dependencies] proptest` to crates.io for full shrinking
//! and persistence support; test code is source-compatible.

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a function
/// that draws inputs from the strategies `config.cases` times and runs the
/// body on each draw. As with the real macro, attributes on the item —
/// including the `#[test]` that makes it a test — are written inside the
/// macro invocation and re-emitted verbatim.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strategy),+ ) $body )*
        }
    };
}

/// Assert a condition inside a property test. Mirrors `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test. Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test. Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
