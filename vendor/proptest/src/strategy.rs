//! Value-generation strategies. Mirrors the generation half of
//! `proptest::strategy` (there is no shrinking in this shim).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`. Mirrors
/// `proptest::strategy::Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value. Mirrors
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String strategies: a `&str` is interpreted as a regex the generated
/// strings must match, as in real proptest. Only character-class shapes like
/// `[a-z]{1,6}` or `[a-z0-9]{3}` are understood; anything else falls back to
/// 1–8 lowercase letters.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min_len, max_len) =
            parse_simple_class(self).unwrap_or((('a'..='z').collect(), 1, 8));
        let len = rng.usize_in(min_len, max_len + 1);
        (0..len).map(|_| alphabet[rng.usize_in(0, alphabet.len())]).collect()
    }
}

/// Parse `[<ranges>]{m,n}` / `[<ranges>]{m}` / `[<ranges>]` into an alphabet
/// and length bounds.
fn parse_simple_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            chars.next();
            let end = chars.next()?;
            alphabet.extend(c..=end);
        } else {
            alphabet.push(c);
        }
    }
    if alphabet.is_empty() {
        return None;
    }

    let (min_len, max_len) = if rest.is_empty() {
        (1, 1)
    } else {
        let quant = rest.strip_prefix('{')?.strip_suffix('}')?;
        match quant.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let exact = quant.trim().parse().ok()?;
                (exact, exact)
            }
        }
    };
    Some((alphabet, min_len, max_len))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
