//! Test configuration and the deterministic input generator.

/// Per-test configuration. Mirrors the fields of
/// `proptest::test_runner::Config` that the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of input cases each property test draws and checks.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator feeding the strategies. Seeded from the
/// test name so every test explores its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from a test name (FNV-1a over its bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
