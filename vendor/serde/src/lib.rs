//! Offline API-surface stand-in for `serde`.
//!
//! SocialScope's types import `serde::{Deserialize, Serialize}` and derive
//! both, but nothing in the tree serializes yet, so the traits only need to
//! exist by name. The derive macros (re-exported from the sibling
//! `serde_derive` shim) expand to nothing. When a serialization backend is
//! added, retarget `[workspace.dependencies] serde` at crates.io — member
//! crates import the same paths either way.

/// Marker trait mirroring `serde::Serialize`'s name and path.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s name and path.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::DeserializeOwned;
}
