//! Offline minimal stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the SocialScope benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId::new`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer instead
//! of criterion's statistical machinery. Output is one line per benchmark:
//!
//! ```text
//! topk_processing/exact_index_ta/5        median   83.412 µs/iter (11 samples x 60 iters)
//! ```
//!
//! There is no outlier analysis, no HTML report and no saved baselines; swap
//! `[workspace.dependencies] criterion` to crates.io when those matter.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// The benchmark manager. Mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 11 }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 11, f);
        self
    }
}

/// A named group of benchmarks sharing configuration. Mirrors
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, D: ?Sized, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &D),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group. (The real criterion emits summary statistics here.)
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
/// Mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId { function: function.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId { function, parameter: None }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

/// The timing harness handed to benchmark closures. Mirrors
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`, keeping results out of the
    /// optimizer's reach.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate an iteration count, collect `sample_size` samples, print the
/// median time per iteration.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration pass: one iteration, to size the per-sample batch.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{label:<55} median {}/iter ({sample_size} samples x {iters} iters)", human(median));
}

/// Render a duration in seconds with an appropriate unit.
fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group. Mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs benchmark groups. Mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
