//! Integration: content management — indexes and clustering over generated
//! sites, the three deployment models, and the content integrator under
//! failure injection.

use socialscope::content::models::all_models;
use socialscope::content::topk::top_k_exhaustive;
use socialscope::content::{ClusteredIndex, ControlLevel, SimulatedRemoteSite};
use socialscope::prelude::*;

#[test]
fn clustered_indexes_trade_space_for_exact_computations_on_generated_sites() {
    let site = generate_site(&SiteConfig { users: 80, items: 100, ..SiteConfig::tiny() });
    let model = SiteModel::from_graph(&site.graph);
    let exact = ExactIndex::build(&model);
    let clustering = NetworkBasedClustering.cluster(&model, 0.3);
    let clustered = ClusteredIndex::build(&model, clustering);

    let es = exact.stats();
    let cs = clustered.stats();
    assert!(cs.entries <= es.entries);
    assert!(cs.lists <= es.lists);

    // Query correctness + cost accounting for a handful of users.
    let keywords = vec!["baseball".to_string(), "museum".to_string()];
    for &user in site.users.iter().take(10) {
        let exact_res = exact.query(user, &keywords, 5);
        let clustered_res = clustered.query(&model, user, &keywords, 5);
        let oracle = top_k_exhaustive(model.items(), 5, |i| model.query_score(i, user, &keywords));
        let positives = |v: &[(NodeId, f64)]| {
            v.iter().map(|(_, s)| *s).filter(|s| *s > 0.0).collect::<Vec<_>>()
        };
        assert_eq!(positives(&exact_res.ranked), positives(&oracle.ranked));
        assert_eq!(positives(&clustered_res.result.ranked), positives(&oracle.ranked));
    }
}

#[test]
fn all_three_deployment_models_reproduce_table2_shape() {
    let journey = UserJourney { users: 500, content_sites: 3, ..UserJourney::default() };
    let models = all_models();
    let metrics: Vec<_> = models.iter().map(|m| (m.name(), m.simulate(&journey))).collect();
    let dec = &metrics.iter().find(|(n, _)| *n == "Decentralized").unwrap().1;
    let closed = &metrics.iter().find(|(n, _)| *n == "Closed Cartel").unwrap().1;
    let open = &metrics.iter().find(|(n, _)| *n == "Open Cartel").unwrap().1;

    // Duplication: only the decentralized model multiplies user-maintained
    // profiles.
    assert!(dec.profiles_per_user > closed.profiles_per_user);
    assert_eq!(closed.profiles_per_user, 1.0);
    assert_eq!(open.profiles_per_user, 1.0);
    // Analysis capability: closed cartel content sites cannot analyze.
    assert!(dec.content_site_can_analyze_graph);
    assert!(!closed.content_site_can_analyze_graph);
    assert!(open.content_site_can_analyze_graph);
    // Control matrix spot checks straight from Table 2.
    for m in &models {
        let cm = m.control_matrix();
        match m.name() {
            "Decentralized" => assert_eq!(cm.social_sites.social_graph, ControlLevel::None),
            "Closed Cartel" => assert_eq!(cm.content_sites.social_graph, ControlLevel::None),
            "Open Cartel" => assert_eq!(cm.content_sites.social_graph, ControlLevel::Limited),
            other => panic!("unexpected model {other}"),
        }
    }
}

#[test]
fn content_integrator_survives_outages_and_revocations() {
    let mut remote = SimulatedRemoteSite::new("opensocial-hub");
    let users: Vec<NodeId> = (0..20).map(|i| NodeId(10_000 + i)).collect();
    for (i, &u) in users.iter().enumerate() {
        remote.add_user(u, &format!("remote{i}"), &["travel"]);
        if i > 0 {
            remote.connect(users[i - 1], u);
        }
    }
    // Revoke a few permissions.
    remote.set_permission(users[3], false);
    remote.set_permission(users[7], false);

    let mut graph = SocialGraph::new();
    let report = ContentIntegrator.integrate_users(&mut graph, &remote, &users);
    assert_eq!(report.profiles_imported, 18);
    assert_eq!(report.permission_denied, 2);
    graph.check_invariants().unwrap();

    // Outage: nothing further is imported, nothing is lost.
    let nodes_before = graph.node_count();
    remote.set_available(false);
    let report = ContentIntegrator.integrate_users(&mut graph, &remote, &users);
    assert_eq!(report.profiles_imported, 0);
    assert_eq!(report.unavailable, users.len());
    assert_eq!(graph.node_count(), nodes_before);
}

#[test]
fn activity_manager_budgets_follow_user_mix() {
    let site = generate_site(&SiteConfig { users: 100, ..SiteConfig::tiny() });
    let model = SiteModel::from_graph(&site.graph);
    let manager = ActivityManager::categorize(&model);
    let (light, medium, heavy) = manager.distribution();
    assert_eq!(light + medium + heavy, model.user_count());
    assert!(heavy > 0);
    // Heavier activity mixes cost more synchronization messages.
    assert!(manager.sync_budget(100) > manager.sync_budget(10));
}
