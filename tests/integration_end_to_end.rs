//! End-to-end: generate a site, run content analysis, serve a query through
//! discovery, organize the results, and check the whole flow stays
//! consistent — the "John visits Denver" story of the paper played out on a
//! synthetic site, plus the Table 1 pipeline.

use socialscope::prelude::*;
use socialscope::workload::queries::expected_fraction;
use socialscope::workload::QueryClass;

#[test]
fn full_stack_flow_is_consistent() {
    // 1. Generate.
    let config = SiteConfig { users: 80, items: 120, ..SiteConfig::tiny() };
    let site = generate_site(&config);
    let mut graph = site.graph.clone();
    let stats = GraphStats::compute(&graph);
    assert_eq!(stats.node_type_histogram["user"], config.users);

    // 2. Analyze offline.
    let report = ContentAnalyzer::default().analyze(&mut graph);
    assert!(report.topics_added > 0);

    // 3. Discover for a user and a typical categorical query.
    let user = site.users[0];
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(user, "denver baseball museum"));

    // 4. Organize + explain.
    let organizer = InformationOrganizer::default();
    let presentations = organizer.best_presentation(&graph, &msg, "keywords");
    assert_eq!(presentations.len(), 3);
    let best = &presentations[0];
    for group in &best.groups {
        let expl = group_explanation(&graph, user, group);
        assert!(!expl.summary.is_empty());
    }

    // 5. Recommendations for the same user never include items the user
    //    already visited.
    let recs = recommend_for_user(&graph, user, &["baseball".to_string()], 10);
    let visited: Vec<NodeId> =
        graph.out_links(user).filter(|l| l.has_type("visit")).map(|l| l.tgt).collect();
    for rec in &recs {
        if rec.strategy == "algebra_cf" {
            assert!(!visited.contains(&rec.item));
        }
    }
}

#[test]
fn table1_pipeline_reproduces_configured_distribution() {
    // Generate a 50k-query log with the paper's mixture, classify it, and
    // compare against the configured (paper) proportions.
    let mut gen = QueryLogGenerator::new(QueryLogConfig { queries: 50_000, ..Default::default() });
    let log = gen.generate();
    let counts = ClassCounts::from_queries(log.iter().map(String::as_str));
    let mixture = gen.mixture();

    for (class, with_loc) in [
        (QueryClass::General, true),
        (QueryClass::General, false),
        (QueryClass::Categorical, true),
        (QueryClass::Categorical, false),
    ] {
        let measured = counts.fraction(class, with_loc);
        let expected = expected_fraction(&mixture, class, with_loc);
        assert!(
            (measured - expected).abs() < 0.015,
            "{class:?}/{with_loc}: measured {measured:.4}, expected {expected:.4}"
        );
    }
    // The headline claims of §2: >50% general, ~30% categorical, ~8%
    // specific, ~10% unclassified.
    assert!(counts.class_fraction(QueryClass::General) > 0.5);
    assert!((counts.class_fraction(QueryClass::Categorical) - 0.28).abs() < 0.03);
    assert!((counts.class_fraction(QueryClass::Specific) - 0.08).abs() < 0.02);
    assert!((counts.class_fraction(QueryClass::Unclassified) - 0.10).abs() < 0.03);
    // "About 60% of general queries contain a location."
    let general_with = counts.fraction(QueryClass::General, true);
    let general_total = counts.class_fraction(QueryClass::General);
    assert!(((general_with / general_total) - 0.60).abs() < 0.05);
}

#[test]
fn sizing_model_matches_paper_back_of_envelope() {
    let estimate = socialscope::workload::paper_sizing_example();
    assert!((estimate.exact_terabytes - 1.0).abs() < 0.05);
}
