//! Workspace smoke test: the facade's public surface must stay importable.
//!
//! Future refactors can move items between layer crates freely, but
//! `socialscope::prelude` is the documented entry point — if one of these
//! names stops resolving or changes its call shape, this test fails to
//! compile, which is the point.

use socialscope::prelude::*;

/// A tiny two-user site every assertion below can share.
fn tiny_site() -> (SocialGraph, NodeId, NodeId) {
    let mut b = GraphBuilder::new();
    let john = b.add_user_with_interests("John", &["baseball"]);
    let friend = b.add_user("Friend");
    let coors = b.add_item_with_keywords("Coors Field", &["destination"], &["denver", "baseball"]);
    b.befriend(john, friend);
    b.visit(friend, coors);
    b.tag(friend, coors, &["baseball"]);
    (b.build(), john, coors)
}

#[test]
fn prelude_exposes_graph_building() {
    let (graph, _, coors) = tiny_site();
    assert_eq!(graph.node_count(), 3);
    assert!(graph.has_node(coors));
    let _stats: GraphStats = GraphStats::compute(&graph);
}

#[test]
fn prelude_exposes_algebra_plans_and_optimizer() {
    let (graph, john, _) = tiny_site();

    // Operators are callable directly...
    let friends = link_select(&graph, &Condition::on_attr("type", "friend"), None);
    assert!(friends.link_count() > 0);

    // ...and through the plan/evaluator/optimizer entry points.
    let plan = PlanBuilder::base().link_select(Condition::on_attr("type", "friend")).build();
    let (optimized, _report) = Optimizer::new().optimize(&plan);
    let by_plan = Evaluator::new(&graph).evaluate(&optimized).expect("plan evaluates");
    assert_eq!(by_plan.link_count(), friends.link_count());

    let _ = john;
}

#[test]
fn prelude_exposes_discovery_and_topk() {
    let (graph, john, coors) = tiny_site();

    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(john, "Denver baseball"));
    assert_eq!(msg.ranked[0].item, coors);

    // Top-k processing over the content layer's site model; tag lookups go
    // through the index's interner.
    let model = SiteModel::from_graph(&graph);
    let index = ExactIndex::build(&model);
    let result = index.query(john, &["baseball".to_string()], 1);
    assert_eq!(result.ranked.len(), 1);
    let id: TagId = index.tags().get("baseball").expect("tag interned");
    assert_eq!(index.tags().resolve(id), Some("baseball"));
    let _interner: &TagInterner = index.tags();

    // The discovery layer serves the same index as a recommender.
    let search = NetworkAwareSearch::build(&graph);
    let recs = search.recommend(john, &["baseball".to_string()], 1);
    assert_eq!(recs.len(), 1);

    // The execution layer: parallel builds and batch serving are
    // indistinguishable from sequential ones. Builds go through the
    // unified builder; batches through `BatchOptions`.
    let exec: Exec = Exec::new(2).expect("positive thread count");
    let parallel = ExactIndex::builder(&model).exec(&exec).build();
    assert_eq!(parallel.stats(), index.stats());
    let mut pool = BatchScratchPool::default();
    let batch = index.query_batch_opts(
        &[john],
        &["baseball".to_string()],
        1,
        BatchOptions::new().exec(&exec).scratch_pool(&mut pool),
    );
    assert_eq!(batch[0], result);
    assert_eq!(recs[0].item, coors);
}

#[test]
fn prelude_exposes_batched_query_serving() {
    let (graph, john, coors) = tiny_site();
    let keywords = vec!["baseball".to_string()];

    // Content layer: batched top-k with a reusable scratch arena, results
    // element-wise identical to single queries.
    let model = SiteModel::from_graph(&graph);
    let index = ExactIndex::build(&model);
    let batch = vec![john, john, NodeId(4242)];
    let mut scratch: BatchScratch = BatchScratch::default();
    let results =
        index.query_batch_opts(&batch, &keywords, 2, BatchOptions::new().scratch(&mut scratch));
    assert_eq!(results.len(), batch.len());
    for (res, &u) in results.iter().zip(&batch) {
        assert_eq!(res, &index.query(u, &keywords, 2));
    }

    // Discovery layer: the same batch surface on the recommender.
    let search = NetworkAwareSearch::build(&graph);
    let recs = search.recommend_batch_opts(&batch, &keywords, 2, BatchOptions::new());
    assert_eq!(recs.len(), batch.len());
    assert_eq!(recs[0][0].item, coors);
    assert!(recs[2].is_empty());
}

#[test]
fn prelude_exposes_live_index_maintenance() {
    let (graph, john, coors) = tiny_site();
    let keywords = vec!["baseball".to_string()];

    // Content layer: a tag event patches the live index in place, and the
    // patched index answers exactly like one rebuilt from the new site.
    let mut model = SiteModel::from_graph(&graph);
    let mut index = ExactIndex::builder(&model).build();
    let friend = model.network_of(john)[0];
    let events = vec![TagEvent::retract(friend, coors, "baseball")];
    model.apply(&events);
    let report: ApplyReport = index.apply(&model, &events);
    assert!(!report.is_noop());
    assert_eq!(index.stats(), ExactIndex::builder(&model).build().stats());
    assert!(index.query(john, &keywords, 1).ranked.is_empty());

    // Discovery layer: one engine-level apply keeps the site and index in
    // lockstep.
    let mut search = NetworkAwareSearch::build(&graph);
    let assign = vec![TagEvent::assign(friend, coors, "rockies")];
    search.apply(&assign);
    assert_eq!(search.recommend(john, &["rockies".to_string()], 1)[0].item, coors);

    // Workload layer: deterministic synthetic event streams for the
    // maintenance experiments.
    let site = generate_site(&SiteConfig { users: 10, items: 20, ..SiteConfig::default() });
    let stream_model = SiteModel::from_graph(&site.graph);
    let stream = generate_events(&stream_model, &EventStreamConfig::default());
    assert!(!stream.is_empty());
}

#[test]
fn prelude_exposes_presentation_and_workload() {
    let (graph, john, _) = tiny_site();
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(john, "baseball"));
    let organized =
        InformationOrganizer::default().organize(&graph, &msg, GroupingStrategy::Topical);
    assert!(!organized.groups.is_empty());

    let site = generate_site(&SiteConfig { users: 10, items: 20, ..SiteConfig::default() });
    assert!(site.graph.node_count() >= 30);
}
