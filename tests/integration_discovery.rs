//! Integration: content analysis + discovery over generated sites.

use socialscope::prelude::*;

#[test]
fn analysis_then_discovery_end_to_end() {
    let site = generate_site(&SiteConfig { users: 50, items: 60, ..SiteConfig::tiny() });
    let mut graph = site.graph.clone();
    let report = ContentAnalyzer::default().analyze(&mut graph);
    assert!(report.topics_added > 0);
    assert!(report.match_links_added > 0);
    graph.check_invariants().unwrap();

    let user = site.users[0];
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(user, "baseball museum"));
    // Every ranked item is a known item node, scores are sorted descending.
    for r in &msg.ranked {
        assert!(graph.node(r.item).unwrap().has_type("item"));
        assert!(r.combined > 0.0);
    }
    assert!(msg.ranked.windows(2).all(|w| w[0].combined >= w[1].combined));
    // The provenance graph only contains nodes/links of the site.
    for n in msg.graph.nodes() {
        assert!(graph.has_node(n.id));
    }
    for l in msg.graph.links() {
        assert!(graph.has_link(l.id));
    }
}

#[test]
fn social_relevance_changes_ranking_between_users() {
    let site = generate_site(&SiteConfig { users: 80, items: 60, ..SiteConfig::tiny() });
    let graph = &site.graph;
    let discoverer = InformationDiscoverer::default();
    let q1 = discoverer.discover(graph, &UserQuery::keywords_for(site.users[0], "family beach"));
    let anon = discoverer.discover(graph, &UserQuery::anonymous("family beach"));
    // The anonymous ranking is purely semantic; the personalized one factors
    // in social relevance, so the two score vectors must not be identical
    // whenever any social signal exists.
    let social_signal: f64 = q1.ranked.iter().map(|r| r.social).sum();
    if social_signal > 0.0 {
        let personalized: Vec<_> = q1.ranked.iter().map(|r| (r.item, r.combined)).collect();
        let anonymous: Vec<_> = anon.ranked.iter().map(|r| (r.item, r.combined)).collect();
        assert_ne!(personalized, anonymous);
    }
}

#[test]
fn recommendations_fall_back_to_experts_for_inactive_users() {
    let mut config = SiteConfig::tiny();
    config.users = 40;
    let site = generate_site(&config);
    let mut graph = site.graph.clone();
    // Add a brand-new user with no activity and no friends.
    let mut b = GraphBuilder::extending(std::mem::take(&mut graph));
    let newcomer = b.add_user("Newcomer");
    let graph = b.build();
    let recs = recommend_for_user(&graph, newcomer, &["family".to_string()], 5);
    // The newcomer cannot get CF recommendations; experts may or may not
    // exist for the keyword, but if recommendations exist they are expert
    // based.
    for rec in recs {
        assert_eq!(rec.strategy, "expert");
    }
}

#[test]
fn empty_queries_recommend_only_socially_endorsed_items() {
    let site = generate_site(&SiteConfig::tiny());
    let graph = &site.graph;
    let user = site.users[3];
    let msg = InformationDiscoverer::default().discover(graph, &UserQuery::empty_for(user));
    for r in &msg.ranked {
        assert!(r.social > 0.0);
    }
}
