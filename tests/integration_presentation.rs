//! Integration: discovery output flowing into grouping, organization and
//! explanations on generated sites.

use socialscope::prelude::*;
use socialscope::presentation::grouping::group_items;

#[test]
fn every_grouping_strategy_covers_all_discovered_items() {
    let site = generate_site(&SiteConfig { users: 60, items: 80, ..SiteConfig::tiny() });
    let mut graph = site.graph.clone();
    ContentAnalyzer::default().analyze(&mut graph);
    let user = site.users[0];
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(user, "museum history"));
    if msg.is_empty() {
        return;
    }
    let items = msg.item_ids();
    for strategy in [
        GroupingStrategy::Social { theta: 0.2 },
        GroupingStrategy::Topical,
        GroupingStrategy::Structural { attribute: "keywords".into() },
    ] {
        let groups = group_items(&graph, &items, &strategy);
        for item in &items {
            assert!(
                groups.iter().any(|g| g.items.contains(item)),
                "item {item} not covered by {strategy:?}"
            );
        }
    }
}

#[test]
fn organizer_ranks_groups_and_respects_screen_budget() {
    let site = generate_site(&SiteConfig { users: 60, items: 80, ..SiteConfig::tiny() });
    let mut graph = site.graph.clone();
    ContentAnalyzer::default().analyze(&mut graph);
    let user = site.users[1];
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(user, "family beach hiking"));
    let organizer = InformationOrganizer { max_groups: 3, social_theta: 0.3 };
    let presentations = organizer.best_presentation(&graph, &msg, "keywords");
    assert_eq!(presentations.len(), 3);
    for p in &presentations {
        assert!(p.groups.len() <= 3);
        for g in &p.groups {
            // Within-group ranking is by combined relevance.
            let scores: Vec<f64> =
                g.items.iter().map(|i| msg.score_of(*i).unwrap_or(0.0)).collect();
            assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        }
    }
    // Presentations are ordered by meaningfulness.
    assert!(presentations
        .windows(2)
        .all(|w| w[0].meaningfulness.score >= w[1].meaningfulness.score));
}

#[test]
fn explanations_cover_every_recommended_item() {
    let site = generate_site(&SiteConfig { users: 50, items: 60, ..SiteConfig::tiny() });
    let graph = &site.graph;
    let user = site.users[2];
    let recs = recommend_for_user(graph, user, &["museum".to_string()], 5);
    for rec in recs {
        let expl = socialscope::presentation::user_based_explanation(graph, user, rec.item);
        let agg = aggregate_explanation(graph, user, rec.item);
        // Every explanation renders a human-readable summary, and the
        // aggregate percentage is within [0, 100].
        assert!(!expl.summary.is_empty());
        let percent: f64 =
            agg.summary.split('%').next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
        assert!((0.0..=100.0).contains(&percent));
    }
}
