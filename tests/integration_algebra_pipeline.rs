//! Integration: the algebra over generated sites — Example 4 search,
//! Example 5 collaborative filtering, optimizer equivalence.

use socialscope::discovery::recommend::algebra_cf::{
    collaborative_filtering, example5_pipeline, CfConfig,
};
use socialscope::prelude::*;

fn site() -> socialscope::workload::GeneratedSite {
    generate_site(&SiteConfig { users: 60, items: 80, ..SiteConfig::tiny() })
}

#[test]
fn example4_search_runs_on_generated_sites() {
    let site = site();
    let g = &site.graph;
    let john = site.users[0];
    let john_nodes = node_select(g, &Condition::on_attr("id", john.raw() as i64), None);
    let friendships = link_select(
        &semi_join(g, &john_nodes, DirectionalCondition::src_src()),
        &Condition::on_attr("type", "friend"),
        None,
    );
    let visits = link_select(g, &Condition::on_attr("type", "visit"), None);
    let friends_who_visited = semi_join(&friendships, &visits, DirectionalCondition::tgt_src());
    // Every surviving friendship link starts at John and ends at a user with
    // at least one visit.
    for link in friends_who_visited.links() {
        assert_eq!(link.src, john);
        assert!(g.out_links(link.tgt).any(|l| l.has_type("visit")));
    }
}

#[test]
fn example5_cf_scores_are_bounded_and_exclude_visited() {
    let site = site();
    let g = &site.graph;
    let user = site.users[1];
    let recs = collaborative_filtering(g, user, &CfConfig::default());
    let visited: Vec<_> =
        g.out_links(user).filter(|l| l.has_type("visit")).map(|l| l.tgt).collect();
    for rec in &recs {
        assert!(rec.score > 0.0 && rec.score <= 1.0, "score {}", rec.score);
        assert!(!visited.contains(&rec.item));
        assert!(g.node(rec.item).unwrap().has_type("destination"));
    }
    // Scores are sorted descending.
    assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
}

#[test]
fn example5_pipeline_output_only_contains_recommendation_links_from_user() {
    let site = site();
    let g = &site.graph;
    let user = site.users[2];
    let out = example5_pipeline(g, user, &CfConfig::default());
    for link in out.links() {
        assert_eq!(link.src, user);
        assert!(link.attrs.get_f64("score").is_some());
    }
}

#[test]
fn optimizer_preserves_example4_plan_semantics_on_generated_sites() {
    let site = site();
    let g = &site.graph;
    let john = site.users[0];
    let john_sel = PlanBuilder::base().node_select(Condition::on_attr("id", john.raw() as i64));
    let plan = PlanBuilder::base()
        .semi_join(&john_sel, DirectionalCondition::src_src())
        .link_select(Condition::on_attr("type", "friend"))
        .link_select(Condition::any())
        .node_select(Condition::on_attr("type", "user"))
        .build();
    let (optimized, report) = Optimizer::new().optimize(&plan);
    assert!(optimized.size() <= plan.size());
    assert!(!report.rules_applied.is_empty());
    let mut ev = Evaluator::new(g);
    let a = ev.evaluate(&plan).unwrap();
    let b = ev.evaluate(&optimized).unwrap();
    assert_eq!(a.node_id_set(), b.node_id_set());
    assert_eq!(a.link_id_set(), b.link_id_set());
}

#[test]
fn set_operators_respect_overlay_partition_on_generated_sites() {
    let site = site();
    let g = &site.graph;
    let acts = link_select(g, &Condition::on_attr("type", "act"), None);
    let connects = link_select(g, &Condition::on_attr("type", "connect"), None);
    let both = union(&acts, &connects);
    assert_eq!(both.link_count(), acts.link_count() + connects.link_count());
    assert!(intersect(&acts, &connects).link_count() == 0);
    let back = minus_link_driven(&both, &connects);
    assert_eq!(back.link_id_set(), acts.link_id_set());
}
