//! The query classifier behind Table 1.
//!
//! The paper classifies each of 10 million Y!Travel queries into
//! *general*, *categorical* or *specific* (about 10% remain unclassified),
//! and within each class detects whether a location term is present. The
//! classifier below applies the same rules over the shared travel
//! vocabulary; running it over a generated query log regenerates the table.

use crate::travel::{CATEGORICAL_TERMS, GENERAL_TERMS, LOCATIONS, SPECIFIC_DESTINATIONS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The query classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// "things to do", "attraction", or a bare location.
    General,
    /// "hotel", "family", "historic", …
    Categorical,
    /// A specific destination ("Disneyland", "Yosemite Park").
    Specific,
    /// Could not be classified (about 10% in the paper).
    Unclassified,
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryClass::General => write!(f, "general"),
            QueryClass::Categorical => write!(f, "categorical"),
            QueryClass::Specific => write!(f, "specific"),
            QueryClass::Unclassified => write!(f, "unclassified"),
        }
    }
}

/// Classification of a single query: its class and whether it mentions a
/// location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classified {
    /// The query class.
    pub class: QueryClass,
    /// Whether a location term was detected.
    pub with_location: bool,
}

/// Whether the query text mentions a known location.
pub fn has_location(query: &str) -> bool {
    let q = query.to_lowercase();
    LOCATIONS.iter().any(|loc| q.contains(loc))
}

/// Classify a query with the paper's rules. Precedence: a specific
/// destination name wins, then categorical terms, then general terms or a
/// bare location; anything else is unclassified.
pub fn classify_query(query: &str) -> Classified {
    let q = query.to_lowercase();
    let with_location = has_location(&q);
    let class = if SPECIFIC_DESTINATIONS.iter().any(|d| q.contains(d)) {
        QueryClass::Specific
    } else if CATEGORICAL_TERMS.iter().any(|t| q.split_whitespace().any(|w| w == *t)) {
        QueryClass::Categorical
    } else if GENERAL_TERMS.iter().any(|t| q.contains(t)) {
        QueryClass::General
    } else if with_location {
        // "or just a location by itself" — a bare location is a general
        // query.
        QueryClass::General
    } else {
        QueryClass::Unclassified
    };
    Classified { class, with_location }
}

/// Aggregated class × location counts: the data behind Table 1.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassCounts {
    counts: BTreeMap<(QueryClass, bool), usize>,
    total: usize,
}

impl ClassCounts {
    /// Classify and tally an entire query log.
    pub fn from_queries<'a, I: IntoIterator<Item = &'a str>>(queries: I) -> Self {
        let mut out = ClassCounts::default();
        for q in queries {
            out.add(classify_query(q));
        }
        out
    }

    /// Tally one classified query.
    pub fn add(&mut self, c: Classified) {
        *self.counts.entry((c.class, c.with_location)).or_default() += 1;
        self.total += 1;
    }

    /// Total number of queries tallied.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of queries in a given cell (class, with/without location).
    pub fn fraction(&self, class: QueryClass, with_location: bool) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&(class, with_location)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Fraction of queries in a class regardless of location.
    pub fn class_fraction(&self, class: QueryClass) -> f64 {
        self.fraction(class, true) + self.fraction(class, false)
    }

    /// Render the Table 1 layout (percentages), in the paper's row/column
    /// order.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("                    general   categorical   specific\n");
        out.push_str(&format!(
            "with locations      {:>6.2}%      {:>6.2}%    {:>6.2}%\n",
            100.0 * self.fraction(QueryClass::General, true),
            100.0 * self.fraction(QueryClass::Categorical, true),
            100.0 * self.fraction(QueryClass::Specific, true),
        ));
        out.push_str(&format!(
            "w/o locations       {:>6.2}%      {:>6.2}%    {:>6.2}%\n",
            100.0 * self.fraction(QueryClass::General, false),
            100.0 * self.fraction(QueryClass::Categorical, false),
            100.0 * self.fraction(QueryClass::Specific, false),
        ));
        out.push_str(&format!(
            "unclassified        {:>6.2}%\n",
            100.0 * self.class_fraction(QueryClass::Unclassified)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_papers_examples() {
        // "Denver attractions" — general, with location (Example 1).
        let c = classify_query("Denver attractions");
        assert_eq!(c.class, QueryClass::General);
        assert!(c.with_location);
        // "Barcelona family trip with babies" — categorical, with location.
        let c = classify_query("Barcelona family trip with babies");
        assert_eq!(c.class, QueryClass::Categorical);
        assert!(c.with_location);
        // "American history" — categorical term "history"? The paper calls
        // it exploratory; our vocabulary treats bare "history" queries as
        // unclassified unless the exact categorical token appears.
        let c = classify_query("things to do in Tokyo");
        assert_eq!(c.class, QueryClass::General);
        // Specific destination.
        let c = classify_query("Disneyland");
        assert_eq!(c.class, QueryClass::Specific);
        assert!(!c.with_location);
        // Bare location.
        let c = classify_query("Paris");
        assert_eq!(c.class, QueryClass::General);
        assert!(c.with_location);
        // Nonsense.
        let c = classify_query("qwerty asdf");
        assert_eq!(c.class, QueryClass::Unclassified);
    }

    #[test]
    fn specific_takes_precedence_over_categorical() {
        let c = classify_query("hotels near Disneyland");
        assert_eq!(c.class, QueryClass::Specific);
    }

    #[test]
    fn counts_and_fractions_sum_to_one() {
        let queries =
            ["Denver attractions", "Paris hotels", "Disneyland", "qwerty", "things to do"];
        let counts = ClassCounts::from_queries(queries.iter().copied());
        assert_eq!(counts.total(), 5);
        let sum: f64 = [
            QueryClass::General,
            QueryClass::Categorical,
            QueryClass::Specific,
            QueryClass::Unclassified,
        ]
        .iter()
        .map(|c| counts.class_fraction(*c))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let table = counts.render_table();
        assert!(table.contains("with locations"));
        assert!(table.contains("unclassified"));
    }
}
