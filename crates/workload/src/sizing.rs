//! The analytic index-sizing model of §6.2.
//!
//! The paper's back-of-envelope: a moderately sized site with 100,000 users,
//! 1 million items and 1,000 distinct tags, where each item receives on
//! average 20 tags given by 5% of the users, needs ≈ 1 TB for the
//! per-`(tag, user)` inverted index at 10 bytes per entry. The model here
//! reproduces that arithmetic and extends it to the clustered variants so
//! experiment E4 can print paper-vs-model numbers and E5 can relate the
//! analytic model to measured index sizes on generated sites.

use serde::{Deserialize, Serialize};

/// Parameters of the sizing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexSizingModel {
    /// Number of users.
    pub users: u64,
    /// Number of items.
    pub items: u64,
    /// Number of distinct tags.
    pub tags: u64,
    /// Average number of tags each item receives.
    pub avg_tags_per_item: f64,
    /// Fraction of users who tag a given item.
    pub tagger_fraction: f64,
    /// Bytes per index entry (the paper assumes 10).
    pub bytes_per_entry: u64,
}

impl IndexSizingModel {
    /// The paper's "moderately sized" example site.
    pub fn paper_example() -> Self {
        IndexSizingModel {
            users: 100_000,
            items: 1_000_000,
            tags: 1_000,
            avg_tags_per_item: 20.0,
            tagger_fraction: 0.05,
            bytes_per_entry: 10,
        }
    }
}

/// The estimate produced by the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingEstimate {
    /// Estimated number of index entries for the exact per-(tag, user) index.
    pub exact_entries: f64,
    /// Estimated size in bytes of the exact index.
    pub exact_bytes: f64,
    /// Estimated size in terabytes of the exact index.
    pub exact_terabytes: f64,
}

impl IndexSizingModel {
    /// Estimate the exact per-`(tag, user)` index: every item is replicated,
    /// with its score, in the list of every `(tag, user)` pair that can see
    /// it — `items × avg_tags_per_item × users × tagger_fraction` entries.
    pub fn estimate(&self) -> SizingEstimate {
        let exact_entries =
            self.items as f64 * self.avg_tags_per_item * self.users as f64 * self.tagger_fraction;
        let exact_bytes = exact_entries * self.bytes_per_entry as f64;
        SizingEstimate { exact_entries, exact_bytes, exact_terabytes: exact_bytes / 1e12 }
    }

    /// Estimated entries when users are grouped into `clusters` clusters
    /// (one list per `(tag, cluster)` instead of `(tag, user)`): the entry
    /// count scales with the number of lists.
    pub fn clustered_entries(&self, clusters: u64) -> f64 {
        if self.users == 0 {
            return 0.0;
        }
        self.estimate().exact_entries * clusters as f64 / self.users as f64
    }

    /// Space-saving factor of clustering (exact / clustered).
    pub fn clustering_saving(&self, clusters: u64) -> f64 {
        if clusters == 0 {
            return f64::INFINITY;
        }
        self.users as f64 / clusters as f64
    }
}

/// The paper's worked example, evaluated: should land at ≈ 1 terabyte.
pub fn paper_sizing_example() -> SizingEstimate {
    IndexSizingModel::paper_example().estimate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_about_one_terabyte() {
        let est = paper_sizing_example();
        assert!((est.exact_entries - 1e11).abs() < 1e6);
        assert!((est.exact_terabytes - 1.0).abs() < 0.01, "{est:?}");
    }

    #[test]
    fn clustering_reduces_entries_proportionally() {
        let model = IndexSizingModel::paper_example();
        let exact = model.estimate().exact_entries;
        let clustered = model.clustered_entries(1_000);
        assert!((clustered - exact / 100.0).abs() < 1.0);
        assert!((model.clustering_saving(1_000) - 100.0).abs() < 1e-9);
        assert_eq!(model.clustering_saving(0), f64::INFINITY);
    }

    #[test]
    fn estimate_scales_linearly_in_each_parameter() {
        let base = IndexSizingModel::paper_example();
        let double_users = IndexSizingModel { users: base.users * 2, ..base };
        assert!(
            (double_users.estimate().exact_entries / base.estimate().exact_entries - 2.0).abs()
                < 1e-9
        );
        let double_items = IndexSizingModel { items: base.items * 2, ..base };
        assert!(
            (double_items.estimate().exact_bytes / base.estimate().exact_bytes - 2.0).abs() < 1e-9
        );
    }
}
