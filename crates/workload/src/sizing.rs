//! The analytic index-sizing model of §6.2.
//!
//! The paper's back-of-envelope: a moderately sized site with 100,000 users,
//! 1 million items and 1,000 distinct tags, where each item receives on
//! average 20 tags given by 5% of the users, needs ≈ 1 TB for the
//! per-`(tag, user)` inverted index at 10 bytes per entry. The model here
//! reproduces that arithmetic and extends it to the clustered variants so
//! experiment E4 can print paper-vs-model numbers and E5 can relate the
//! analytic model to measured index sizes on generated sites.

use serde::{Deserialize, Serialize};

/// Parameters of the sizing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexSizingModel {
    /// Number of users.
    pub users: u64,
    /// Number of items.
    pub items: u64,
    /// Number of distinct tags.
    pub tags: u64,
    /// Average number of tags each item receives.
    pub avg_tags_per_item: f64,
    /// Fraction of users who tag a given item.
    pub tagger_fraction: f64,
    /// Bytes per index entry (the paper assumes 10).
    pub bytes_per_entry: u64,
}

/// Modeled bytes per entry of the delta-compressed (`Layout::Compressed`)
/// posting layout: a gap varint for the item id (1–2 bytes on dense lists)
/// plus a one-byte integral score, doubled for the ascending-item
/// companion. The measured E14 numbers replace this constant with reality;
/// it exists so the analytic model can be extended to the compressed
/// variant the same way the paper extends it to clustering.
pub const COMPRESSED_BYTES_PER_ENTRY: f64 = 4.0;

impl IndexSizingModel {
    /// The paper's "moderately sized" example site.
    pub fn paper_example() -> Self {
        IndexSizingModel {
            users: 100_000,
            items: 1_000_000,
            tags: 1_000,
            avg_tags_per_item: 20.0,
            tagger_fraction: 0.05,
            bytes_per_entry: 10,
        }
    }

    /// The paper example re-anchored to a different user population, with
    /// the catalog growing at the paper's 10-items-per-user ratio — the
    /// analytic companion of [`crate::SiteConfig::at_scale`], covering the
    /// 10^5 (the paper's own point) through 10^6-user range of E14.
    pub fn at_scale(users: u64) -> Self {
        IndexSizingModel { users, items: users * 10, ..IndexSizingModel::paper_example() }
    }
}

/// The estimate produced by the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingEstimate {
    /// Estimated number of index entries for the exact per-(tag, user) index.
    pub exact_entries: f64,
    /// Estimated size in bytes of the exact index.
    pub exact_bytes: f64,
    /// Estimated size in terabytes of the exact index.
    pub exact_terabytes: f64,
    /// Estimated size in bytes under the delta-compressed posting layout
    /// (same entries at [`COMPRESSED_BYTES_PER_ENTRY`]).
    pub compressed_bytes: f64,
    /// Modeled saving of the compressed layout (`exact / compressed`).
    pub compression_saving: f64,
}

impl SizingEstimate {
    /// Bytes per user of the exact index — the E14 headline unit.
    pub fn bytes_per_user(&self, users: u64) -> f64 {
        if users == 0 {
            return 0.0;
        }
        self.exact_bytes / users as f64
    }
}

impl IndexSizingModel {
    /// Estimate the exact per-`(tag, user)` index: every item is replicated,
    /// with its score, in the list of every `(tag, user)` pair that can see
    /// it — `items × avg_tags_per_item × users × tagger_fraction` entries.
    pub fn estimate(&self) -> SizingEstimate {
        let exact_entries =
            self.items as f64 * self.avg_tags_per_item * self.users as f64 * self.tagger_fraction;
        let exact_bytes = exact_entries * self.bytes_per_entry as f64;
        let compressed_bytes = exact_entries * COMPRESSED_BYTES_PER_ENTRY;
        SizingEstimate {
            exact_entries,
            exact_bytes,
            exact_terabytes: exact_bytes / 1e12,
            compressed_bytes,
            compression_saving: if compressed_bytes > 0.0 {
                exact_bytes / compressed_bytes
            } else {
                1.0
            },
        }
    }

    /// Estimated entries when users are grouped into `clusters` clusters
    /// (one list per `(tag, cluster)` instead of `(tag, user)`): the entry
    /// count scales with the number of lists.
    pub fn clustered_entries(&self, clusters: u64) -> f64 {
        if self.users == 0 {
            return 0.0;
        }
        self.estimate().exact_entries * clusters as f64 / self.users as f64
    }

    /// Space-saving factor of clustering (exact / clustered).
    pub fn clustering_saving(&self, clusters: u64) -> f64 {
        if clusters == 0 {
            return f64::INFINITY;
        }
        self.users as f64 / clusters as f64
    }
}

/// The paper's worked example, evaluated: should land at ≈ 1 terabyte.
pub fn paper_sizing_example() -> SizingEstimate {
    IndexSizingModel::paper_example().estimate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_about_one_terabyte() {
        let est = paper_sizing_example();
        assert!((est.exact_entries - 1e11).abs() < 1e6);
        assert!((est.exact_terabytes - 1.0).abs() < 0.01, "{est:?}");
    }

    #[test]
    fn clustering_reduces_entries_proportionally() {
        let model = IndexSizingModel::paper_example();
        let exact = model.estimate().exact_entries;
        let clustered = model.clustered_entries(1_000);
        assert!((clustered - exact / 100.0).abs() < 1.0);
        assert!((model.clustering_saving(1_000) - 100.0).abs() < 1e-9);
        assert_eq!(model.clustering_saving(0), f64::INFINITY);
    }

    #[test]
    fn compressed_model_and_scale_presets_extend_the_paper_example() {
        let est = paper_sizing_example();
        // 10 B/entry raw vs the 4 B/entry compressed model: 2.5× saving.
        assert!((est.compression_saving - 2.5).abs() < 1e-9);
        assert!((est.compressed_bytes - est.exact_bytes / 2.5).abs() < 1.0);
        // The paper example *is* the 10^5-user scale point.
        assert_eq!(IndexSizingModel::at_scale(100_000), IndexSizingModel::paper_example());
        // Total bytes grow quadratically in users (the catalog grows with
        // the population), so bytes *per user* still grow linearly — the
        // scaling wall the compressed layout attacks.
        let m5 = IndexSizingModel::at_scale(100_000);
        let m6 = IndexSizingModel::at_scale(1_000_000);
        let per_user5 = m5.estimate().bytes_per_user(m5.users);
        let per_user6 = m6.estimate().bytes_per_user(m6.users);
        assert!((per_user6 / per_user5 - 10.0).abs() < 1e-6);
        assert_eq!(m5.estimate().bytes_per_user(0), 0.0);
    }

    #[test]
    fn estimate_scales_linearly_in_each_parameter() {
        let base = IndexSizingModel::paper_example();
        let double_users = IndexSizingModel { users: base.users * 2, ..base };
        assert!(
            (double_users.estimate().exact_entries / base.estimate().exact_entries - 2.0).abs()
                < 1e-9
        );
        let double_items = IndexSizingModel { items: base.items * 2, ..base };
        assert!(
            (double_items.estimate().exact_bytes / base.estimate().exact_bytes - 2.0).abs() < 1e-9
        );
    }
}
