//! The Y!Travel-style query-log generator behind Table 1.
//!
//! The real 10-million-query log is proprietary; the generator samples query
//! strings from a parameterized class mixture whose default is the
//! proportions the paper reports, and composes each query's text from the
//! shared travel vocabulary so that the classifier (the measured part of the
//! pipeline) re-derives the class from the text alone.

use crate::classifier::QueryClass;
use crate::travel::{CATEGORICAL_TERMS, GENERAL_TERMS, LOCATIONS, SPECIFIC_DESTINATIONS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The target class × location mixture (fractions summing to ≤ 1; the rest
/// is generated as unclassifiable noise).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryMixture {
    /// General queries mentioning a location.
    pub general_with_location: f64,
    /// General queries without a location.
    pub general_without_location: f64,
    /// Categorical queries mentioning a location.
    pub categorical_with_location: f64,
    /// Categorical queries without a location.
    pub categorical_without_location: f64,
    /// Specific-destination queries.
    pub specific: f64,
}

impl Default for QueryMixture {
    /// The proportions of the paper's Table 1 (the remaining ≈ 10% are
    /// unclassifiable).
    fn default() -> Self {
        QueryMixture {
            general_with_location: 0.3236,
            general_without_location: 0.2138,
            categorical_with_location: 0.2252,
            categorical_without_location: 0.0534,
            specific: 0.0837,
        }
    }
}

impl QueryMixture {
    /// The fraction left over for unclassifiable queries.
    pub fn unclassified(&self) -> f64 {
        (1.0 - self.general_with_location
            - self.general_without_location
            - self.categorical_with_location
            - self.categorical_without_location
            - self.specific)
            .max(0.0)
    }
}

/// Configuration of the query-log generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryLogConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// Target class mixture.
    pub mixture: QueryMixture,
    /// Burst length for [`QueryLogGenerator::generate_bursty`]: consecutive
    /// queries sharing one class × location draw, modelling the temporally
    /// correlated traffic a live site sees (an event puts everyone on the
    /// same kind of query at once). `1` degenerates to the i.i.d. log.
    pub burst_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        QueryLogConfig {
            queries: 100_000,
            mixture: QueryMixture::default(),
            burst_length: 1,
            seed: 17,
        }
    }
}

/// Generates query strings according to a mixture.
#[derive(Debug, Clone)]
pub struct QueryLogGenerator {
    config: QueryLogConfig,
    rng: StdRng,
}

/// Words guaranteed to be outside every vocabulary list, used for
/// unclassifiable noise queries.
const NOISE_WORDS: &[&str] = &[
    "cheap",
    "flights",
    "deals",
    "weather",
    "currency",
    "visa",
    "timezone",
    "phrasebook",
    "luggage",
    "jetlag",
];

impl QueryLogGenerator {
    /// A generator for the given configuration.
    pub fn new(config: QueryLogConfig) -> Self {
        QueryLogGenerator { rng: StdRng::seed_from_u64(config.seed), config }
    }

    /// Generate the full log.
    pub fn generate(&mut self) -> Vec<String> {
        (0..self.config.queries).map(|_| self.next_query()).collect()
    }

    /// Generate one query string, drawing the class from the mixture.
    pub fn next_query(&mut self) -> String {
        let (class, with_location) = self.draw_class();
        self.next_query_of(class, with_location)
    }

    /// Generate a bursty log of `queries` strings: one class × location
    /// draw per run of `burst_length` queries, so the log shows the
    /// correlated per-class runs of live traffic while the *overall*
    /// mixture still converges to the configured one (the burst class is
    /// drawn from it). `burst_length ≤ 1` degenerates to [`Self::generate`].
    pub fn generate_bursty(&mut self) -> Vec<String> {
        let total = self.config.queries;
        let burst = self.config.burst_length.max(1);
        let mut log = Vec::with_capacity(total);
        while log.len() < total {
            let (class, with_location) = self.draw_class();
            for _ in 0..burst.min(total - log.len()) {
                log.push(self.next_query_of(class, with_location));
            }
        }
        log
    }

    /// Draw a class × with-location cell from the configured mixture.
    fn draw_class(&mut self) -> (QueryClass, bool) {
        let m = self.config.mixture;
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let mut threshold = m.general_with_location;
        if x < threshold {
            return (QueryClass::General, true);
        }
        threshold += m.general_without_location;
        if x < threshold {
            return (QueryClass::General, false);
        }
        threshold += m.categorical_with_location;
        if x < threshold {
            return (QueryClass::Categorical, true);
        }
        threshold += m.categorical_without_location;
        if x < threshold {
            return (QueryClass::Categorical, false);
        }
        threshold += m.specific;
        if x < threshold {
            return (QueryClass::Specific, true);
        }
        (QueryClass::Unclassified, false)
    }

    /// Compose one query of a forced class, bypassing the mixture — the
    /// workload companion of class-conditioned experiments (the batch
    /// sweep drives each query class through the indexes separately).
    /// `with_location` distinguishes the Table 1 rows for general and
    /// categorical queries; specific queries always name their location
    /// (users write "disneyland orlando") and noise never does.
    pub fn next_query_of(&mut self, class: QueryClass, with_location: bool) -> String {
        let location = *LOCATIONS.choose(&mut self.rng).expect("locations");
        let categorical = *CATEGORICAL_TERMS.choose(&mut self.rng).expect("categories");
        let general = *GENERAL_TERMS.choose(&mut self.rng).expect("general terms");
        let specific = *SPECIFIC_DESTINATIONS.choose(&mut self.rng).expect("destinations");
        match (class, with_location) {
            (QueryClass::General, true) => match self.rng.gen_range(0..3) {
                0 => format!("{location} {general}"),
                1 => format!("{general} in {location}"),
                _ => location.to_string(),
            },
            (QueryClass::General, false) => general.to_string(),
            (QueryClass::Categorical, true) => format!("{location} {categorical}"),
            (QueryClass::Categorical, false) => format!("{categorical} trip ideas"),
            (QueryClass::Specific, _) => format!("{specific} {location}"),
            (QueryClass::Unclassified, _) => {
                let a = *NOISE_WORDS.choose(&mut self.rng).expect("noise");
                let b = *NOISE_WORDS.choose(&mut self.rng).expect("noise");
                format!("{a} {b}")
            }
        }
    }

    /// The expected class of the last mixture bucket boundaries — exposed
    /// for tests that validate the generator/classifier agreement.
    pub fn mixture(&self) -> QueryMixture {
        self.config.mixture
    }
}

/// Connective and intent words that appear in query strings but are not
/// index-probe keywords.
const QUERY_STOP_WORDS: &[&str] =
    &["in", "to", "with", "trip", "ideas", "things", "do", "what", "see", "places", "visit"];

/// Split a query string into the keywords a content index would be probed
/// with: lowercase whitespace tokens with connective stop-words removed.
/// "denver baseball" → `["denver", "baseball"]`; "things to do" → `[]`
/// (a pure-intent query carries no probe keyword, and the indexes answer
/// it instantly as empty).
pub fn keywords_of(query: &str) -> Vec<String> {
    query
        .split_whitespace()
        .map(str::to_lowercase)
        .filter(|token| !QUERY_STOP_WORDS.contains(&token.as_str()))
        .collect()
}

/// Expected Table 1 cell value for a mixture (used by the experiment harness
/// to print "paper" vs "measured" side by side).
pub fn expected_fraction(mixture: &QueryMixture, class: QueryClass, with_location: bool) -> f64 {
    match (class, with_location) {
        (QueryClass::General, true) => mixture.general_with_location,
        (QueryClass::General, false) => mixture.general_without_location,
        (QueryClass::Categorical, true) => mixture.categorical_with_location,
        (QueryClass::Categorical, false) => mixture.categorical_without_location,
        (QueryClass::Specific, _) => mixture.specific,
        (QueryClass::Unclassified, _) => mixture.unclassified(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassCounts;

    #[test]
    fn default_mixture_matches_the_paper() {
        let m = QueryMixture::default();
        assert!((m.general_with_location - 0.3236).abs() < 1e-9);
        assert!((m.unclassified() - 0.1003).abs() < 1e-3);
    }

    #[test]
    fn generated_log_reproduces_the_mixture_through_the_classifier() {
        let mut gen =
            QueryLogGenerator::new(QueryLogConfig { queries: 20_000, ..QueryLogConfig::default() });
        let log = gen.generate();
        assert_eq!(log.len(), 20_000);
        let counts = ClassCounts::from_queries(log.iter().map(String::as_str));
        let m = QueryMixture::default();
        // Each measured cell should land within 2 percentage points of the
        // target (sampling noise only).
        let cells = [
            (QueryClass::General, true),
            (QueryClass::General, false),
            (QueryClass::Categorical, true),
            (QueryClass::Categorical, false),
        ];
        for (class, with_loc) in cells {
            let measured = counts.fraction(class, with_loc);
            let expected = expected_fraction(&m, class, with_loc);
            assert!(
                (measured - expected).abs() < 0.02,
                "{class} with_location={with_loc}: measured {measured:.4} vs expected {expected:.4}"
            );
        }
        let spec = counts.class_fraction(QueryClass::Specific);
        assert!((spec - m.specific).abs() < 0.02);
        let uncls = counts.class_fraction(QueryClass::Unclassified);
        assert!((uncls - m.unclassified()).abs() < 0.02);
    }

    #[test]
    fn forced_class_queries_classify_back_to_their_class() {
        use crate::classifier::classify_query;
        let mut gen = QueryLogGenerator::new(QueryLogConfig::default());
        for with_location in [true, false] {
            for class in [QueryClass::General, QueryClass::Categorical, QueryClass::Specific] {
                for _ in 0..50 {
                    let q = gen.next_query_of(class, with_location);
                    let got = classify_query(&q).class;
                    assert_eq!(got, class, "query `{q}` (with_location={with_location})");
                }
            }
        }
        for _ in 0..50 {
            let q = gen.next_query_of(QueryClass::Unclassified, false);
            assert_eq!(classify_query(&q).class, QueryClass::Unclassified, "query `{q}`");
        }
    }

    #[test]
    fn keywords_drop_stop_words_and_lowercase() {
        assert_eq!(keywords_of("Denver Baseball"), vec!["denver", "baseball"]);
        assert_eq!(keywords_of("museum trip ideas"), vec!["museum"]);
        assert_eq!(keywords_of("sightseeing in paris"), vec!["sightseeing", "paris"]);
        assert!(keywords_of("things to do").is_empty());
        assert!(keywords_of("").is_empty());
    }

    #[test]
    fn bursty_logs_run_in_same_class_streaks_but_keep_the_mixture() {
        use crate::classifier::classify_query;
        let mut gen = QueryLogGenerator::new(QueryLogConfig {
            queries: 20_000,
            burst_length: 40,
            ..QueryLogConfig::default()
        });
        let log = gen.generate_bursty();
        assert_eq!(log.len(), 20_000);
        // Consecutive queries agree on class far more often than an i.i.d.
        // draw from the Table 1 mixture would (~25% agreement): inside a
        // 40-query burst, every neighbour pair matches.
        let classes: Vec<QueryClass> = log.iter().map(|q| classify_query(q).class).collect();
        let agree = classes.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            agree as f64 > 0.9 * (classes.len() - 1) as f64,
            "only {agree} of {} neighbour pairs agree",
            classes.len() - 1
        );
        // ...while the long-run class mixture still converges to Table 1.
        let counts = ClassCounts::from_queries(log.iter().map(String::as_str));
        let m = QueryMixture::default();
        let general = m.general_with_location + m.general_without_location;
        assert!((counts.class_fraction(QueryClass::General) - general).abs() < 0.08);
        assert!((counts.class_fraction(QueryClass::Specific) - m.specific).abs() < 0.05);
        // A burst length of 1 is exactly the i.i.d. generator.
        let mut a = QueryLogGenerator::new(QueryLogConfig {
            queries: 500,
            burst_length: 1,
            ..QueryLogConfig::default()
        });
        let mut b =
            QueryLogGenerator::new(QueryLogConfig { queries: 500, ..QueryLogConfig::default() });
        assert_eq!(a.generate_bursty(), b.generate());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = QueryLogGenerator::new(QueryLogConfig { queries: 100, ..Default::default() })
            .generate();
        let b = QueryLogGenerator::new(QueryLogConfig { queries: 100, ..Default::default() })
            .generate();
        assert_eq!(a, b);
        let c =
            QueryLogGenerator::new(QueryLogConfig { queries: 100, seed: 5, ..Default::default() })
                .generate();
        assert_ne!(a, c);
    }
}
