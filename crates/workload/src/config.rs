//! Configuration of the synthetic social content site.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic Y!Travel-style site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Number of users.
    pub users: usize,
    /// Number of travel items (destinations/attractions).
    pub items: usize,
    /// Number of cities items are contained in.
    pub cities: usize,
    /// Average number of friends per user (small-world lattice degree).
    pub avg_friends: usize,
    /// Watts–Strogatz rewiring probability.
    pub rewire_probability: f64,
    /// Average tagging actions per user.
    pub tags_per_user: usize,
    /// Average visits per user.
    pub visits_per_user: usize,
    /// Fraction of users who rate the items they visit.
    pub rating_fraction: f64,
    /// Zipf exponent governing item popularity (higher = more skew).
    pub zipf_exponent: f64,
    /// Zipf exponent governing *tag* popularity. `0.0` (the default) keeps
    /// the historical uniform tag draw — byte-identical generation for a
    /// fixed seed, which the pinned-counter regressions rely on; anything
    /// positive skews tag choice toward the head of the vocabulary, the
    /// shape real folksonomies show and the one the large-scale presets
    /// use so a few huge `(tag, user)` lists dominate the index.
    pub tag_zipf_exponent: f64,
    /// RNG seed (generation is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            users: 500,
            items: 1000,
            cities: 20,
            avg_friends: 8,
            rewire_probability: 0.1,
            tags_per_user: 10,
            visits_per_user: 15,
            rating_fraction: 0.3,
            zipf_exponent: 1.0,
            tag_zipf_exponent: 0.0,
            seed: 7,
        }
    }
}

impl SiteConfig {
    /// A small configuration suited to unit tests.
    pub fn tiny() -> Self {
        SiteConfig {
            users: 40,
            items: 60,
            cities: 5,
            avg_friends: 4,
            tags_per_user: 5,
            visits_per_user: 6,
            ..SiteConfig::default()
        }
    }

    /// Scale the activity-related knobs by a factor (used for sweeps).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.users = ((self.users as f64) * factor).max(4.0) as usize;
        self.items = ((self.items as f64) * factor).max(4.0) as usize;
        self
    }

    /// The preset used by the scale experiments (E14), valid from test-sized
    /// sites up through 10^6 users. Items grow at half the user rate (a site
    /// accretes catalog slower than membership), cities grow with the
    /// catalog, and per-user activity *shrinks* slightly past 10^5 users —
    /// at a million users most accounts are casual, and without the taper a
    /// 10^6-user site would not build on a laptop-class machine. Tag choice
    /// is Zipf-skewed (exponent 0.9): the defining property of large
    /// folksonomies, and the regime where delta-compressed posting layouts
    /// pay off because the head tags own very dense lists.
    pub fn at_scale(users: usize) -> Self {
        let users = users.max(4);
        let casual = users > 100_000;
        SiteConfig {
            users,
            items: (users / 2).max(16),
            cities: (users / 2_000).clamp(5, 64),
            avg_friends: 8,
            tags_per_user: if casual { 6 } else { 10 },
            visits_per_user: if casual { 8 } else { 12 },
            tag_zipf_exponent: 0.9,
            ..SiteConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SiteConfig::default();
        assert!(c.users > 0 && c.items > 0);
        assert!(c.rewire_probability >= 0.0 && c.rewire_probability <= 1.0);
        let t = SiteConfig::tiny();
        assert!(t.users < c.users);
    }

    #[test]
    fn scaling_changes_population() {
        let c = SiteConfig::tiny().scaled(2.0);
        assert_eq!(c.users, 80);
        assert_eq!(c.items, 120);
        let small = SiteConfig::tiny().scaled(0.01);
        assert!(small.users >= 4);
    }

    #[test]
    fn scale_presets_cover_a_million_users_and_taper_activity() {
        let small = SiteConfig::at_scale(10_000);
        let large = SiteConfig::at_scale(1_000_000);
        assert_eq!(small.users, 10_000);
        assert_eq!(large.users, 1_000_000);
        assert_eq!(large.items, 500_000);
        // Per-user activity shrinks at scale; tag skew is always on.
        assert!(large.tags_per_user < small.tags_per_user);
        assert!(large.visits_per_user < small.visits_per_user);
        assert!(small.tag_zipf_exponent > 0.0 && large.tag_zipf_exponent > 0.0);
        // The default config stays on the historical uniform draw, which
        // keeps fixed-seed generation (and the pinned E8 counters) stable.
        assert_eq!(SiteConfig::default().tag_zipf_exponent, 0.0);
        assert!(SiteConfig::at_scale(0).users >= 4);
    }
}
