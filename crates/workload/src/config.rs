//! Configuration of the synthetic social content site.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic Y!Travel-style site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Number of users.
    pub users: usize,
    /// Number of travel items (destinations/attractions).
    pub items: usize,
    /// Number of cities items are contained in.
    pub cities: usize,
    /// Average number of friends per user (small-world lattice degree).
    pub avg_friends: usize,
    /// Watts–Strogatz rewiring probability.
    pub rewire_probability: f64,
    /// Average tagging actions per user.
    pub tags_per_user: usize,
    /// Average visits per user.
    pub visits_per_user: usize,
    /// Fraction of users who rate the items they visit.
    pub rating_fraction: f64,
    /// Zipf exponent governing item popularity (higher = more skew).
    pub zipf_exponent: f64,
    /// RNG seed (generation is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            users: 500,
            items: 1000,
            cities: 20,
            avg_friends: 8,
            rewire_probability: 0.1,
            tags_per_user: 10,
            visits_per_user: 15,
            rating_fraction: 0.3,
            zipf_exponent: 1.0,
            seed: 7,
        }
    }
}

impl SiteConfig {
    /// A small configuration suited to unit tests.
    pub fn tiny() -> Self {
        SiteConfig {
            users: 40,
            items: 60,
            cities: 5,
            avg_friends: 4,
            tags_per_user: 5,
            visits_per_user: 6,
            ..SiteConfig::default()
        }
    }

    /// Scale the activity-related knobs by a factor (used for sweeps).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.users = ((self.users as f64) * factor).max(4.0) as usize;
        self.items = ((self.items as f64) * factor).max(4.0) as usize;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SiteConfig::default();
        assert!(c.users > 0 && c.items > 0);
        assert!(c.rewire_probability >= 0.0 && c.rewire_probability <= 1.0);
        let t = SiteConfig::tiny();
        assert!(t.users < c.users);
    }

    #[test]
    fn scaling_changes_population() {
        let c = SiteConfig::tiny().scaled(2.0);
        assert_eq!(c.users, 80);
        assert_eq!(c.items, 120);
        let small = SiteConfig::tiny().scaled(0.01);
        assert!(small.users >= 4);
    }
}
