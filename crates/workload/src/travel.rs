//! The travel-domain vocabulary shared by the site generator, the query
//! generator and the query classifier.
//!
//! The paper's Table 1 classifies queries using "domain knowledge we have
//! about geographical locations and travel destinations": location terms,
//! general terms ("things to do", "attraction", or a bare location),
//! categorical terms ("hotel", "family", "historic", …) and specific
//! destination names ("Disneyland", "Yosemite Park"). This module is that
//! domain knowledge for the synthetic site.

use serde::{Deserialize, Serialize};

/// Location names (cities / regions) recognized by the classifier.
pub const LOCATIONS: &[&str] = &[
    "denver",
    "barcelona",
    "paris",
    "london",
    "tokyo",
    "sydney",
    "rome",
    "cairo",
    "lima",
    "toronto",
    "chicago",
    "boston",
    "seattle",
    "miami",
    "austin",
    "orlando",
    "vancouver",
    "lisbon",
    "prague",
    "vienna",
];

/// Terms marking a *general* query ("things to do", "attraction", …).
pub const GENERAL_TERMS: &[&str] = &[
    "things to do",
    "attractions",
    "attraction",
    "sightseeing",
    "what to see",
    "places to visit",
    "guide",
];

/// Terms marking a *categorical* query ("hotel", "family", "historic", …).
pub const CATEGORICAL_TERMS: &[&str] = &[
    "hotel",
    "hotels",
    "restaurant",
    "restaurants",
    "family",
    "historic",
    "museum",
    "museums",
    "beach",
    "beaches",
    "nightlife",
    "romantic",
    "budget",
    "luxury",
    "hiking",
    "skiing",
    "baseball",
    "kids",
    "babies",
];

/// Specific destination names ("Disneyland", "Yosemite Park", …).
pub const SPECIFIC_DESTINATIONS: &[&str] = &[
    "disneyland",
    "yosemite park",
    "coors field",
    "eiffel tower",
    "sagrada familia",
    "statue of liberty",
    "golden gate bridge",
    "fisherman's wharf",
    "machu picchu",
    "grand canyon",
];

/// Tags used by the activity generator (a superset of the categorical terms
/// plus a few flavor tags).
pub const ACTIVITY_TAGS: &[&str] = &[
    "baseball",
    "stadium",
    "museum",
    "history",
    "family",
    "kids",
    "beach",
    "hiking",
    "food",
    "art",
    "music",
    "romantic",
    "budget",
    "luxury",
    "skiing",
    "architecture",
    "nightlife",
    "nature",
    "photography",
    "shopping",
];

/// The travel vocabulary bundled for convenience.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TravelVocabulary;

impl TravelVocabulary {
    /// Location names.
    pub fn locations(&self) -> &'static [&'static str] {
        LOCATIONS
    }
    /// General-query terms.
    pub fn general_terms(&self) -> &'static [&'static str] {
        GENERAL_TERMS
    }
    /// Categorical-query terms.
    pub fn categorical_terms(&self) -> &'static [&'static str] {
        CATEGORICAL_TERMS
    }
    /// Specific destination names.
    pub fn specific_destinations(&self) -> &'static [&'static str] {
        SPECIFIC_DESTINATIONS
    }
    /// Activity tags.
    pub fn activity_tags(&self) -> &'static [&'static str] {
        ACTIVITY_TAGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_are_nonempty_and_lowercase() {
        let v = TravelVocabulary;
        for list in [
            v.locations(),
            v.general_terms(),
            v.categorical_terms(),
            v.specific_destinations(),
            v.activity_tags(),
        ] {
            assert!(!list.is_empty());
            assert!(list.iter().all(|t| *t == t.to_lowercase()));
        }
    }

    #[test]
    fn classes_do_not_overlap_with_locations() {
        for loc in LOCATIONS {
            assert!(!CATEGORICAL_TERMS.contains(loc));
            assert!(!SPECIFIC_DESTINATIONS.contains(loc));
        }
    }
}
