//! Synthetic tag-event streams for the live-index experiments.
//!
//! The paper's maintenance story (§6.2) assumes tagging activity keeps
//! arriving after the indexes are built. This module generates such a
//! stream against an already-materialized [`SiteModel`]: Zipf-skewed
//! assignments (the same popularity skew as [`crate::generator`]) mixed
//! with retractions of assignments the site already holds, so replaying
//! the stream through `SiteModel::apply` + `*Index::apply` exercises both
//! growth and shrinkage of posting lists.

use crate::generator::ZipfSampler;
use crate::travel::ACTIVITY_TAGS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socialscope_content::{SiteModel, TagEvent};
use socialscope_graph::NodeId;

/// Parameters of a synthetic tag-event stream.
#[derive(Debug, Clone)]
pub struct EventStreamConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Fraction of events that retract an existing assignment (the rest
    /// are fresh Zipf-skewed assignments). Clamped to `[0, 1]`.
    pub retract_fraction: f64,
    /// Zipf exponent for the user/item popularity skew of assignments.
    pub zipf_exponent: f64,
    /// RNG seed; the stream is deterministic for a fixed seed and site.
    pub seed: u64,
}

impl Default for EventStreamConfig {
    fn default() -> Self {
        EventStreamConfig { events: 100, retract_fraction: 0.2, zipf_exponent: 1.1, seed: 42 }
    }
}

/// Generate a deterministic stream of tag events against `site`.
///
/// Assignments pick a Zipf-ranked user, a Zipf-ranked item, and an
/// activity tag; retractions are sampled (without replacement) from the
/// assignments `site` currently holds, so each retraction is effective
/// when the stream is replayed in order from `site`'s current state.
/// Returns an empty stream if the site has no users or no items.
pub fn generate_events(site: &SiteModel, config: &EventStreamConfig) -> Vec<TagEvent> {
    let users: Vec<NodeId> = site.users().collect();
    let items: Vec<NodeId> = site.items().collect();
    if users.is_empty() || items.is_empty() {
        return Vec::new();
    }

    // Existing (tagger, item, tag) triples, sorted so the stream does not
    // depend on hash-map iteration order.
    let mut existing: Vec<(NodeId, NodeId, String)> = site
        .tag_assignments()
        .flat_map(|(item, tag, taggers)| {
            taggers.iter().map(move |&tagger| (tagger, item, tag.to_string()))
        })
        .collect();
    existing.sort();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let retract_p = config.retract_fraction.clamp(0.0, 1.0);
    let user_ranks = ZipfSampler::new(users.len(), config.zipf_exponent);
    let item_ranks = ZipfSampler::new(items.len(), config.zipf_exponent);

    let mut events = Vec::with_capacity(config.events);
    for _ in 0..config.events {
        if !existing.is_empty() && rng.gen_bool(retract_p) {
            let idx = rng.gen_range(0..existing.len());
            let (tagger, item, tag) = existing.swap_remove(idx);
            events.push(TagEvent::retract(tagger, item, tag));
        } else {
            let tagger = users[user_ranks.sample(&mut rng)];
            let item = items[item_ranks.sample(&mut rng)];
            let tag = ACTIVITY_TAGS[rng.gen_range(0..ACTIVITY_TAGS.len())];
            events.push(TagEvent::assign(tagger, item, tag));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiteConfig;
    use crate::generator::generate_site;

    fn tiny_site() -> SiteModel {
        SiteModel::from_graph(&generate_site(&SiteConfig::tiny()).graph)
    }

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let site = tiny_site();
        let config = EventStreamConfig { events: 50, ..EventStreamConfig::default() };
        let a = generate_events(&site, &config);
        let b = generate_events(&site, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let c = generate_events(&site, &EventStreamConfig { seed: 7, ..config });
        assert_ne!(a, c);
    }

    #[test]
    fn retract_fraction_is_honored_and_retracts_are_effective() {
        let site = tiny_site();
        let config = EventStreamConfig {
            events: 200,
            retract_fraction: 0.5,
            ..EventStreamConfig::default()
        };
        let events = generate_events(&site, &config);
        let retracts = events.iter().filter(|e| !e.is_assign()).count();
        assert!(retracts > 50, "expected roughly half retracts, got {retracts}");
        assert!(retracts < 150, "expected roughly half retracts, got {retracts}");

        // Replaying the stream must touch the site: every retract targets a
        // live assignment at the moment it is applied, and fresh assigns
        // add new ones.
        let mut live = site.clone();
        for event in &events {
            if !event.is_assign() {
                assert!(
                    live.taggers_of(event.item(), event.tag()).contains(&event.tagger()),
                    "retract of a missing assignment: {event:?}"
                );
            }
            live.apply(std::slice::from_ref(event));
        }
    }

    #[test]
    fn all_or_none_extremes() {
        let site = tiny_site();
        let assigns_only = generate_events(
            &site,
            &EventStreamConfig { events: 40, retract_fraction: 0.0, ..Default::default() },
        );
        assert!(assigns_only.iter().all(TagEvent::is_assign));

        let empty_site = SiteModel::default();
        assert!(generate_events(&empty_site, &EventStreamConfig::default()).is_empty());
    }
}
