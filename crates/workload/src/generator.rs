//! The synthetic Y!Travel-style site generator.

use crate::config::SiteConfig;
use crate::travel::{ACTIVITY_TAGS, LOCATIONS, SPECIFIC_DESTINATIONS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use socialscope_graph::{GraphBuilder, NodeId, SocialGraph};

/// A generated site: the graph plus the id lists the experiments need.
#[derive(Debug, Clone)]
pub struct GeneratedSite {
    /// The social content graph.
    pub graph: SocialGraph,
    /// User node ids.
    pub users: Vec<NodeId>,
    /// Item node ids (destinations).
    pub items: Vec<NodeId>,
    /// City node ids.
    pub cities: Vec<NodeId>,
}

/// A simple Zipf sampler over ranks `0..n` with exponent `s`, implemented
/// with an explicit cumulative table (no extra dependency needed).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for rank in 1..=n.max(1) {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Generate a synthetic social content site.
///
/// * Friendships follow a Watts–Strogatz small world: a ring lattice where
///   each user connects to their `avg_friends` nearest neighbours, with each
///   edge rewired to a random endpoint with probability
///   `rewire_probability` (refs [27, 29] of the paper).
/// * Items are destinations named from the travel vocabulary, each contained
///   in one of `cities` city items (geographic containment links).
/// * Tagging, visiting and rating activity is Zipf-distributed over items,
///   so a few destinations are very popular — the skew the index-clustering
///   experiments rely on.
pub fn generate_site(config: &SiteConfig) -> GeneratedSite {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();

    // Users.
    let users: Vec<NodeId> = (0..config.users)
        .map(|i| {
            b.add_user_with_interests(
                &format!("user{i}"),
                &[ACTIVITY_TAGS[i % ACTIVITY_TAGS.len()]],
            )
        })
        .collect();

    // Cities and destinations.
    let cities: Vec<NodeId> = (0..config.cities.max(1))
        .map(|i| b.add_item(LOCATIONS[i % LOCATIONS.len()], &["city", "location"]))
        .collect();
    let items: Vec<NodeId> = (0..config.items)
        .map(|i| {
            let name = if i < SPECIFIC_DESTINATIONS.len() {
                SPECIFIC_DESTINATIONS[i].to_string()
            } else {
                format!("destination {i}")
            };
            let keywords = [
                ACTIVITY_TAGS[i % ACTIVITY_TAGS.len()],
                ACTIVITY_TAGS[(i / 3 + 7) % ACTIVITY_TAGS.len()],
                LOCATIONS[i % LOCATIONS.len()],
            ];
            let item = b.add_item_with_keywords(&name, &["destination"], &keywords);
            let city = cities[i % cities.len()];
            b.contained_in(item, city);
            item
        })
        .collect();

    // Small-world friendships (Watts–Strogatz).
    let n = users.len();
    let k = config.avg_friends.max(2) / 2;
    if n > 2 {
        for i in 0..n {
            for j in 1..=k {
                let mut target = (i + j) % n;
                if rng.gen_bool(config.rewire_probability.clamp(0.0, 1.0)) {
                    target = rng.gen_range(0..n);
                }
                if target != i {
                    b.befriend(users[i], users[target]);
                }
            }
        }
    }

    // Zipf-skewed activity. Tag popularity is skewed only when the config
    // asks for it: with the exponent at 0.0 the draw below is the
    // historical uniform `choose`, preserving the exact RNG call sequence
    // (and therefore byte-identical fixed-seed sites) the pinned-counter
    // regressions depend on.
    let popularity = ZipfSampler::new(items.len().max(1), config.zipf_exponent);
    let tag_popularity = (config.tag_zipf_exponent > 0.0)
        .then(|| ZipfSampler::new(ACTIVITY_TAGS.len(), config.tag_zipf_exponent));
    let pick_tag = |rng: &mut StdRng| match &tag_popularity {
        Some(sampler) => ACTIVITY_TAGS[sampler.sample(rng)],
        None => *ACTIVITY_TAGS.choose(rng).expect("non-empty tags"),
    };
    for &user in &users {
        for _ in 0..config.tags_per_user {
            let item = items[popularity.sample(&mut rng)];
            let tag_a = pick_tag(&mut rng);
            let tag_b = pick_tag(&mut rng);
            b.tag(user, item, &[tag_a, tag_b]);
        }
        for _ in 0..config.visits_per_user {
            let item = items[popularity.sample(&mut rng)];
            b.visit(user, item);
            if rng.gen_bool(config.rating_fraction.clamp(0.0, 1.0)) {
                b.rate(user, item, rng.gen_range(1.0..=5.0));
            }
        }
    }

    GeneratedSite { graph: b.build(), users, items, cities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::GraphStats;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate_site(&SiteConfig::tiny());
        let b = generate_site(&SiteConfig::tiny());
        assert_eq!(a.graph, b.graph);
        let c = generate_site(&SiteConfig { seed: 99, ..SiteConfig::tiny() });
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn generated_site_has_expected_population_and_invariants() {
        let site = generate_site(&SiteConfig::tiny());
        let cfg = SiteConfig::tiny();
        assert_eq!(site.users.len(), cfg.users);
        assert_eq!(site.items.len(), cfg.items);
        site.graph.check_invariants().unwrap();
        let stats = GraphStats::compute(&site.graph);
        assert_eq!(stats.node_type_histogram["user"], cfg.users);
        assert!(stats.link_type_histogram["friend"] > 0);
        assert!(stats.link_type_histogram["tag"] > 0);
        assert!(stats.link_type_histogram["visit"] > 0);
    }

    #[test]
    fn small_world_network_is_clustered() {
        let site = generate_site(&SiteConfig {
            users: 100,
            rewire_probability: 0.05,
            avg_friends: 6,
            ..SiteConfig::tiny()
        });
        let stats = GraphStats::compute(&site.graph);
        // A ring lattice with low rewiring keeps a high clustering
        // coefficient — far above a random graph of the same density.
        assert!(
            stats.network_clustering_coefficient > 0.2,
            "clustering = {}",
            stats.network_clustering_coefficient
        );
    }

    #[test]
    fn activity_is_skewed_toward_popular_items() {
        let site = generate_site(&SiteConfig { users: 200, ..SiteConfig::tiny() });
        let mut in_degrees: Vec<usize> =
            site.items.iter().map(|i| site.graph.in_links(*i).count()).collect();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = in_degrees.iter().take(in_degrees.len() / 10).sum();
        let total: usize = in_degrees.iter().sum();
        // The top 10% of items should attract a disproportionate share of
        // the activity (well above 10%).
        assert!(top_decile as f64 > 0.2 * total as f64);
    }

    #[test]
    fn tag_popularity_skew_is_opt_in() {
        use std::collections::HashMap;
        let count_tags = |cfg: &SiteConfig| -> Vec<usize> {
            let site = generate_site(cfg);
            let mut counts: HashMap<String, usize> = HashMap::new();
            for &user in &site.users {
                for link in site.graph.out_links(user) {
                    let tags =
                        link.attrs.get("tags").map(|v| v.string_tokens()).unwrap_or_default();
                    for k in tags {
                        *counts.entry(k).or_default() += 1;
                    }
                }
            }
            let mut sorted: Vec<usize> = counts.into_values().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted
        };
        let skewed =
            count_tags(&SiteConfig { users: 300, tag_zipf_exponent: 1.2, ..SiteConfig::tiny() });
        let uniform = count_tags(&SiteConfig { users: 300, ..SiteConfig::tiny() });
        let share = |c: &[usize]| c[0] as f64 / c.iter().sum::<usize>() as f64;
        // The head tag of the skewed site owns a far larger share of all
        // tagging than under the uniform draw.
        assert!(
            share(&skewed) > 1.8 * share(&uniform),
            "skewed head share {:.3} vs uniform {:.3}",
            share(&skewed),
            share(&uniform)
        );
        // Opt-in only: the default exponent still generates the same site
        // as an explicit 0.0 (the historical uniform path).
        let a = generate_site(&SiteConfig::tiny());
        let b = generate_site(&SiteConfig { tag_zipf_exponent: 0.0, ..SiteConfig::tiny() });
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..5000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50]);
        assert!(counts[0] > counts[99]);
    }
}
