//! # socialscope-workload
//!
//! Synthetic social-content-site and query-workload generators used to
//! reproduce the SocialScope (CIDR 2009) experiments.
//!
//! The paper's evidence rests on data we cannot access (10 million real
//! Y!Travel queries, Yahoo!'s production graphs); per the substitution
//! policy in `DESIGN.md`, this crate builds the closest synthetic
//! equivalents:
//!
//! * [`generator`] — a Y!Travel-style social content graph: users with
//!   small-world friendship structure (Watts–Strogatz rewiring, after the
//!   paper's refs [27, 29]), a travel-object catalog with geographic
//!   containment, and power-law (Zipf) tagging/visiting/rating activity;
//! * [`travel`] — the travel-domain vocabulary (locations, categories,
//!   specific destinations) shared by the generator and the classifier;
//! * [`queries`] + [`classifier`] — a parameterized query-log generator and
//!   the general/categorical/specific × with/without-location classifier
//!   that regenerates **Table 1**;
//! * [`sizing`] — the analytic index-sizing model behind §6.2's
//!   back-of-envelope ("≈ 1 TB for a moderate site");
//! * [`events`] — a tag-event stream generator for the live-index
//!   maintenance experiments (Zipf-skewed assigns mixed with retracts).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classifier;
pub mod config;
pub mod events;
pub mod generator;
pub mod queries;
pub mod sizing;
pub mod travel;

pub use classifier::{classify_query, ClassCounts, QueryClass};
pub use config::SiteConfig;
pub use events::{generate_events, EventStreamConfig};
pub use generator::{generate_site, GeneratedSite, ZipfSampler};
pub use queries::{keywords_of, QueryLogConfig, QueryLogGenerator};
pub use sizing::{
    paper_sizing_example, IndexSizingModel, SizingEstimate, COMPRESSED_BYTES_PER_ENTRY,
};
pub use travel::TravelVocabulary;
