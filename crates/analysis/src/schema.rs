//! The `schema_sync` rule: the JSON the Rust side *emits* and the schema
//! the CI validator *requires* are written down twice — field lists in
//! `crates/bench/src/bin/experiments.rs` format strings and
//! `crates/content/src/wire.rs` emitters on one side, `REQUIRED_*` /
//! `*_CONTRACT` set literals in `.github/workflows/validate_bench.py` on
//! the other. This check diffs them so a rename on either side fails in
//! `cargo run -p socialscope_analysis -- lint` (and the `analysis` CI
//! job) with a message naming both files, instead of surfacing as a
//! confusing assertion deep in a bench validation run.
//!
//! Three checks:
//!
//! 1. Every string the Python validator requires (in a `REQUIRED_*` or
//!    `*_CONTRACT` set) appears as a quoted literal in some Rust emitter.
//! 2. Every field of a `pub struct` in `wire.rs` appears as a quoted
//!    *key* (`"field":`) in `wire.rs` itself — the wire structs and their
//!    hand-rolled serializers cannot drift apart.
//! 3. Extraction sanity floors: if any side yields suspiciously few
//!    entries, the extraction itself broke and the check fails loudly
//!    rather than silently passing on empty sets.

use crate::lexer::{lex, unescape_content, TokKind, Token};
use crate::lint::Violation;
use std::fs;
use std::path::Path;

const EXPERIMENTS_RS: &str = "crates/bench/src/bin/experiments.rs";
const WIRE_RS: &str = "crates/content/src/wire.rs";
const VALIDATOR_PY: &str = ".github/workflows/validate_bench.py";

/// Floors under which extraction is considered broken (the real counts
/// sit comfortably above; see the unit test pinning them).
const MIN_EXPERIMENT_KEYS: usize = 40;
const MIN_WIRE_KEYS: usize = 10;
const MIN_WIRE_FIELDS: usize = 10;
const MIN_PYTHON_FIELDS: usize = 50;

/// Run the schema-sync check for the workspace at `root`.
pub fn check_schema_sync(root: &Path) -> Result<Vec<Violation>, String> {
    let read = |rel: &str| {
        fs::read_to_string(root.join(rel)).map_err(|error| format!("read {rel}: {error}"))
    };
    let experiments = rust_strings(&read(EXPERIMENTS_RS)?);
    let wire_src = read(WIRE_RS)?;
    let wire = rust_strings(&wire_src);
    let wire_fields = pub_struct_fields(&wire_src);
    let python_sets = python_required_sets(&read(VALIDATOR_PY)?);

    let mut violations = Vec::new();
    let floor = |file: &str, what: &str, got: usize, min: usize, out: &mut Vec<Violation>| {
        if got < min {
            out.push(violation(
                file,
                1,
                format!(
                    "extraction sanity floor failed: found {got} {what} (expected >= {min}) — \
                     the schema_sync extractor no longer understands this file"
                ),
            ));
        }
    };
    floor(
        EXPERIMENTS_RS,
        "JSON keys",
        experiments.keys.len(),
        MIN_EXPERIMENT_KEYS,
        &mut violations,
    );
    floor(WIRE_RS, "JSON keys", wire.keys.len(), MIN_WIRE_KEYS, &mut violations);
    floor(WIRE_RS, "pub struct fields", wire_fields.len(), MIN_WIRE_FIELDS, &mut violations);
    let python_total: usize = python_sets.iter().map(|s| s.members.len()).sum();
    floor(VALIDATOR_PY, "required fields", python_total, MIN_PYTHON_FIELDS, &mut violations);

    // 1. Python-required strings must exist in a Rust emitter.
    for set in &python_sets {
        for member in &set.members {
            let emitted = experiments.quoted.iter().any(|q| q == member)
                || wire.quoted.iter().any(|q| q == member);
            if !emitted {
                violations.push(violation(
                    VALIDATOR_PY,
                    set.line,
                    format!(
                        "`{}` requires \"{member}\" but no Rust emitter ({EXPERIMENTS_RS}, \
                         {WIRE_RS}) contains that quoted literal — rename drifted; update \
                         whichever side is wrong",
                        set.name
                    ),
                ));
            }
        }
    }
    // 2. Wire struct fields must be emitted as keys by wire.rs.
    for field in &wire_fields {
        if !wire.keys.iter().any(|k| k == &field.name) {
            violations.push(violation(
                WIRE_RS,
                field.line,
                format!(
                    "pub struct `{}` field `{}` never appears as a JSON key (\"{}\":) in a \
                     wire.rs emitter — struct and serializer drifted",
                    field.strukt, field.name, field.name
                ),
            ));
        }
    }
    Ok(violations)
}

fn violation(file: &str, line: u32, message: String) -> Violation {
    Violation { rule: "schema_sync", file: file.to_string(), line, message }
}

// ---------------------------------------------------------------------------
// Rust side
// ---------------------------------------------------------------------------

struct RustStrings {
    /// Quoted identifiers in *key position* (`"ident"` followed by `:`)
    /// inside any non-test string literal, after unescaping.
    keys: Vec<String>,
    /// Every quoted identifier inside a non-test string literal (keys and
    /// plain values, e.g. contract names).
    quoted: Vec<String>,
}

/// Scan every non-test string literal of a Rust source for quoted
/// identifiers, classifying key position by a following `:`.
fn rust_strings(src: &str) -> RustStrings {
    let tokens = lex(src);
    let mask = crate::lint::test_mask_for(&tokens, src);
    let mut keys = Vec::new();
    let mut quoted = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokKind::Str || mask[i] {
            continue;
        }
        let content = unescape_content(token.text(src));
        scan_quoted(&content, &mut keys, &mut quoted);
    }
    keys.sort();
    keys.dedup();
    quoted.sort();
    quoted.dedup();
    RustStrings { keys, quoted }
}

/// Find `"ident"` occurrences in `text`; those followed (modulo spaces)
/// by `:` are keys. Non-identifier quoted content (format holes, JSON
/// punctuation) is ignored.
fn scan_quoted(text: &str, keys: &mut Vec<String>, quoted: &mut Vec<String>) {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut end = start;
        while end < bytes.len() && bytes[end] != b'"' {
            end += 1;
        }
        if end >= bytes.len() {
            break;
        }
        let inner = &text[start..end];
        let is_ident = !inner.is_empty()
            && inner.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
            && !inner.as_bytes()[0].is_ascii_digit();
        if is_ident {
            quoted.push(inner.to_string());
            let mut after = end + 1;
            while after < bytes.len() && bytes[after] == b' ' {
                after += 1;
            }
            if after < bytes.len() && bytes[after] == b':' {
                keys.push(inner.to_string());
            }
        }
        i = end + 1;
    }
}

struct WireField {
    strukt: String,
    name: String,
    line: u32,
}

/// Field names of every non-test `pub struct Name { ... }` (tuple and
/// unit structs skipped; private structs — parser internals — skipped).
fn pub_struct_fields(src: &str) -> Vec<WireField> {
    let tokens = lex(src);
    let mask = crate::lint::test_mask_for(&tokens, src);
    let code: Vec<&Token> = tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !mask[*i] && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        })
        .map(|(_, t)| t)
        .collect();
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let ident = |i: usize| {
        code.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text(src)).unwrap_or("")
    };

    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(ident(i) == "pub" && ident(i + 1) == "struct") {
            i += 1;
            continue;
        }
        let strukt = ident(i + 2).to_string();
        let mut j = i + 3;
        // Skip to the body opener; `(` / `;` mean tuple / unit — skip.
        while j < code.len() && !matches!(text(j), "{" | "(" | ";") {
            j += 1;
        }
        if text(j) != "{" {
            i = j + 1;
            continue;
        }
        let mut depth = 1usize;
        let mut k = j + 1;
        // A field name: an identifier followed by a single `:` at body
        // depth 1, preceded by `{`, `,`, or `)` (visibility like
        // `pub(crate)`). Generic-argument commas never precede an
        // `ident:` pair, so nested types do not confuse this.
        while k < code.len() && depth > 0 {
            match text(k) {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {
                    let prev = text(k.wrapping_sub(1));
                    if depth == 1
                        && code[k].kind == TokKind::Ident
                        && text(k + 1) == ":"
                        && text(k + 2) != ":"
                        && matches!(prev, "{" | "," | ")" | "pub")
                    {
                        fields.push(WireField {
                            strukt: strukt.clone(),
                            name: text(k).to_string(),
                            line: code[k].line,
                        });
                    }
                }
            }
            k += 1;
        }
        i = k;
    }
    fields
}

// ---------------------------------------------------------------------------
// Python side
// ---------------------------------------------------------------------------

struct PythonSet {
    name: String,
    line: u32,
    members: Vec<String>,
}

/// Extract `REQUIRED_* = {...}` and `*_CONTRACT = {...}` string-set
/// literals from the validator source. Handles multi-line sets and `#`
/// comments; non-string members (numbers in e.g. `BATCH_SIZES`) are
/// outside the matched names anyway.
fn python_required_sets(src: &str) -> Vec<PythonSet> {
    let mut sets = Vec::new();
    let mut line_no = 0u32;
    let mut rest = src;
    while let Some(newline) = rest.find('\n').map(|p| p + 1).or(Some(rest.len())) {
        if rest.is_empty() {
            break;
        }
        line_no += 1;
        let line = &rest[..newline.min(rest.len())];
        let trimmed = line.trim_end();
        if let Some((name, tail)) = trimmed.split_once('=') {
            let name = name.trim();
            let wanted = (name.starts_with("REQUIRED_") || name.ends_with("_CONTRACT"))
                && name.bytes().all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_');
            if wanted && tail.trim_start().starts_with('{') {
                // The literal starts on this line and may span several;
                // scan from the `{` in the remaining source.
                let tail_start = trimmed.len() - tail.len();
                let offset = tail_start + (tail.len() - tail.trim_start().len());
                let members = python_set_members(&rest[offset..]);
                sets.push(PythonSet { name: name.to_string(), line: line_no, members });
            }
        }
        rest = &rest[newline..];
    }
    sets
}

/// Collect double-quoted strings inside a `{...}` literal starting at
/// `text[0] == '{'`, respecting nesting, strings, and `#` comments.
fn python_set_members(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut members = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'"' {
                    end += 1;
                }
                members.push(text[start..end.min(text.len())].to_string());
                i = end;
            }
            _ => {}
        }
        i += 1;
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_key_scan_separates_keys_from_values() {
        let mut keys = Vec::new();
        let mut quoted = Vec::new();
        scan_quoted(
            "{{\"engine\":\"{}\",\"contract\":[\"roundtrip_identical\"],\"k\":{}}}",
            &mut keys,
            &mut quoted,
        );
        assert_eq!(keys, vec!["engine", "contract", "k"]);
        assert!(quoted.contains(&"roundtrip_identical".to_string()));
    }

    #[test]
    fn pub_struct_fields_skip_private_tuple_and_test_structs() {
        let src = "
pub struct Wire { pub version: u32, pub(crate) detail: String }
pub struct Tuple(u32);
struct Parser { pos: usize }
#[cfg(test)]
pub struct TestOnly { helper: u32 }
pub struct Generic { map: std::collections::HashMap<String, Vec<u32>> }
";
        let fields = pub_struct_fields(src);
        let names: Vec<_> = fields.iter().map(|f| format!("{}.{}", f.strukt, f.name)).collect();
        assert_eq!(names, vec!["Wire.version", "Wire.detail", "Generic.map"]);
    }

    #[test]
    fn python_sets_parse_multiline_with_comments() {
        let src = "
IGNORED = {\"a\"}
REQUIRED_TOPK_RUN = {\"experiment\", \"seed\",  # trailing comment
                     \"scale\"}
SERVING_CONTRACT = {\"roundtrip_identical\",
                    \"apply_visible\"}
THRESHOLD = 2.0
";
        let sets = python_required_sets(src);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].name, "REQUIRED_TOPK_RUN");
        assert_eq!(sets[0].members, vec!["experiment", "seed", "scale"]);
        assert_eq!(sets[1].name, "SERVING_CONTRACT");
        assert_eq!(sets[1].members.len(), 2);
    }
}
