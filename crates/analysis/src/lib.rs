//! `socialscope_analysis` — correctness tooling for the workspace, in two
//! engines behind one binary:
//!
//! - **Invariant linter** ([`lint`], [`schema`]): a hand-rolled
//!   token-level lexer ([`lexer`]) walks every crate under `crates/*/src`
//!   and enforces the serving-path invariants (no panics, confined clock
//!   reads, confined thread creation, confined `process::exit`, the
//!   batcher's lock order) plus a schema-sync diff between the Rust JSON
//!   emitters and the CI validator's required-field sets. Escape hatch:
//!   `// lint: allow(<rule>, reason = "...")` — the reason is mandatory
//!   and the pragma itself is linted (malformed or unused pragmas fail).
//! - **Model checker** (`mc`, compiled in by the `model` feature): a loom-lite
//!   deterministic scheduler — instrumented mutex/condvar shims and a DFS
//!   over thread interleavings with a bounded-preemption budget — applied
//!   to extracted models of the server batcher's enqueue/`next_batch`/
//!   shutdown epoch protocol and the executor's panic propagation. It
//!   proves (exhaustively, within the bound) no lost wakeup, no deadlock
//!   and exactly-once delivery, and flags the pre-review-fix batcher
//!   (epoch snapshot removed) with a concrete lost-wakeup interleaving.
//!
//! Zero dependencies by design: the analysis tool must never be the thing
//! that drags a parser generator or a proc-macro stack into the build.

pub mod lexer;
pub mod lint;
#[cfg(feature = "model")]
pub mod mc;
pub mod schema;
