//! The workspace invariant linter: token-level rules over every crate in
//! `crates/*/src`, with an inline pragma escape hatch that *requires a
//! written reason* and is itself linted (malformed → `bad_pragma`, unused
//! → `stale_pragma`).
//!
//! Rules:
//!
//! - `no_panic` — no `.unwrap(` / `.expect(` / `panic!` in non-test code
//!   of the serving-path crates (`server`, `exec`, `content`,
//!   `discovery`). True invariants carry a pragma with the invariant
//!   written out.
//! - `clock_confined` — `Instant::now` / `SystemTime::now` in serving
//!   crates only inside the deadline-clock module
//!   (`crates/content/src/deadline.rs`).
//! - `thread_confined` — `thread::spawn` / `thread::scope` /
//!   `thread::Builder` only in `exec` and `server`.
//! - `exit_confined` — `process::exit` only in files named `main.rs`.
//! - `lock_order` — in the `server` crate, the batcher's `state` mutex is
//!   never held (lexically, per function body) while acquiring the `gate`
//!   mutex, and vice versa; `bump_and_notify` counts as a gate
//!   acquisition since its body takes the gate.
//!
//! Pragma syntax, on the violating line or the line(s) immediately above
//! (a pragma covers the statement that follows it, up to the next `;` or
//! `{`):
//!
//! ```text
//! // lint: allow(no_panic, reason = "true invariant: ...")
//! ```

use crate::lexer::{lex, TokKind, Token};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates on the serving path: a panic, an unbudgeted clock read, or an
/// unsupervised thread here is a liability for the latency SLOs.
const SERVING_CRATES: &[&str] = &["server", "exec", "content", "discovery"];

/// Crates allowed to create threads: the executor (sharded parallel
/// runs) and the server (worker + accept threads).
const THREAD_CRATES: &[&str] = &["exec", "server"];

/// The one serving-path module allowed to read the wall clock.
const CLOCK_MODULE: &str = "crates/content/src/deadline.rs";

/// Every rule a pragma may name.
pub const RULES: &[&str] = &[
    "no_panic",
    "clock_confined",
    "thread_confined",
    "exit_confined",
    "lock_order",
    "schema_sync",
];

/// One finding: which rule, where, and why.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Lint every `.rs` file under `crates/*/src` of the workspace at `root`.
/// Returns violations sorted by (file, line); empty means clean.
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for file in workspace_files(root)? {
        let src = fs::read_to_string(&file)
            .map_err(|error| format!("read {}: {error}", file.display()))?;
        let rel = relative(root, &file);
        violations.extend(lint_file(&rel, &src));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// All `.rs` files under `crates/*/src`, sorted for deterministic output.
/// Vendored shims, examples, and integration-test trees are out of scope:
/// the invariants guard first-party serving code.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|error| format!("read {}: {error}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|error| format!("read {}: {error}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/")
}

/// The crate name from a `crates/<name>/src/...` relative path.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("")
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

struct Pragma {
    rule: &'static str,
    /// Line of the pragma comment itself.
    line: u32,
    /// Last line the pragma covers: its own line through the end of the
    /// statement that follows (next `;` or `{` in code tokens).
    end_line: u32,
    used: bool,
}

/// Parse one line comment. `None`: not a pragma at all. `Some(Err)`: it
/// tried to be one and is malformed (→ `bad_pragma`). The returned rule
/// is the interned entry from [`RULES`].
fn parse_pragma(text: &str) -> Option<Result<(&'static str, String), String>> {
    let body = text.strip_prefix("//")?.trim_start();
    let rest = body.strip_prefix("lint:")?.trim();
    let inner = match rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) {
        Some(inner) => inner,
        None => return Some(Err("expected `lint: allow(<rule>, reason = \"...\")`".to_string())),
    };
    let (rule, tail) = match inner.split_once(',') {
        Some(parts) => parts,
        None => return Some(Err("missing `, reason = \"...\"`".to_string())),
    };
    let rule = rule.trim();
    let rule = match RULES.iter().find(|r| **r == rule) {
        Some(interned) => *interned,
        None => return Some(Err(format!("unknown rule `{rule}`"))),
    };
    let reason = match tail.trim().strip_prefix("reason") {
        Some(r) => r.trim_start(),
        None => return Some(Err("expected `reason = \"...\"`".to_string())),
    };
    let reason = match reason.strip_prefix('=') {
        Some(r) => r.trim(),
        None => return Some(Err("expected `reason = \"...\"`".to_string())),
    };
    let reason = match reason.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        Some(r) => r,
        None => return Some(Err("reason must be a quoted string".to_string())),
    };
    if reason.trim().is_empty() {
        return Some(Err("reason must not be empty — write the invariant down".to_string()));
    }
    Some(Ok((rule, reason.to_string())))
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

/// Lint one file's source. `rel` is the workspace-relative path (used for
/// crate classification and reporting).
pub fn lint_file(rel: &str, src: &str) -> Vec<Violation> {
    let tokens = lex(src);
    let test_mask = test_mask(&tokens, src);
    let krate = crate_of(rel);
    let file_name = rel.rsplit('/').next().unwrap_or(rel);

    // Pragmas live in non-test line comments. Their coverage span runs to
    // the end of the following statement (next `;` or `{`), so a pragma
    // above a rustfmt-wrapped multi-line statement still applies.
    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokKind::LineComment || test_mask[i] {
            continue;
        }
        match parse_pragma(token.text(src)) {
            None => {}
            Some(Err(message)) => violations.push(Violation {
                rule: "bad_pragma",
                file: rel.to_string(),
                line: token.line,
                message,
            }),
            Some(Ok((rule, _reason))) => {
                let end_line = tokens[i + 1..]
                    .iter()
                    .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
                    .take_while(|t| !(t.kind == TokKind::Punct && matches!(t.text(src), ";" | "{")))
                    .map(|t| t.line)
                    .max()
                    .unwrap_or(token.line)
                    .max(token.line);
                pragmas.push(Pragma { rule, line: token.line, end_line, used: false });
            }
        }
    }

    // Code view: non-comment, non-test tokens only.
    let code: Vec<&Token> = tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !test_mask[*i] && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        })
        .map(|(_, t)| t)
        .collect();

    let mut raw: Vec<(&'static str, u32, String)> = Vec::new();
    scan_sequences(&code, src, krate, rel, file_name, &mut raw);
    if krate == "server" {
        scan_lock_order(&code, src, &mut raw);
    }

    for (rule, line, message) in raw {
        let suppressed =
            pragmas.iter_mut().find(|p| p.rule == rule && line >= p.line && line <= p.end_line);
        match suppressed {
            Some(pragma) => pragma.used = true,
            None => {
                violations.push(Violation { rule, file: rel.to_string(), line, message });
            }
        }
    }
    for pragma in pragmas {
        if !pragma.used {
            violations.push(Violation {
                rule: "stale_pragma",
                file: rel.to_string(),
                line: pragma.line,
                message: format!(
                    "pragma allows `{}` but no such violation occurs on lines {}..={} — remove it",
                    pragma.rule, pragma.line, pragma.end_line
                ),
            });
        }
    }
    violations
}

/// Per-token test mask (true = inside `#[test]`/`#[cfg(test)]` code), used
/// by the schema-sync check to skip test-only emitters and structs.
pub fn test_mask_for(tokens: &[Token], src: &str) -> Vec<bool> {
    test_mask(tokens, src)
}

/// Mark every token under a test-only attribute: `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` — but not `#[cfg(not(test))]` — plus the item
/// (fn, mod, use, ...) the attribute decorates, brace-matched.
fn test_mask(tokens: &[Token], src: &str) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let is = |i: usize, text: &str| {
        tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text(src) == text)
    };
    let mut i = 0usize;
    while i < tokens.len() {
        if !(is(i, "#") && is(i + 1, "[")) {
            i += 1;
            continue;
        }
        // Find the matching `]` of this attribute.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if is(j, "[") {
                depth += 1;
            } else if is(j, "]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let has_ident = |name: &str| {
            tokens[i..=j.min(tokens.len() - 1)]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text(src) == name)
        };
        if !has_ident("test") || has_ident("not") {
            i = j + 1;
            continue;
        }
        // Test attribute: mask it, any stacked attributes after it, and
        // the decorated item (to its `;`, or its matching outer `}`).
        let mut k = j + 1;
        while is(k, "#") && is(k + 1, "[") {
            let mut depth = 0usize;
            while k < tokens.len() {
                if is(k, "[") {
                    depth += 1;
                } else if is(k, "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0usize;
        let mut seen_brace = false;
        let mut end = k;
        while end < tokens.len() {
            if is(end, "{") {
                brace_depth += 1;
                seen_brace = true;
            } else if is(end, "}") {
                brace_depth = brace_depth.saturating_sub(1);
                if seen_brace && brace_depth == 0 {
                    break;
                }
            } else if is(end, ";") && !seen_brace {
                break;
            }
            end += 1;
        }
        let end = end.min(tokens.len().saturating_sub(1));
        for slot in &mut mask[i..=end] {
            *slot = true;
        }
        i = end + 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Sequence rules
// ---------------------------------------------------------------------------

fn scan_sequences(
    code: &[&Token],
    src: &str,
    krate: &str,
    rel: &str,
    file_name: &str,
    raw: &mut Vec<(&'static str, u32, String)>,
) {
    let serving = SERVING_CRATES.contains(&krate);
    let threads_ok = THREAD_CRATES.contains(&krate);
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let ident = |i: usize| {
        code.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text(src)).unwrap_or("")
    };
    let path_sep = |i: usize| text(i) == ":" && text(i + 1) == ":";

    for i in 0..code.len() {
        let line = code[i].line;
        if serving {
            // `.unwrap(` / `.expect(` — the dot keeps field names and our
            // own matcher tables out; maximal-munch idents keep
            // `unwrap_or_else` out.
            if text(i) == "." && text(i + 2) == "(" {
                let method = ident(i + 1);
                if method == "unwrap" || method == "expect" {
                    raw.push((
                        "no_panic",
                        code[i + 1].line,
                        format!(
                            ".{method}() on the serving path — return a typed error, or pragma \
                             the true invariant"
                        ),
                    ));
                }
            }
            if ident(i) == "panic" && text(i + 1) == "!" {
                raw.push((
                    "no_panic",
                    line,
                    "panic! on the serving path — return a typed error, or pragma the true \
                     invariant"
                        .to_string(),
                ));
            }
            if (ident(i) == "Instant" || ident(i) == "SystemTime")
                && path_sep(i + 1)
                && ident(i + 3) == "now"
                && text(i + 4) == "("
                && !rel.ends_with(CLOCK_MODULE)
            {
                raw.push((
                    "clock_confined",
                    line,
                    format!(
                        "{}::now() outside {CLOCK_MODULE} — serving-path deadlines go through \
                         the strided Deadline clock",
                        ident(i)
                    ),
                ));
            }
        }
        if !threads_ok && ident(i) == "thread" && path_sep(i + 1) {
            let target = ident(i + 3);
            if matches!(target, "spawn" | "scope" | "Builder") {
                raw.push((
                    "thread_confined",
                    code[i + 3].line,
                    format!(
                        "thread::{target} outside `exec`/`server` — route parallelism through \
                         the executor"
                    ),
                ));
            }
        }
        if file_name != "main.rs"
            && ident(i) == "process"
            && path_sep(i + 1)
            && ident(i + 3) == "exit"
            && text(i + 4) == "("
        {
            raw.push((
                "exit_confined",
                line,
                "process::exit outside a main.rs — return an error and let main decide the exit \
                 code"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-order rule (server crate)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    State,
    Gate,
}

struct LiveGuard {
    kind: LockKind,
    /// Brace depth the guard was bound at; it dies when the scope closes.
    depth: usize,
    /// `Some(name)` for `let name = <acquisition>;` bindings (killable by
    /// `drop(name)`), `None` for statement temporaries (die at `;`).
    name: Option<String>,
}

/// Lexical per-function-body tracking of the batcher's dual locks: the
/// `state` mutex must never be held while acquiring the `gate` mutex, and
/// vice versa — both critical sections stay leaf-level. Acquisition
/// sites: `self.state.lock(` (state); `self.lock_gate(`, `self.gate.lock(`
/// and `self.bump_and_notify(` (gate — `bump_and_notify`'s body takes the
/// gate, so a call counts at the call site too).
fn scan_lock_order(code: &[&Token], src: &str, raw: &mut Vec<(&'static str, u32, String)>) {
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let ident = |i: usize| {
        code.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text(src)).unwrap_or("")
    };
    // `self . state . lock (` → Some(State); gate forms → Some(Gate).
    let acquisition = |i: usize| -> Option<(LockKind, usize)> {
        if ident(i) != "self" || text(i + 1) != "." {
            return None;
        }
        match ident(i + 2) {
            "state" if text(i + 3) == "." && ident(i + 4) == "lock" && text(i + 5) == "(" => {
                Some((LockKind::State, i + 5))
            }
            "gate" if text(i + 3) == "." && ident(i + 4) == "lock" && text(i + 5) == "(" => {
                Some((LockKind::Gate, i + 5))
            }
            "lock_gate" | "bump_and_notify" if text(i + 3) == "(" => Some((LockKind::Gate, i + 3)),
            _ => None,
        }
    };

    let mut depth = 0usize;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut stmt_start = 0usize; // index of first token of the current statement
    let mut i = 0usize;
    while i < code.len() {
        match text(i) {
            "{" => {
                depth += 1;
                stmt_start = i + 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            ";" => {
                live.retain(|g| g.name.is_some());
                stmt_start = i + 1;
            }
            _ => {}
        }
        // `drop(name)` releases a named guard early.
        if ident(i) == "drop" && text(i + 1) == "(" && text(i + 3) == ")" {
            let name = ident(i + 2);
            live.retain(|g| g.name.as_deref() != Some(name));
        }
        if let Some((kind, open_paren)) = acquisition(i) {
            let conflicting = live.iter().find(|g| g.kind != kind);
            if let Some(held) = conflicting {
                raw.push((
                    "lock_order",
                    code[i].line,
                    format!(
                        "acquiring the {kind:?} lock while the {:?} lock is held — the batcher's \
                         locks must never nest (see batcher.rs module docs)",
                        held.kind
                    ),
                ));
            }
            // Bound (`let name = self...lock();` with no leading deref)
            // or a statement temporary?
            let name = if ident(stmt_start) == "let" {
                let name_at =
                    if ident(stmt_start + 1) == "mut" { stmt_start + 2 } else { stmt_start + 1 };
                let direct = text(name_at + 1) == "=" && name_at + 2 == i;
                direct.then(|| ident(name_at).to_string())
            } else {
                None
            };
            live.push(LiveGuard { kind, depth, name });
            i = open_paren + 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(rel: &str, src: &str) -> Vec<(String, u32)> {
        lint_file(rel, src).into_iter().map(|v| (v.rule.to_string(), v.line)).collect()
    }

    #[test]
    fn unwrap_in_serving_crate_flags_and_bench_does_not() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_of("crates/server/src/lib.rs", src), vec![("no_panic".to_string(), 1)]);
        assert!(rules_of("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_inside_raw_string_or_comment_is_clean() {
        let src = r##"
fn f() -> &'static str {
    // let y = x.unwrap();
    /* panic!("no") */
    r#"call .unwrap() and .expect() here"#
}
"##;
        assert!(rules_of("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(x: Result<u32, u32>) -> u32 { x.unwrap_or_else(|e| e) }\n";
        assert!(rules_of("crates/exec/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt_but_cfg_not_test_is_not() {
        let src = "
fn shipped(x: Option<u32>) -> Option<u32> { x }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }
}
#[cfg(not(test))]
fn also_shipped(x: Option<u32>) -> u32 { x.unwrap() }
";
        assert_eq!(rules_of("crates/content/src/lib.rs", src), vec![("no_panic".to_string(), 9)]);
    }

    #[test]
    fn nested_cfg_test_module_is_masked_whole() {
        let src = "
#[cfg(test)]
mod outer {
    mod inner {
        pub fn helper() { panic!(\"still test code\") }
    }
    #[test]
    fn t() { inner::helper(); }
}
";
        assert!(rules_of("crates/content/src/lib.rs", src).is_empty());
    }

    #[test]
    fn commented_out_thread_spawn_is_clean_and_live_one_flags() {
        let clean = "fn f() { /* std::thread::spawn(|| ()); */ }\n";
        assert!(rules_of("crates/bench/src/lib.rs", clean).is_empty());
        let dirty = "fn f() { std::thread::spawn(|| ()); }\n";
        assert_eq!(
            rules_of("crates/bench/src/lib.rs", dirty),
            vec![("thread_confined".to_string(), 1)]
        );
        // ... but exec and server are the sanctioned homes.
        assert!(rules_of("crates/exec/src/lib.rs", dirty).is_empty());
        assert!(rules_of("crates/server/src/lib.rs", dirty).is_empty());
    }

    #[test]
    fn clock_reads_allowed_only_in_the_deadline_module() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(
            rules_of("crates/content/src/index.rs", src),
            vec![("clock_confined".to_string(), 1)]
        );
        assert!(rules_of("crates/content/src/deadline.rs", src).is_empty());
        // Non-serving crates may read clocks freely (bench timing loops).
        assert!(rules_of("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn process_exit_allowed_only_in_main_rs() {
        let src = "fn f() { std::process::exit(1); }\n";
        assert_eq!(
            rules_of("crates/bench/src/bin/experiments.rs", src),
            vec![("exit_confined".to_string(), 1)]
        );
        assert!(rules_of("crates/server/src/main.rs", src).is_empty());
    }

    #[test]
    fn pragma_suppresses_and_is_marked_used() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    // lint: allow(no_panic, reason = \"true invariant: caller checked is_some\")
    x.unwrap()
}
";
        assert!(rules_of("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn pragma_covers_a_rustfmt_wrapped_statement() {
        let src = "
fn f(v: &[u32]) -> u32 {
    // lint: allow(no_panic, reason = \"true invariant: caller guarantees non-empty\")
    let m =
        v.iter().copied().max().expect(\"non-empty\");
    m
}
";
        assert!(rules_of("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn pragma_on_the_wrong_line_suppresses_nothing_and_goes_stale() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    // lint: allow(no_panic, reason = \"too far away to count\")
    let y = 1;
    x.unwrap() + y
}
";
        let found = rules_of("crates/server/src/lib.rs", src);
        assert_eq!(found, vec![("no_panic".to_string(), 5), ("stale_pragma".to_string(), 3)]);
    }

    #[test]
    fn malformed_pragmas_are_bad_pragma() {
        for (src, what) in [
            ("// lint: allow(no_panic)\nfn f() {}\n", "missing reason"),
            ("// lint: allow(no_panic, reason = \"\")\nfn f() {}\n", "empty reason"),
            ("// lint: allow(made_up_rule, reason = \"x\")\nfn f() {}\n", "unknown rule"),
            ("// lint: forbid(no_panic)\nfn f() {}\n", "not allow()"),
        ] {
            assert_eq!(
                rules_of("crates/server/src/lib.rs", src),
                vec![("bad_pragma".to_string(), 1)],
                "{what}"
            );
        }
    }

    #[test]
    fn lock_order_flags_gate_under_let_bound_state_guard() {
        let src = "
impl Batcher {
    fn bad(&self) {
        let state = self.state.lock();
        *self.lock_gate() += 1;
        drop(state);
    }
}
";
        assert_eq!(rules_of("crates/server/src/x.rs", src), vec![("lock_order".to_string(), 5)]);
    }

    #[test]
    fn lock_order_flags_bump_and_notify_under_state_temporary() {
        let src = "
impl Batcher {
    fn bad(&self) -> bool {
        self.state.lock().shutdown && { self.bump_and_notify(); true }
    }
}
";
        assert_eq!(rules_of("crates/server/src/x.rs", src), vec![("lock_order".to_string(), 4)]);
    }

    #[test]
    fn lock_order_accepts_sequential_and_dropped_acquisition() {
        let src = "
impl Batcher {
    fn good(&self) {
        { let mut state = self.state.lock(); state.shutdown = true; }
        self.bump_and_notify();
    }
    fn also_good(&self) {
        let state = self.state.lock();
        drop(state);
        let epoch = *self.lock_gate();
        let _ = epoch;
    }
    fn temp_dies_at_semicolon(&self) {
        self.state.lock().shutdown = true;
        self.bump_and_notify();
    }
}
";
        assert!(rules_of("crates/server/src/x.rs", src).is_empty());
    }

    #[test]
    fn lock_order_flags_state_under_gate_too() {
        let src = "
impl Batcher {
    fn bad(&self) {
        let guard = self.lock_gate();
        let state = self.state.lock();
        drop(state);
        drop(guard);
    }
}
";
        assert_eq!(rules_of("crates/server/src/x.rs", src), vec![("lock_order".to_string(), 5)]);
    }
}
