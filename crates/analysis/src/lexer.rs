//! A hand-rolled token-level Rust lexer — just enough fidelity for
//! invariant linting: string literals (plain, raw, byte, raw-byte), char
//! literals vs. lifetimes, nested block comments, line comments (kept as
//! tokens, since `// lint: allow(...)` pragmas live there), identifiers
//! (including raw `r#ident`), numbers, and single-character punctuation.
//!
//! The point of lexing — rather than substring search — is that `unwrap()`
//! inside a raw string, a commented-out `thread::spawn`, or a char literal
//! `'{'` must never confuse the rules. The adversarial cases are pinned in
//! the unit tests below.

/// What a token is. The linter's rules only ever look at `Ident` and
/// `Punct` sequences; comments are kept for pragma parsing and everything
/// else exists so the scanner can *skip* it correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers are normalized: the
    /// token text of `r#type` is `type`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A string literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. Token text includes the delimiters.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (lexed loosely; the rules never read numbers).
    Num,
    /// A single punctuation character.
    Punct,
    /// A `// …` comment, text includes the `//`.
    LineComment,
    /// A `/* … */` comment (nesting handled), text includes delimiters.
    BlockComment,
}

/// One token: kind, byte range into the source, and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

/// Tokenize `src`. Never panics on malformed input: an unterminated
/// string or comment simply extends to end of file (good enough for a
/// linter that only runs on code rustc already accepted).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1 };
    let mut tokens = Vec::new();
    while let Some(token) = lx.next_token() {
        tokens.push(token);
    }
    tokens
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn make(&self, kind: TokKind, start: usize, line: u32) -> Token {
        Token { kind, start, end: self.pos, line }
    }

    fn next_token(&mut self) -> Option<Token> {
        // Skip whitespace.
        while self.pos < self.bytes.len() && self.peek(0).is_ascii_whitespace() {
            self.bump();
        }
        if self.pos >= self.bytes.len() {
            return None;
        }
        let (start, line) = (self.pos, self.line);
        let b = self.peek(0);

        // Comments.
        if b == b'/' && self.peek(1) == b'/' {
            while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            return Some(self.make(TokKind::LineComment, start, line));
        }
        if b == b'/' && self.peek(1) == b'*' {
            self.bump_n(2);
            let mut depth = 1usize;
            while self.pos < self.bytes.len() && depth > 0 {
                if self.peek(0) == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump_n(2);
                } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump_n(2);
                } else {
                    self.bump();
                }
            }
            return Some(self.make(TokKind::BlockComment, start, line));
        }

        // Raw strings, byte strings, raw identifiers: r" r#" b" br" b' r#id.
        if b == b'r' || b == b'b' {
            let (mut ahead, mut saw_r) = (1usize, b == b'r');
            if b == b'b' && self.peek(1) == b'r' {
                ahead = 2;
                saw_r = true;
            }
            if saw_r {
                // Count hashes after the r.
                let mut hashes = 0usize;
                while self.peek(ahead + hashes) == b'#' {
                    hashes += 1;
                }
                if self.peek(ahead + hashes) == b'"' {
                    self.bump_n(ahead + hashes + 1);
                    return Some(self.raw_string_tail(hashes, start, line));
                }
                if hashes > 0 && b == b'r' && is_ident_start(self.peek(ahead + hashes)) {
                    // Raw identifier r#type: token text normalized below by
                    // recording only from after `r#`.
                    self.bump_n(ahead + hashes);
                    let ident_start = self.pos;
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    return Some(Token {
                        kind: TokKind::Ident,
                        start: ident_start,
                        end: self.pos,
                        line,
                    });
                }
            }
            if b == b'b' && self.peek(1) == b'"' {
                self.bump_n(2);
                return Some(self.escaped_string_tail(start, line));
            }
            if b == b'b' && self.peek(1) == b'\'' {
                self.bump_n(2);
                return Some(self.char_tail(start, line));
            }
            // Fall through: a plain identifier starting with r/b.
        }

        if b == b'"' {
            self.bump();
            return Some(self.escaped_string_tail(start, line));
        }

        if b == b'\'' {
            // Lifetime or char literal. `'\…'` is always a char; `'x'` is a
            // char; `'ident` with no closing quote right after one ident
            // char is a lifetime ('a, 'static, '_).
            if self.peek(1) != b'\\' && is_ident_continue(self.peek(1)) && self.peek(2) != b'\'' {
                self.bump(); // the quote
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                return Some(self.make(TokKind::Lifetime, start, line));
            }
            self.bump();
            return Some(self.char_tail(start, line));
        }

        if is_ident_start(b) {
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            return Some(self.make(TokKind::Ident, start, line));
        }

        if b.is_ascii_digit() {
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            // A fractional part: only consume the dot when a digit follows,
            // so `1.max(2)` and `0..n` lex the dot(s) as punctuation.
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                self.bump();
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
            }
            return Some(self.make(TokKind::Num, start, line));
        }

        // Anything else (including non-ASCII) is one punctuation "char";
        // advance a full UTF-8 sequence so we never split a code point.
        let char_len = self.src[self.pos..].chars().next().map_or(1, char::len_utf8);
        self.bump_n(char_len);
        Some(self.make(TokKind::Punct, start, line))
    }

    /// After the opening quote of a `"…"` / `b"…"` string.
    fn escaped_string_tail(&mut self, start: usize, line: u32) -> Token {
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.make(TokKind::Str, start, line)
    }

    /// After the opening quote of a raw string with `hashes` hashes.
    fn raw_string_tail(&mut self, hashes: usize, start: usize, line: u32) -> Token {
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_n(1 + hashes);
                    return self.make(TokKind::Str, start, line);
                }
            }
            self.bump();
        }
        self.make(TokKind::Str, start, line)
    }

    /// After the opening quote of a char / byte-char literal.
    fn char_tail(&mut self, start: usize, line: u32) -> Token {
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.make(TokKind::Char, start, line)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Unescape the *content* of a plain string literal token (the text
/// between the quotes), resolving the escapes that matter for JSON-key
/// extraction: `\"`, `\\`, `\n`, `\t`. Other escapes pass through with the
/// backslash dropped — good enough for key scanning, where escaped
/// exotica never form an identifier anyway.
pub fn unescape_content(token_text: &str) -> String {
    // Strip delimiters: r/b prefixes, hashes, quotes.
    let mut text = token_text;
    text = text.trim_start_matches(['r', 'b']);
    let hashes = text.bytes().take_while(|&b| b == b'#').count();
    text = &text[hashes..];
    let text = text.strip_prefix('"').unwrap_or(text);
    let text = text.strip_suffix(&token_text[token_text.len() - hashes..]).unwrap_or(text);
    let text = text.strip_suffix('"').unwrap_or(text);
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn unwrap_inside_a_raw_string_is_one_string_token() {
        let src = r##"let s = r#"please .unwrap() me"#; s.len()"##;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains(".unwrap()")));
        // No `unwrap` identifier escapes the literal.
        assert!(!idents(src).iter().any(|i| i == "unwrap"), "{toks:?}");
    }

    #[test]
    fn unwrap_inside_plain_and_byte_strings_stays_inside() {
        for src in [
            "let s = \"x.unwrap() and thread::spawn\";",
            "let s = b\"x.unwrap()\";",
            "let s = br#\"x.unwrap()\"#;",
        ] {
            assert!(!idents(src).iter().any(|i| i == "unwrap" || i == "spawn"), "{src}");
        }
    }

    #[test]
    fn commented_out_code_is_a_comment_token() {
        let src = "// std::thread::spawn(|| ());\nlet x = 1; /* panic!(\"no\") */";
        assert!(!idents(src).iter().any(|i| i == "spawn" || i == "panic"), "{src}");
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::LineComment && t.contains("spawn")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::BlockComment && t.contains("panic")));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.ends_with("still comment */"));
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'y'; let z = '\\n'; let q = '\\''; }";
        let toks = kinds(src);
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, t)| t.clone()).collect();
        assert_eq!(chars, vec!["'y'", "'\\n'", "'\\''"]);
    }

    #[test]
    fn brace_char_literals_do_not_unbalance_scopes() {
        let src = "let open = '{'; let close = '}'; let quote = '\"';";
        let braces: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct && matches!(t.text(src), "{" | "}"))
            .collect();
        assert!(braces.is_empty(), "brace chars leaked as punctuation");
    }

    #[test]
    fn raw_identifiers_normalize() {
        let src = "let r#type = 1; r#fn();";
        assert_eq!(idents(src), vec!["let", "type", "fn"]);
    }

    #[test]
    fn static_lifetime_and_string_suffix_edge() {
        let src = "static X: &'static str = \"tail \\\" quote\"; 'l: loop { break 'l; }";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("tail")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 3);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = 2;";
        let toks = lex(src);
        let b_tok = toks.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!(b_tok.line, 4, "multi-line string must advance the line counter");
    }

    #[test]
    fn numbers_do_not_swallow_method_calls_or_ranges() {
        let src = "let x = 1.max(2); for i in 0..10 {} let f = 1.5e3;";
        assert!(idents(src).contains(&"max".to_string()));
        let nums: Vec<_> =
            kinds(src).into_iter().filter(|(k, _)| *k == TokKind::Num).map(|(_, t)| t).collect();
        assert!(nums.contains(&"1".to_string()) && nums.contains(&"1.5e3".to_string()), "{nums:?}");
    }

    #[test]
    fn unescape_resolves_format_string_keys() {
        let tok = r#""{{\"engine\":\"{}\",\"k\":{}}}""#;
        assert_eq!(unescape_content(tok), "{{\"engine\":\"{}\",\"k\":{}}}");
    }
}
