//! Extracted model of `Exec::try_run_chunks_with`'s panic propagation
//! (`crates/exec/src/lib.rs`): every shard runs under `catch_unwind`, so
//! a panicking shard terminates like any other and its panic becomes a
//! value; siblings run to completion regardless; the caller joins shards
//! **in shard order** and reports the panic of the **lowest-indexed**
//! panicked shard.
//!
//! The model: K shard threads (each either completes — bumping the
//! instrumented atomic `processed` counter and writing its own result
//! slot — or "panics", writing a panic marker into its slot), plus one
//! joiner thread that blocks on each shard in order and then resolves
//! the winning panic. Checked across all interleavings within the
//! preemption bound:
//!
//! - no deadlock (joins always resolve),
//! - siblings-run-to-completion: `processed` ends at K − panicked,
//! - deterministic blame: the reported shard is the lowest panicked
//!   index on *every* schedule, no matter the completion order.

use super::{ModelAtomicU32, Scenario, Scheduler, Step, Thread, Tid};
use std::cell::{Cell, RefCell};

/// Per-shard outcome slot — disjoint writes, as in the real scoped-spawn
/// fan-out where each worker owns its result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    Completed,
    Panicked,
}

pub struct Shared {
    results: RefCell<Vec<Option<Outcome>>>,
    processed: ModelAtomicU32,
    /// The joiner's verdict: the lowest panicked shard, if any.
    reported: Cell<Option<usize>>,
    joiner_done: Cell<bool>,
}

enum SPc {
    Start,
    Finish,
}

/// One shard: a start step (the failpoint decision) and a finish step
/// (complete or panic-as-value under catch_unwind).
struct Shard {
    index: usize,
    panics: bool,
    pc: SPc,
}

impl Thread<Shared> for Shard {
    fn step(&mut self, _tid: Tid, _sched: &mut Scheduler, shared: &Shared) -> (Step, &'static str) {
        match self.pc {
            SPc::Start => {
                self.pc = SPc::Finish;
                (Step::Progress, "s:start")
            }
            SPc::Finish => {
                if self.panics {
                    shared.results.borrow_mut()[self.index] = Some(Outcome::Panicked);
                    (Step::Done, "s:panic(caught)")
                } else {
                    shared.processed.fetch_add(1);
                    shared.results.borrow_mut()[self.index] = Some(Outcome::Completed);
                    (Step::Done, "s:complete")
                }
            }
        }
    }
}

/// The caller: joins shard threads in shard order, then reports the
/// lowest panicked shard (as `try_run_chunks_with` does when building
/// `ExecError::ShardPanicked`).
struct Joiner {
    shard_tids: Vec<Tid>,
    next: usize,
}

impl Thread<Shared> for Joiner {
    fn step(&mut self, tid: Tid, sched: &mut Scheduler, shared: &Shared) -> (Step, &'static str) {
        if self.next < self.shard_tids.len() {
            if sched.join(tid, self.shard_tids[self.next]) {
                self.next += 1;
                (Step::Progress, "j:join")
            } else {
                (Step::Blocked, "j:block(join)")
            }
        } else {
            let results = shared.results.borrow();
            let lowest_panicked = results
                .iter()
                .enumerate()
                .find(|(_, r)| **r == Some(Outcome::Panicked))
                .map(|(i, _)| i);
            shared.reported.set(lowest_panicked);
            shared.joiner_done.set(true);
            (Step::Done, "j:report")
        }
    }
}

/// K shards with a chosen panic pattern + the joiner.
pub struct ExecScenario {
    panics: Vec<bool>,
}

impl Default for ExecScenario {
    /// Three shards, the middle and last panicking: blame must land on
    /// shard 1 on every schedule.
    fn default() -> Self {
        ExecScenario { panics: vec![false, true, true] }
    }
}

impl Scenario for ExecScenario {
    type Shared = Shared;

    fn name(&self) -> &'static str {
        "exec[3 shards, shards 1+2 panic, ordered join]"
    }

    fn build(&self) -> (Shared, Vec<Box<dyn Thread<Shared>>>) {
        let k = self.panics.len();
        let shared = Shared {
            results: RefCell::new(vec![None; k]),
            processed: ModelAtomicU32::default(),
            reported: Cell::new(None),
            joiner_done: Cell::new(false),
        };
        let mut threads: Vec<Box<dyn Thread<Shared>>> = Vec::new();
        for (index, &panics) in self.panics.iter().enumerate() {
            threads.push(Box::new(Shard { index, panics, pc: SPc::Start }));
        }
        threads.push(Box::new(Joiner { shard_tids: (0..k).collect(), next: 0 }));
        (shared, threads)
    }

    fn finale(&self, shared: &Shared) -> Result<(), String> {
        if !shared.joiner_done.get() {
            return Err("joiner never finished".to_string());
        }
        let panicked: Vec<usize> = (0..self.panics.len()).filter(|&i| self.panics[i]).collect();
        let completed = (self.panics.len() - panicked.len()) as u32;
        if shared.processed.load() != completed {
            return Err(format!(
                "siblings did not run to completion: processed {} of {completed}",
                shared.processed.load()
            ));
        }
        let expected = panicked.first().copied();
        if shared.reported.get() != expected {
            return Err(format!(
                "blame drifted: reported {:?}, expected lowest panicked shard {:?}",
                shared.reported.get(),
                expected
            ));
        }
        Ok(())
    }
}
