//! A loom-lite model checker: deterministic DFS over thread interleavings
//! with a bounded-preemption budget, over *extracted models* of the
//! concurrency core (state machines whose steps mirror the real code's
//! synchronization points — see [`batcher`] and [`exec_model`] for the
//! extraction notes).
//!
//! ## How it works
//!
//! Threads are explicit state machines ([`Thread::step`]) driven by a
//! single-threaded explorer — no OS threads, so every run is
//! deterministic and replayable. Synchronization goes through
//! instrumented shims ([`ModelMutex`], [`ModelCondvar`],
//! [`ModelAtomicU32`]) that enforce real blocking semantics:
//!
//! - a mutex acquire on a held lock blocks the thread until release;
//! - data behind a [`ModelMutex`] is only reachable while owning it
//!   (asserted — unsynchronized access is a checker-reported bug, which
//!   is the race detection);
//! - condvar wait atomically releases the mutex and blocks; a notify
//!   makes waiters runnable, and they *contend to reacquire* the mutex
//!   like real waiters (the model's post-wait program counter is
//!   "reacquire", never "proceed");
//! - `join` blocks until the target thread is done.
//!
//! One **step** is one synchronization action plus the shared-memory
//! effects inseparable from it under mutual exclusion (e.g. "mutate
//! under the lock and release" is a single step: no other thread can
//! observe intermediate states of a held critical section, so splitting
//! it adds schedules without adding behaviors).
//!
//! ## Exploration
//!
//! Depth-first over scheduling choices with a persistent choice stack:
//! each run replays the stack's prefix, then takes the first untried
//! branch; exhausted suffixes pop. Switching away from a thread that is
//! still runnable costs one **preemption**; schedules beyond the
//! preemption bound are not explored (the classic CHESS result: almost
//! all real concurrency bugs need very few preemptions — the batcher's
//! lost-wakeup mutant needs one). Within the bound the exploration is
//! exhaustive: [`Explorer::explore`] *fails* (rather than silently
//! truncating) if `max_runs` or `max_steps` would be exceeded, so a
//! "passed" report is a claim about *every* schedule, not a sample.

pub mod batcher;
pub mod exec_model;

use std::cell::{Cell, RefCell};

/// Thread index within a scenario.
pub type Tid = usize;

/// Result of one thread step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Made progress; schedule freely.
    Progress,
    /// Could not act (lock held, condvar wait, join pending); the thread
    /// registered itself with the scheduler and must not be rescheduled
    /// until woken.
    Blocked,
    /// Terminated.
    Done,
}

/// One model thread: a state machine advanced one synchronization action
/// at a time. Returns the step outcome and a label for the trace.
pub trait Thread<S> {
    fn step(&mut self, tid: Tid, sched: &mut Scheduler, shared: &S) -> (Step, &'static str);
}

/// A closed system to check: shared state + threads + an end-of-run
/// invariant over the final shared state.
pub trait Scenario {
    type Shared;
    fn name(&self) -> &'static str;
    #[allow(clippy::type_complexity)]
    fn build(&self) -> (Self::Shared, Vec<Box<dyn Thread<Self::Shared>>>);
    /// Checked after every run in which all threads terminated.
    fn finale(&self, shared: &Self::Shared) -> Result<(), String>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCond(usize),
    BlockedJoin(Tid),
    Done,
}

/// The per-run synchronization state: thread statuses, mutex owners,
/// condvar wait queues.
pub struct Scheduler {
    status: Vec<Status>,
    mutex_owner: Vec<Option<Tid>>,
    cond_waiters: Vec<Vec<Tid>>,
}

impl Scheduler {
    fn new(threads: usize, mutexes: usize, condvars: usize) -> Self {
        Scheduler {
            status: vec![Status::Runnable; threads],
            mutex_owner: vec![None; mutexes],
            cond_waiters: vec![Vec::new(); condvars],
        }
    }

    fn runnable(&self) -> Vec<Tid> {
        (0..self.status.len()).filter(|&t| self.status[t] == Status::Runnable).collect()
    }

    fn is_runnable(&self, tid: Tid) -> bool {
        self.status[tid] == Status::Runnable
    }

    /// Has `target` terminated? (Join support.)
    pub fn is_done(&self, target: Tid) -> bool {
        self.status[target] == Status::Done
    }

    /// Block `tid` until `target` terminates. Returns `false` (and blocks)
    /// if the target is still live, `true` if the join completes now.
    pub fn join(&mut self, tid: Tid, target: Tid) -> bool {
        if self.is_done(target) {
            true
        } else {
            self.status[tid] = Status::BlockedJoin(target);
            false
        }
    }

    fn set_done(&mut self, tid: Tid) {
        self.status[tid] = Status::Done;
        for t in 0..self.status.len() {
            if self.status[t] == Status::BlockedJoin(tid) {
                self.status[t] = Status::Runnable;
            }
        }
    }

    fn describe(&self) -> String {
        self.status
            .iter()
            .enumerate()
            .map(|(t, s)| format!("t{t}:{s:?}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// An instrumented mutex: ownership lives in the scheduler, data in a
/// `RefCell` that is only reachable while owning the lock.
pub struct ModelMutex<T> {
    id: usize,
    data: RefCell<T>,
}

impl<T> ModelMutex<T> {
    /// `id` must be unique per scenario and `< mutexes` passed to the
    /// explorer.
    pub fn new(id: usize, value: T) -> Self {
        ModelMutex { id, data: RefCell::new(value) }
    }

    /// One acquire attempt: takes the lock (true) or blocks the thread
    /// (false — the thread must return [`Step::Blocked`] and retry this
    /// same program counter when rescheduled).
    pub fn try_acquire(&self, sched: &mut Scheduler, tid: Tid) -> bool {
        match sched.mutex_owner[self.id] {
            None => {
                sched.mutex_owner[self.id] = Some(tid);
                true
            }
            Some(owner) => {
                assert_ne!(owner, tid, "model bug: t{tid} re-acquiring mutex {}", self.id);
                sched.status[tid] = Status::BlockedMutex(self.id);
                false
            }
        }
    }

    /// Access the protected data. Asserts ownership — touching data
    /// without holding the lock is a modeled data race.
    pub fn with<R>(&self, sched: &Scheduler, tid: Tid, f: impl FnOnce(&mut T) -> R) -> R {
        assert_eq!(
            sched.mutex_owner[self.id],
            Some(tid),
            "modeled data race: t{tid} accessed mutex {} data without holding it",
            self.id
        );
        f(&mut self.data.borrow_mut())
    }

    /// Release and wake every thread blocked on this mutex (they contend
    /// again, like real mutex waiters).
    pub fn release(&self, sched: &mut Scheduler, tid: Tid) {
        assert_eq!(
            sched.mutex_owner[self.id],
            Some(tid),
            "model bug: t{tid} releasing mutex {} it does not own",
            self.id
        );
        sched.mutex_owner[self.id] = None;
        for t in 0..sched.status.len() {
            if sched.status[t] == Status::BlockedMutex(self.id) {
                sched.status[t] = Status::Runnable;
            }
        }
    }
}

/// An instrumented condvar. `id` must be unique per scenario and
/// `< condvars` passed to the explorer.
pub struct ModelCondvar {
    id: usize,
}

impl ModelCondvar {
    pub fn new(id: usize) -> Self {
        ModelCondvar { id }
    }

    /// Atomically release `mutex` and block — the indivisibility is what
    /// a real `Condvar::wait` guarantees and what the gate protocol
    /// leans on. The calling thread must set its program counter to a
    /// "reacquire the mutex" state before returning [`Step::Blocked`].
    pub fn wait<T>(&self, sched: &mut Scheduler, tid: Tid, mutex: &ModelMutex<T>) {
        mutex.release(sched, tid);
        sched.status[tid] = Status::BlockedCond(self.id);
        sched.cond_waiters[self.id].push(tid);
    }

    /// Wake every waiter; they become runnable at their reacquire state.
    /// A notify with no waiters is lost — exactly the real semantics the
    /// epoch protocol exists to paper over.
    pub fn notify_all(&self, sched: &mut Scheduler) {
        for tid in std::mem::take(&mut sched.cond_waiters[self.id]) {
            debug_assert_eq!(sched.status[tid], Status::BlockedCond(self.id));
            sched.status[tid] = Status::Runnable;
        }
    }
}

/// An instrumented atomic counter: every access is its own scheduling
/// point, so the explorer interleaves around it like a real relaxed
/// atomic (single-cell operations are indivisible, as on hardware).
#[derive(Default)]
pub struct ModelAtomicU32 {
    value: Cell<u32>,
}

impl ModelAtomicU32 {
    pub fn load(&self) -> u32 {
        self.value.get()
    }

    pub fn fetch_add(&self, add: u32) -> u32 {
        let prev = self.value.get();
        self.value.set(prev + add);
        prev
    }
}

/// A schedule that violated an invariant, with the full interleaving
/// that produced it.
#[derive(Debug)]
pub struct Failure {
    pub kind: String,
    /// `(thread, action label)` per step, in schedule order.
    pub trace: Vec<(Tid, &'static str)>,
}

impl Failure {
    /// Render the counterexample for humans.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n  schedule ({} steps):\n", self.kind, self.trace.len());
        for (tid, label) in &self.trace {
            out.push_str(&format!("    t{tid} {label}\n"));
        }
        out
    }
}

/// Outcome of an exhaustive exploration: how many complete schedules ran
/// and the first failure found (if any).
#[derive(Debug)]
pub struct Report {
    pub runs: u64,
    pub failure: Option<Failure>,
}

struct Choice {
    options: Vec<Tid>,
    next: usize,
}

/// The bounded-preemption DFS explorer.
pub struct Explorer {
    /// Maximum number of preemptions (switches away from a runnable
    /// thread) per schedule.
    pub bound: usize,
    /// Hard ceiling on complete schedules; exceeding it is an *error*
    /// (the exhaustiveness claim would be false), not a truncation.
    pub max_runs: u64,
    /// Hard ceiling on steps within one schedule (livelock guard), same
    /// failure semantics.
    pub max_steps: u64,
}

impl Explorer {
    pub fn with_bound(bound: usize) -> Self {
        Explorer { bound, max_runs: 5_000_000, max_steps: 10_000 }
    }

    /// Explore every schedule of `scenario` within the preemption bound.
    /// `mutexes` / `condvars` are the shim-id universes the scenario's
    /// shared state uses.
    pub fn explore<Sc: Scenario>(
        &self,
        scenario: &Sc,
        mutexes: usize,
        condvars: usize,
    ) -> Result<Report, String> {
        let mut stack: Vec<Choice> = Vec::new();
        let mut runs: u64 = 0;
        loop {
            runs += 1;
            if runs > self.max_runs {
                return Err(format!(
                    "{}: exceeded max_runs={} — exploration is not exhaustive; raise the \
                     ceiling or shrink the scenario",
                    scenario.name(),
                    self.max_runs
                ));
            }
            let (shared, mut threads) = scenario.build();
            let mut sched = Scheduler::new(threads.len(), mutexes, condvars);
            let mut trace: Vec<(Tid, &'static str)> = Vec::new();
            let mut depth = 0usize;
            let mut preemptions = 0usize;
            let mut last: Option<Tid> = None;
            let mut steps: u64 = 0;
            let mut failure: Option<Failure> = loop {
                let runnable = sched.runnable();
                if runnable.is_empty() {
                    if sched.status.iter().all(|s| *s == Status::Done) {
                        break None;
                    }
                    break Some(Failure {
                        kind: format!(
                            "deadlock: no runnable thread, not all done [{}]",
                            sched.describe()
                        ),
                        trace: trace.clone(),
                    });
                }
                // Options under the preemption budget: continuing the
                // last-run thread is free; anything else, while it is
                // still runnable, costs a preemption.
                let options: Vec<Tid> = match last {
                    Some(l) if runnable.contains(&l) => {
                        if preemptions >= self.bound {
                            vec![l]
                        } else {
                            let mut v = vec![l];
                            v.extend(runnable.iter().copied().filter(|&t| t != l));
                            v
                        }
                    }
                    _ => runnable,
                };
                let tid = if depth < stack.len() {
                    let choice = &stack[depth];
                    debug_assert_eq!(
                        choice.options, options,
                        "nondeterministic scenario: replay diverged"
                    );
                    choice.options[choice.next]
                } else {
                    stack.push(Choice { options: options.clone(), next: 0 });
                    options[0]
                };
                depth += 1;
                if let Some(l) = last {
                    if l != tid && sched.is_runnable(l) {
                        preemptions += 1;
                    }
                }
                steps += 1;
                if steps > self.max_steps {
                    return Err(format!(
                        "{}: exceeded max_steps={} in one schedule — livelock in the model?",
                        scenario.name(),
                        self.max_steps
                    ));
                }
                let (step, label) = threads[tid].step(tid, &mut sched, &shared);
                trace.push((tid, label));
                if step == Step::Done {
                    sched.set_done(tid);
                }
                last = Some(tid);
            };
            if failure.is_none() {
                failure = scenario
                    .finale(&shared)
                    .err()
                    .map(|kind| Failure { kind: format!("invariant violated: {kind}"), trace });
            }
            if failure.is_some() {
                return Ok(Report { runs, failure });
            }
            // Backtrack to the deepest unexhausted choice.
            while let Some(top) = stack.last_mut() {
                top.next += 1;
                if top.next < top.options.len() {
                    break;
                }
                stack.pop();
            }
            if stack.is_empty() {
                return Ok(Report { runs, failure: None });
            }
        }
    }
}

/// The `check` subcommand: run every scenario the checker knows about.
/// The shipped batcher and executor models must pass exhaustively at
/// preemption bounds 2 and `bound`; the pre-review-fix batcher mutant
/// must be flagged. Returns Ok(false) if any expectation fails.
pub fn run_all(bound: usize) -> Result<bool, String> {
    let bound = bound.max(3);
    let mut ok = true;
    let bounds = [2usize, bound];

    for b in bounds {
        for scenario in &batcher::shipped_scenarios() {
            let report = Explorer::with_bound(b).explore(scenario, 2, 1)?;
            match report.failure {
                None => println!(
                    "check: {} PASSED exhaustively (bound {b}, {} schedules)",
                    scenario.name(),
                    report.runs
                ),
                Some(failure) => {
                    println!("check: {} FAILED (bound {b})\n{}", scenario.name(), failure.render());
                    ok = false;
                }
            }
        }
        let exec = exec_model::ExecScenario::default();
        let report = Explorer::with_bound(b).explore(&exec, 0, 0)?;
        match report.failure {
            None => println!(
                "check: {} PASSED exhaustively (bound {b}, {} schedules)",
                exec.name(),
                report.runs
            ),
            Some(failure) => {
                println!("check: {} FAILED (bound {b})\n{}", exec.name(), failure.render());
                ok = false;
            }
        }
    }

    // The kill-the-mutant half: the pre-review-fix batcher (epoch
    // snapshot removed) must produce a lost-wakeup counterexample, or the
    // checker has lost its teeth.
    let mutant = batcher::mutant_scenario();
    let report = Explorer::with_bound(2).explore(&mutant, 2, 1)?;
    report_mutant(&mutant, report, &mut ok);
    Ok(ok)
}

fn report_mutant(mutant: &batcher::BatcherScenario, report: Report, ok: &mut bool) {
    match report.failure {
        Some(failure) => println!(
            "check: {} FLAGGED as expected after {} schedule(s) — lost-wakeup counterexample:\n{}",
            mutant.name(),
            report.runs,
            failure.render()
        ),
        None => {
            println!(
                "check: {} PASSED but must fail — the checker can no longer see the PR 8 race",
                mutant.name()
            );
            *ok = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn explore_batcher(scenario: &batcher::BatcherScenario, bound: usize) -> Report {
        Explorer::with_bound(bound).explore(scenario, 2, 1).expect("exploration within budget")
    }

    #[test]
    fn shipped_batcher_passes_exhaustively_at_bound_2() {
        for scenario in &batcher::shipped_scenarios() {
            let report = explore_batcher(scenario, 2);
            assert!(
                report.failure.is_none(),
                "{}: {}",
                scenario.name(),
                report.failure.unwrap().render()
            );
            assert!(report.runs > 1_000, "suspiciously small schedule space: {}", report.runs);
        }
    }

    #[test]
    fn shipped_batcher_passes_exhaustively_at_bound_3() {
        for scenario in &batcher::shipped_scenarios() {
            let report = explore_batcher(scenario, 3);
            assert!(
                report.failure.is_none(),
                "{}: {}",
                scenario.name(),
                report.failure.unwrap().render()
            );
        }
    }

    #[test]
    fn mutant_batcher_is_flagged_at_bound_2() {
        let report = explore_batcher(&batcher::mutant_scenario(), 2);
        let failure = report.failure.expect("the PR 8 lost-wakeup race must be found");
        assert!(failure.kind.contains("deadlock"), "unexpected failure kind: {}", failure.kind);
        // The counterexample must be the lost wakeup: the worker parked
        // on the condvar while every producer already exited.
        assert!(
            failure.trace.iter().any(|(_, label)| label.contains("cv-wait")),
            "counterexample does not reach the condvar wait:\n{}",
            failure.render()
        );
    }

    #[test]
    fn mutant_batcher_is_flagged_at_bound_3() {
        let report = explore_batcher(&batcher::mutant_scenario(), 3);
        assert!(report.failure.is_some(), "the PR 8 lost-wakeup race must be found at bound 3");
    }

    #[test]
    fn exec_blame_is_deterministic_across_all_schedules() {
        let scenario = exec_model::ExecScenario::default();
        let report =
            Explorer::with_bound(3).explore(&scenario, 0, 0).expect("exploration within budget");
        assert!(report.failure.is_none(), "{}", report.failure.unwrap().render());
    }

    // -- explorer self-tests: the machinery must see classic bugs --------

    struct AbBaScenario;

    struct AbBaThread {
        first: usize,
        second: usize,
        pc: Cell<u8>,
    }

    impl Thread<(ModelMutex<()>, ModelMutex<()>)> for AbBaThread {
        fn step(
            &mut self,
            tid: Tid,
            sched: &mut Scheduler,
            shared: &(ModelMutex<()>, ModelMutex<()>),
        ) -> (Step, &'static str) {
            let lock = |id: usize| if id == 0 { &shared.0 } else { &shared.1 };
            match self.pc.get() {
                0 => {
                    if lock(self.first).try_acquire(sched, tid) {
                        self.pc.set(1);
                        (Step::Progress, "acq-first")
                    } else {
                        (Step::Blocked, "block-first")
                    }
                }
                1 => {
                    if lock(self.second).try_acquire(sched, tid) {
                        self.pc.set(2);
                        (Step::Progress, "acq-second")
                    } else {
                        (Step::Blocked, "block-second")
                    }
                }
                _ => {
                    lock(self.second).release(sched, tid);
                    lock(self.first).release(sched, tid);
                    (Step::Done, "release-both")
                }
            }
        }
    }

    impl Scenario for AbBaScenario {
        type Shared = (ModelMutex<()>, ModelMutex<()>);

        fn name(&self) -> &'static str {
            "self-test[AB/BA lock order]"
        }

        fn build(&self) -> (Self::Shared, Vec<Box<dyn Thread<Self::Shared>>>) {
            (
                (ModelMutex::new(0, ()), ModelMutex::new(1, ())),
                vec![
                    Box::new(AbBaThread { first: 0, second: 1, pc: Cell::new(0) }),
                    Box::new(AbBaThread { first: 1, second: 0, pc: Cell::new(0) }),
                ],
            )
        }

        fn finale(&self, _shared: &Self::Shared) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn explorer_finds_the_classic_ab_ba_deadlock() {
        let report = Explorer::with_bound(2).explore(&AbBaScenario, 2, 0).expect("within budget");
        let failure = report.failure.expect("AB/BA must deadlock under some schedule");
        assert!(failure.kind.contains("deadlock"), "{}", failure.kind);
    }

    #[test]
    fn budget_overrun_is_an_error_not_a_truncation() {
        let scenario = &batcher::shipped_scenarios()[0];
        let tiny = Explorer { bound: 3, max_runs: 10, max_steps: 10_000 };
        let error = tiny.explore(scenario, 2, 1).expect_err("must refuse to claim exhaustiveness");
        assert!(error.contains("max_runs"), "{error}");
    }
}
