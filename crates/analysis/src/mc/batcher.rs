//! Extracted model of the server batcher's epoch protocol
//! (`crates/server/src/batcher.rs`), checked across every interleaving
//! within the preemption bound.
//!
//! ## Extraction notes (what maps to what)
//!
//! The model mirrors the real code's synchronization points one-to-one:
//!
//! | real code                                  | model                        |
//! |--------------------------------------------|------------------------------|
//! | `state: parking_lot::Mutex<State>`         | [`ModelMutex`] `MUTEX_STATE` |
//! | `gate: std::sync::Mutex<u64>`              | [`ModelMutex`] `MUTEX_GATE`  |
//! | `cv: Condvar`                              | [`ModelCondvar`]             |
//! | `enqueue`: push under state, then bump     | `Producer` per item          |
//! |   under gate, then `notify_all` *after*    | (mutate, bump, notify are    |
//! |   the gate unlock                          | three separate steps)        |
//! | `shutdown`: flag under state, then bump+   | `Producer` tail op           |
//! |   notify                                   |                              |
//! | `next_batch`: snapshot epoch → evaluate    | `Worker` with                |
//! |   state → re-check epoch under gate →      | `mutant: false`              |
//! |   `cv.wait`                                |                              |
//! | the pre-review-fix `next_batch` (PR 8):    | `Worker` with                |
//! |   evaluate state → `cv.wait`, no epoch     | `mutant: true`               |
//!
//! Two deliberate simplifications, both *strengthening* the check:
//!
//! - **window = 0**: any queued item is immediately ripe. The flush
//!   window is a timing policy, not a synchronization mechanism; the
//!   race lives in the empty-queue sleep path, which a zero window
//!   reaches fastest.
//! - **waits are untimed**: the real code's [`IDLE_WAIT_FALLBACK`]
//!   (100ms bounded wait) is *not* modeled, so the checker proves the
//!   epoch protocol correct on its own — a lost wakeup is a permanent
//!   deadlock here, not a 100ms latency blip.
//!
//! [`IDLE_WAIT_FALLBACK`]: ../../../socialscope_server/index.html
//!
//! Checked invariants: no deadlock (scheduler-detected), no lost wakeup
//! (a lost wakeup strands a sleeping worker → deadlock), and
//! exactly-once delivery (delivered ⊎ refused = produced, no
//! double-delivery, no stranded queue members).

use super::{ModelCondvar, ModelMutex, Scenario, Scheduler, Step, Thread, Tid};
use std::cell::{Cell, RefCell};

pub const MUTEX_STATE: usize = 0;
pub const MUTEX_GATE: usize = 1;
const COND_CV: usize = 0;

/// The data under the `state` mutex, as in the real batcher (the per-key
/// queue map collapses to one queue: batching *keys* are a partitioning
/// policy, not synchronization).
struct BState {
    queue: Vec<u32>,
    shutdown: bool,
}

/// Shared world: the two locks, the condvar, and the ledger the finale
/// invariant audits.
pub struct Shared {
    state: ModelMutex<BState>,
    gate: ModelMutex<u64>,
    cv: ModelCondvar,
    /// Items refused because shutdown was already set (real code drops
    /// the reply sender; the handler answers 500).
    refused: Cell<u32>,
    /// Items handed to a worker, in delivery order.
    delivered: RefCell<Vec<u32>>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            state: ModelMutex::new(MUTEX_STATE, BState { queue: Vec::new(), shutdown: false }),
            gate: ModelMutex::new(MUTEX_GATE, 0),
            cv: ModelCondvar::new(COND_CV),
            refused: Cell::new(0),
            delivered: RefCell::new(Vec::new()),
        }
    }
}

/// What a producer does next. Each item is `enqueue`: acquire state →
/// push (or refuse) + release → acquire gate → bump + release → notify.
/// The optional tail op is `shutdown` with the same gate choreography.
#[derive(Clone, Copy)]
enum PPc {
    AcquireState,
    MutateRelease,
    AcquireGate,
    BumpRelease,
    Notify,
}

struct Producer {
    items: Vec<u32>,
    then_shutdown: bool,
    /// Index into `items`; `items.len()` means the shutdown op.
    pos: usize,
    pc: PPc,
}

impl Producer {
    fn new(items: Vec<u32>, then_shutdown: bool) -> Self {
        Producer { items, then_shutdown, pos: 0, pc: PPc::AcquireState }
    }

    fn shutting_down(&self) -> bool {
        self.pos >= self.items.len()
    }
}

impl Thread<Shared> for Producer {
    fn step(&mut self, tid: Tid, sched: &mut Scheduler, shared: &Shared) -> (Step, &'static str) {
        match self.pc {
            PPc::AcquireState => {
                if shared.state.try_acquire(sched, tid) {
                    self.pc = PPc::MutateRelease;
                    (Step::Progress, "p:lock(state)")
                } else {
                    (Step::Blocked, "p:block(state)")
                }
            }
            PPc::MutateRelease => {
                let label = if self.shutting_down() {
                    shared.state.with(sched, tid, |s| s.shutdown = true);
                    "p:set-shutdown,unlock(state)"
                } else {
                    let item = self.items[self.pos];
                    shared.state.with(sched, tid, |s| {
                        if s.shutdown {
                            shared.refused.set(shared.refused.get() + 1);
                        } else {
                            s.queue.push(item);
                        }
                    });
                    "p:push,unlock(state)"
                };
                shared.state.release(sched, tid);
                self.pc = PPc::AcquireGate;
                (Step::Progress, label)
            }
            PPc::AcquireGate => {
                if shared.gate.try_acquire(sched, tid) {
                    self.pc = PPc::BumpRelease;
                    (Step::Progress, "p:lock(gate)")
                } else {
                    (Step::Blocked, "p:block(gate)")
                }
            }
            PPc::BumpRelease => {
                shared.gate.with(sched, tid, |epoch| *epoch += 1);
                shared.gate.release(sched, tid);
                self.pc = PPc::Notify;
                (Step::Progress, "p:bump,unlock(gate)")
            }
            PPc::Notify => {
                // As in the real `bump_and_notify`: the notify fires
                // *after* the gate unlock, its own scheduling point.
                shared.cv.notify_all(sched);
                let was_shutdown = self.shutting_down();
                self.pos += 1;
                if was_shutdown || (self.pos >= self.items.len() && !self.then_shutdown) {
                    (Step::Done, "p:notify,exit")
                } else {
                    self.pc = PPc::AcquireState;
                    (Step::Progress, "p:notify")
                }
            }
        }
    }
}

/// Worker program counters; the mutant skips `SnapAcquireGate` /
/// `SnapReadRelease` and never re-checks the epoch before sleeping.
#[derive(Clone, Copy)]
enum WPc {
    SnapAcquireGate,
    SnapReadRelease,
    AcquireState,
    EvalRelease,
    WaitAcquireGate,
    WaitCheckOrSleep,
    ReacquireGate,
    PostWaitRelease,
}

struct Worker {
    mutant: bool,
    epoch: u64,
    pc: WPc,
}

impl Worker {
    fn new(mutant: bool) -> Self {
        let pc = if mutant { WPc::AcquireState } else { WPc::SnapAcquireGate };
        Worker { mutant, epoch: 0, pc }
    }

    fn restart(&mut self) {
        self.pc = if self.mutant { WPc::AcquireState } else { WPc::SnapAcquireGate };
    }
}

impl Thread<Shared> for Worker {
    fn step(&mut self, tid: Tid, sched: &mut Scheduler, shared: &Shared) -> (Step, &'static str) {
        match self.pc {
            WPc::SnapAcquireGate => {
                if shared.gate.try_acquire(sched, tid) {
                    self.pc = WPc::SnapReadRelease;
                    (Step::Progress, "w:lock(gate,snapshot)")
                } else {
                    (Step::Blocked, "w:block(gate,snapshot)")
                }
            }
            WPc::SnapReadRelease => {
                self.epoch = shared.gate.with(sched, tid, |epoch| *epoch);
                shared.gate.release(sched, tid);
                self.pc = WPc::AcquireState;
                (Step::Progress, "w:read-epoch,unlock(gate)")
            }
            WPc::AcquireState => {
                if shared.state.try_acquire(sched, tid) {
                    self.pc = WPc::EvalRelease;
                    (Step::Progress, "w:lock(state)")
                } else {
                    (Step::Blocked, "w:block(state)")
                }
            }
            WPc::EvalRelease => {
                enum Eval {
                    Took(u32),
                    Drained,
                    Empty,
                }
                let eval = shared.state.with(sched, tid, |s| {
                    if s.queue.is_empty() {
                        if s.shutdown {
                            Eval::Drained
                        } else {
                            Eval::Empty
                        }
                    } else {
                        Eval::Took(s.queue.remove(0))
                    }
                });
                shared.state.release(sched, tid);
                match eval {
                    Eval::Took(item) => {
                        shared.delivered.borrow_mut().push(item);
                        self.restart();
                        (Step::Progress, "w:take,unlock(state)")
                    }
                    Eval::Drained => (Step::Done, "w:drained,unlock(state),exit"),
                    Eval::Empty => {
                        self.pc = WPc::WaitAcquireGate;
                        (Step::Progress, "w:empty,unlock(state)")
                    }
                }
            }
            WPc::WaitAcquireGate => {
                if shared.gate.try_acquire(sched, tid) {
                    self.pc = WPc::WaitCheckOrSleep;
                    (Step::Progress, "w:lock(gate,pre-wait)")
                } else {
                    (Step::Blocked, "w:block(gate,pre-wait)")
                }
            }
            WPc::WaitCheckOrSleep => {
                if !self.mutant {
                    let current = shared.gate.with(sched, tid, |epoch| *epoch);
                    if current != self.epoch {
                        // The epoch moved since the snapshot: a notify
                        // fired (or will fire against the new epoch);
                        // loop and re-evaluate instead of sleeping.
                        shared.gate.release(sched, tid);
                        self.restart();
                        return (Step::Progress, "w:epoch-moved,unlock(gate)");
                    }
                }
                // Sleep: atomically release the gate and block (untimed —
                // the model omits IDLE_WAIT_FALLBACK on purpose).
                self.pc = WPc::ReacquireGate;
                shared.cv.wait(sched, tid, &shared.gate);
                (Step::Blocked, "w:cv-wait(release gate)")
            }
            WPc::ReacquireGate => {
                if shared.gate.try_acquire(sched, tid) {
                    self.pc = WPc::PostWaitRelease;
                    (Step::Progress, "w:woken,lock(gate)")
                } else {
                    (Step::Blocked, "w:woken,block(gate)")
                }
            }
            WPc::PostWaitRelease => {
                shared.gate.release(sched, tid);
                self.restart();
                (Step::Progress, "w:unlock(gate),loop")
            }
        }
    }
}

/// A closed batcher system: a set of producers (each with an item list
/// and optionally the shutdown duty) plus N workers, shipped or mutant.
pub struct BatcherScenario {
    name: &'static str,
    mutant: bool,
    producers: Vec<(Vec<u32>, bool)>,
    workers: usize,
}

impl Scenario for BatcherScenario {
    type Shared = Shared;

    fn name(&self) -> &'static str {
        self.name
    }

    fn build(&self) -> (Shared, Vec<Box<dyn Thread<Shared>>>) {
        let mut threads: Vec<Box<dyn Thread<Shared>>> = Vec::new();
        for (items, then_shutdown) in &self.producers {
            threads.push(Box::new(Producer::new(items.clone(), *then_shutdown)));
        }
        for _ in 0..self.workers {
            threads.push(Box::new(Worker::new(self.mutant)));
        }
        (Shared::new(), threads)
    }

    /// Exactly-once delivery: delivered ⊎ refused = produced, no
    /// duplicates, nothing stranded in the queue.
    fn finale(&self, shared: &Shared) -> Result<(), String> {
        let mut produced: Vec<u32> =
            self.producers.iter().flat_map(|(items, _)| items.iter().copied()).collect();
        produced.sort_unstable();
        let mut delivered = shared.delivered.borrow().clone();
        delivered.sort_unstable();
        if delivered.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!("double delivery: {delivered:?}"));
        }
        let refused = shared.refused.get() as usize;
        if delivered.len() + refused != produced.len() {
            return Err(format!(
                "lost or conjured items: produced {produced:?}, delivered {delivered:?}, \
                 refused {refused}"
            ));
        }
        if !delivered.iter().all(|item| produced.binary_search(item).is_ok()) {
            return Err(format!("delivered unknown items: {delivered:?} vs {produced:?}"));
        }
        let stranded = shared.state.peek(|s| s.queue.len());
        if stranded != 0 {
            return Err(format!("{stranded} member(s) stranded in the queue after shutdown"));
        }
        Ok(())
    }
}

impl<T> ModelMutex<T> {
    /// Finale-only peek at the data, after every thread has terminated
    /// (no scheduler, no ownership to assert).
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.data.borrow())
    }
}

/// The shipped protocol under its two standing scenarios:
///
/// - **A**: one producer (2 items, then shutdown), two workers — worker
///   contention on the queue plus the delivery/shutdown race.
/// - **B**: two single-item producers racing a dedicated shutdowner, one
///   worker — the refused-at-shutdown path and notify storms.
pub fn shipped_scenarios() -> Vec<BatcherScenario> {
    vec![
        BatcherScenario {
            name: "batcher[1 producer x2 items+shutdown, 2 workers]",
            mutant: false,
            producers: vec![(vec![1, 2], true)],
            workers: 2,
        },
        BatcherScenario {
            name: "batcher[2 producers x1 item vs shutdowner, 1 worker]",
            mutant: false,
            producers: vec![(vec![1], false), (vec![2], false), (vec![], true)],
            workers: 1,
        },
    ]
}

/// The pre-review-fix batcher (PR 8 as first shipped): the worker
/// evaluates state and then sleeps with no epoch snapshot or re-check.
/// One preemption between "w:empty,unlock(state)" and the wait lets the
/// producer's enqueue+shutdown notifies land on an empty waiter list —
/// the worker then sleeps forever holding an undelivered item: the
/// checker must flag this as a deadlock.
pub fn mutant_scenario() -> BatcherScenario {
    BatcherScenario {
        name: "batcher-mutant[no epoch snapshot; 1 producer x1 item+shutdown, 1 worker]",
        mutant: true,
        producers: vec![(vec![1], true)],
        workers: 1,
    }
}
