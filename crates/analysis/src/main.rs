//! CLI for the workspace analysis tool.
//!
//! ```text
//! socialscope_analysis lint  [--root PATH]            # invariant linter + schema sync
//! socialscope_analysis check [--bound N]              # model checker (feature `model`)
//! socialscope_analysis all   [--root PATH] [--bound N]
//! ```
//!
//! Exit codes: 0 clean, 1 violations / check failure, 2 usage or internal
//! error (including `check` without `--features model`).

use std::path::PathBuf;
use std::process::ExitCode;

use socialscope_analysis::{lint, schema};

struct Args {
    command: String,
    root: PathBuf,
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    bound: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "all".to_string());
    let mut root = PathBuf::from(".");
    let mut bound = 3usize;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a path")?);
            }
            "--bound" => {
                bound = argv
                    .next()
                    .ok_or("--bound needs a number")?
                    .parse()
                    .map_err(|_| "--bound needs a number".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args { command, root, bound })
}

fn run_lint(args: &Args) -> Result<bool, String> {
    if !args.root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/ directory); pass --root",
            args.root.display()
        ));
    }
    let mut violations = lint::lint_workspace(&args.root)?;
    violations.extend(schema::check_schema_sync(&args.root)?);
    for violation in &violations {
        println!("{violation}");
    }
    if violations.is_empty() {
        println!("lint: clean ({} rules over crates/*/src + schema sync)", lint::RULES.len());
        Ok(true)
    } else {
        println!("lint: {} violation(s)", violations.len());
        Ok(false)
    }
}

#[cfg(feature = "model")]
fn run_check(args: &Args) -> Result<bool, String> {
    socialscope_analysis::mc::run_all(args.bound)
}

#[cfg(not(feature = "model"))]
fn run_check(_args: &Args) -> Result<bool, String> {
    Err("the model checker is compiled out; rerun with `cargo run -p socialscope_analysis \
         --features model -- check`"
        .to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("socialscope_analysis: {message}");
            return ExitCode::from(2);
        }
    };
    let outcome = match args.command.as_str() {
        "lint" => run_lint(&args),
        "check" => run_check(&args),
        "all" => run_lint(&args).and_then(|lint_ok| Ok(run_check(&args)? && lint_ok)),
        other => Err(format!("unknown command `{other}` (expected lint | check | all)")),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("socialscope_analysis: {message}");
            ExitCode::from(2)
        }
    }
}
