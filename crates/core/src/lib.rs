//! # SocialScope
//!
//! A Rust implementation of *SocialScope: Enabling Information Discovery on
//! Social Content Sites* (Amer-Yahia, Lakshmanan, Yu — CIDR 2009).
//!
//! This facade crate re-exports the five layers of the system; see each
//! sub-crate for the detailed documentation:
//!
//! * [`graph`] — the social content graph substrate (paper §4);
//! * [`algebra`] — the graph algebra, logical plans and optimizer (§5);
//! * [`content`] — content management: network-aware indexes, user
//!   clustering, top-k processing, the three management models, activity
//!   manager and content integrator (§6);
//! * [`discovery`] — the information discovery layer: query model,
//!   semantic/social relevance, content analyzer, recommenders and the
//!   Meaningful Social Graph (§3, §5);
//! * [`presentation`] — the information presentation layer: grouping,
//!   organization and explanations (§7);
//! * [`workload`] — synthetic site and query-log generators used by the
//!   experiment harness (see `EXPERIMENTS.md`);
//! * [`exec`] — the execution layer: the scoped-thread shard pool behind
//!   parallel index builds, multi-threaded batch serving and batch-routed
//!   discovery (deterministic: parallel results are identical to
//!   sequential ones);
//! * [`server`] — the serving front: a dependency-free HTTP/1.1 layer
//!   that micro-batches single-seeker queries into the engines'
//!   deadline-budgeted batch path (see also the [`serve`] prelude).
//!
//! ## Quickstart
//!
//! ```
//! use socialscope::prelude::*;
//!
//! // Build a small travel site.
//! let mut b = GraphBuilder::new();
//! let john = b.add_user_with_interests("John", &["baseball"]);
//! let friend = b.add_user("Friend");
//! let coors = b.add_item_with_keywords("Coors Field", &["destination"], &["denver", "baseball"]);
//! b.befriend(john, friend);
//! b.visit(friend, coors);
//! let graph = b.build();
//!
//! // Discover semantically + socially relevant items for John.
//! let msg = InformationDiscoverer::default()
//!     .discover(&graph, &UserQuery::keywords_for(john, "Denver baseball"));
//! assert_eq!(msg.ranked[0].item, coors);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use socialscope_algebra as algebra;
pub use socialscope_content as content;
pub use socialscope_discovery as discovery;
pub use socialscope_exec as exec;
pub use socialscope_graph as graph;
pub use socialscope_presentation as presentation;
pub use socialscope_server as server;
pub use socialscope_workload as workload;

/// Everything a serving deployment touches, re-exported together: the
/// server front (boot with [`serve::spawn`], tune with
/// [`serve::ServerConfig`]), the versioned wire schema every client and
/// load generator shares, the engines the server hosts, and the batch
/// controls (`Exec`, `BatchOptions`, deadline budgets) that govern how a
/// flushed micro-batch runs.
pub mod serve {
    pub use socialscope_content::wire::{
        ApplyRequest, ApplyResponse, ErrorResponse, QueryRequest, QueryResponse, ScoredItem,
        WireError, WireEvent, WIRE_VERSION,
    };
    pub use socialscope_content::{BatchOptions, BatchScratchPool, TagEvent};
    pub use socialscope_discovery::{
        BatchRecommender, ClusteredNetworkAwareSearch, NetworkAwareSearch,
    };
    pub use socialscope_exec::Exec;
    pub use socialscope_server::http::HttpLimits;
    pub use socialscope_server::{spawn, ServerConfig, ServerHandle};
}

/// The most commonly used items across all layers, re-exported together.
pub mod prelude {
    pub use socialscope_algebra::prelude::*;
    pub use socialscope_content::{
        ActivityManager, ApplyReport, BatchOptions, BatchScratch, BatchScratchPool,
        BehaviorBasedClustering, ClusteredIndex, ClusteringStrategy, ContentIntegrator,
        DeploymentModel, ExactIndex, HybridClustering, NetworkBasedClustering, SiteModel, TagEvent,
        TagId, TagInterner, UserJourney,
    };
    pub use socialscope_discovery::{
        recommend_for_user, BatchRecommender, ClusteredNetworkAwareSearch, ContentAnalyzer,
        InformationDiscoverer, MeaningfulSocialGraph, NetworkAwareSearch, UserQuery,
    };
    pub use socialscope_exec::Exec;
    pub use socialscope_graph::{
        GraphBuilder, GraphStats, Link, LinkId, Node, NodeId, SocialGraph, Value,
    };
    pub use socialscope_presentation::{
        aggregate_explanation, group_explanation, GroupingStrategy, InformationOrganizer,
    };
    pub use socialscope_workload::{
        classify_query, generate_events, generate_site, ClassCounts, EventStreamConfig,
        QueryLogConfig, QueryLogGenerator, SiteConfig,
    };
}
