//! # socialscope-exec
//!
//! The execution layer of SocialScope: a small, hand-rolled scoped-thread
//! shard pool shared by the three hot layers — inverted-index builds,
//! multi-user batch serving, and batch-routed discovery (paper §6,
//! "serving millions of users").
//!
//! The paper's network-aware scoring is per-seeker: the same keyword set is
//! evaluated independently for many seekers, work that shards perfectly.
//! [`Exec`] owns the policy of *how many* workers to use and the mechanics
//! of fanning contiguous shards of work out to scoped threads
//! (`std::thread::scope` — no external dependencies, no detached threads,
//! no `unsafe`). Callers keep the determinism story: shard results come
//! back **in shard order**, so a deterministic merge reproduces the
//! sequential result byte for byte, and [`Exec::sequential`] (or any
//! computed shard count of 1) runs the work inline on the caller's thread —
//! the exact single-threaded code path, with no thread machinery touched.
//!
//! Two fan-out shapes cover every use in the tree:
//!
//! * [`Exec::run_sharded`] — split `0..items` into near-equal contiguous
//!   ranges, one stateless worker per range (index builds);
//! * [`Exec::run_chunks_with`] — run caller-partitioned chunks, each with
//!   exclusive access to its own scratch state (batch serving, where every
//!   worker owns a scratch arena that persists across batches).
//!
//! Thread-count policy comes from three places, in order of precedence:
//! an explicit [`Exec::new`], the `SOCIALSCOPE_THREADS` environment
//! variable, or [`std::thread::available_parallelism`] ([`Exec::auto`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod failpoints;

use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Environment variable read by [`Exec::auto`] / [`Exec::from_env`]:
/// a positive worker count overriding [`std::thread::available_parallelism`].
pub const THREADS_ENV: &str = "SOCIALSCOPE_THREADS";

/// Errors from the execution layer: invalid thread-count configuration, or
/// a worker panic isolated by one of the `try_run_*` entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker count of zero was requested ([`Exec::new`] rejects it — a
    /// pool with no workers can run nothing).
    ZeroThreads,
    /// A thread-count string (a CLI flag value or the `SOCIALSCOPE_THREADS`
    /// variable) does not parse as a positive integer.
    InvalidThreads(String),
    /// A shard's work closure panicked. The panic was caught at the shard
    /// boundary ([`Exec::try_run_sharded`] / [`Exec::try_run_chunks_with`]):
    /// sibling shards ran to completion and the caller's thread keeps
    /// running — the fault is localized to `shard` of `workers`, with the
    /// panic payload rendered for logging. When several shards panic in
    /// one fan-out, the lowest shard index is reported.
    ShardPanicked {
        /// The 0-based index of the (lowest) panicked shard.
        shard: usize,
        /// How many shards the fan-out ran in total.
        workers: usize,
        /// The panic payload, rendered to a string (`&str` and `String`
        /// payloads verbatim; anything else as a placeholder).
        payload: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ZeroThreads => write!(f, "thread count must be at least 1"),
            ExecError::InvalidThreads(value) => {
                write!(f, "`{value}` is not a positive thread count")
            }
            ExecError::ShardPanicked { shard, workers, payload } => {
                write!(f, "shard {shard} of {workers} panicked: {payload}")
            }
        }
    }
}

/// Render a caught panic payload for logs: `&str` and `String` payloads
/// verbatim, anything else as a placeholder.
fn payload_string(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

impl std::error::Error for ExecError {}

/// Parse a thread-count string (the `SOCIALSCOPE_THREADS` value or a CLI
/// flag): a positive integer, everything else rejected loudly.
pub fn parse_threads(raw: &str) -> Result<usize, ExecError> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(ExecError::InvalidThreads(raw.to_string())),
    }
}

/// A shard pool: the worker-count policy plus the scoped-thread fan-out
/// mechanics. Cheap to copy and carry around; threads are scoped to each
/// `run_*` call, so an `Exec` holds no OS resources between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    threads: usize,
}

impl Exec {
    /// The single-worker pool: every `run_*` call executes inline on the
    /// caller's thread — the exact sequential code path, no spawns.
    pub const fn sequential() -> Self {
        Exec { threads: 1 }
    }

    /// A pool of exactly `threads` workers. Zero is rejected. Counts above
    /// the machine's parallelism are honored as asked (useful for
    /// determinism tests, which deliberately over-shard on small machines).
    pub fn new(threads: usize) -> Result<Self, ExecError> {
        if threads == 0 {
            return Err(ExecError::ZeroThreads);
        }
        Ok(Exec { threads })
    }

    /// The environment-driven pool: `SOCIALSCOPE_THREADS` when set (an
    /// unparsable or zero value is an error — a misconfigured deployment
    /// should fail loudly, not silently serve single-threaded), otherwise
    /// [`std::thread::available_parallelism`].
    pub fn from_env() -> Result<Self, ExecError> {
        match std::env::var(THREADS_ENV) {
            Ok(raw) => parse_threads(&raw).map(|threads| Exec { threads }),
            Err(_) => Ok(Exec { threads: default_parallelism() }),
        }
    }

    /// The default pool used when callers don't pass one: [`Exec::from_env`]
    /// resolved once per process (the hot paths must not re-read the
    /// environment per batch), degrading to sequential if the override is
    /// invalid — library entry points must not panic on a bad variable;
    /// binaries that want loud failure call [`Exec::from_env`] themselves.
    pub fn auto() -> Self {
        static AUTO_THREADS: OnceLock<usize> = OnceLock::new();
        let threads =
            *AUTO_THREADS.get_or_init(|| Exec::from_env().map(|e| e.threads).unwrap_or(1));
        Exec { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether every `run_*` call executes inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// How many shards `items` items split into under this pool, requiring
    /// at least `min_per_shard` items per shard: fanning out costs a thread
    /// spawn per shard, so slivers of work below that floor run inline
    /// (shard count 1) rather than paying more in spawns than the work is
    /// worth. Always at least 1, never more than [`Self::threads`].
    pub fn shard_count(&self, items: usize, min_per_shard: usize) -> usize {
        if self.threads == 1 || items == 0 {
            return 1;
        }
        (items / min_per_shard.max(1)).clamp(1, self.threads)
    }

    /// Split `0..items` into `shards` contiguous near-equal ranges (the
    /// first `items % shards` ranges hold one extra item). The ranges cover
    /// `0..items` exactly, in order — the order shard results come back in.
    pub fn shard_ranges(items: usize, shards: usize) -> Vec<Range<usize>> {
        let shards = shards.clamp(1, items.max(1));
        let (base, extra) = (items / shards, items % shards);
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for shard in 0..shards {
            let len = base + usize::from(shard < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Fan `0..items` out to at most [`Self::threads`] stateless workers in
    /// contiguous shards of at least `min_per_shard` items and return the
    /// shard results **in shard order**. `work` receives `(shard index,
    /// item range)`. A shard count of 1 — always the case for
    /// [`Exec::sequential`] — calls `work(0, 0..items)` inline on the
    /// caller's thread: the exact sequential code path.
    ///
    /// # Panics
    ///
    /// If any shard's `work` panics: sibling shards still run to
    /// completion (the panic is caught at the shard boundary), then the
    /// call panics with the shard index and worker count attached —
    /// `shard S of N panicked: …` — so a log can localize the fault. Use
    /// [`Self::try_run_sharded`] to receive the same information as a
    /// typed [`ExecError::ShardPanicked`] instead of unwinding.
    pub fn run_sharded<T, F>(&self, items: usize, min_per_shard: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        // lint: allow(no_panic, reason = "documented panicking convenience wrapper; serving paths use the adjacent try_ form and get a typed error")
        self.try_run_sharded(items, min_per_shard, work).unwrap_or_else(|error| panic!("{error}"))
    }

    /// [`Self::run_sharded`] with panic isolation: a panicking shard never
    /// unwinds the caller. Each shard's work runs under
    /// [`std::panic::catch_unwind`]; sibling shards always run to
    /// completion, and a panic anywhere surfaces as
    /// [`ExecError::ShardPanicked`] carrying the (lowest) panicked shard's
    /// index, the fan-out's worker count and the rendered payload. On
    /// success the results are exactly [`Self::run_sharded`]'s.
    pub fn try_run_sharded<T, F>(
        &self,
        items: usize,
        min_per_shard: usize,
        work: F,
    ) -> Result<Vec<T>, ExecError>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        let shards = self.shard_count(items, min_per_shard);
        let ranges = Self::shard_ranges(items, shards);
        let mut states = vec![(); ranges.len()];
        self.try_run_chunks_with(&mut states, &ranges, |_, shard, range| work(shard, range))
    }

    /// Run caller-partitioned `chunks` — at most one per entry of `states`
    /// — giving chunk `i` exclusive `&mut` access to `states[i]`, and
    /// return the chunk results **in chunk order**. This is the batch-
    /// serving shape: each worker owns a scratch arena that outlives the
    /// call (the caller keeps the states), so arena allocations amortize
    /// across batches exactly as in the sequential path. One chunk (or
    /// none) runs inline on the caller's thread with no thread machinery;
    /// otherwise chunk 0 runs on the caller's thread while scoped threads
    /// run the rest.
    ///
    /// # Panics
    ///
    /// If `chunks.len() > states.len()` — every chunk needs its own state.
    /// If any chunk's `work` panics: sibling chunks still run to
    /// completion, then the call panics with `shard S of N panicked: …`
    /// (see [`Self::try_run_chunks_with`] for the non-unwinding form).
    pub fn run_chunks_with<S, T, F>(
        &self,
        states: &mut [S],
        chunks: &[Range<usize>],
        work: F,
    ) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
    {
        // lint: allow(no_panic, reason = "documented panicking convenience wrapper; serving paths use the adjacent try_ form and get a typed error")
        self.try_run_chunks_with(states, chunks, work).unwrap_or_else(|error| panic!("{error}"))
    }

    /// [`Self::run_chunks_with`] with panic isolation: every chunk's work
    /// runs under [`std::panic::catch_unwind`] at the shard boundary, so a
    /// panicking worker never takes down its siblings (they all run to
    /// completion and are joined) or the caller. A panic anywhere surfaces
    /// as [`ExecError::ShardPanicked`] with the (lowest) panicked shard's
    /// index, the fan-out's worker count and the rendered payload; on
    /// success the results are exactly [`Self::run_chunks_with`]'s, in
    /// chunk order.
    ///
    /// The shard-start failpoint ([`failpoints::EXEC_SHARD_START`], fired
    /// with the shard index) lets robustness tests panic a chosen shard
    /// deterministically.
    ///
    /// # Panics
    ///
    /// If `chunks.len() > states.len()` — every chunk needs its own state
    /// (a caller bug, not a worker fault, so it is not converted to an
    /// error).
    pub fn try_run_chunks_with<S, T, F>(
        &self,
        states: &mut [S],
        chunks: &[Range<usize>],
        work: F,
    ) -> Result<Vec<T>, ExecError>
    where
        S: Send,
        T: Send,
        F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
    {
        assert!(
            chunks.len() <= states.len(),
            "{} chunks need {} states, got {}",
            chunks.len(),
            chunks.len(),
            states.len()
        );
        let workers = chunks.len();
        // Every invocation — inline or spawned — runs under catch_unwind at
        // the shard boundary, so the single-chunk path isolates panics
        // exactly like the multi-worker path.
        let guarded = |state: &mut S, shard: usize, chunk: Range<usize>| {
            catch_unwind(AssertUnwindSafe(|| {
                shard_start_failpoint(shard);
                work(state, shard, chunk)
            }))
        };
        let outcomes: Vec<Result<T, Box<dyn Any + Send>>> = match chunks {
            [] => Vec::new(),
            [only] => vec![guarded(&mut states[0], 0, only.clone())],
            _ => std::thread::scope(|scope| {
                let mut shard_workers = states[..chunks.len()].iter_mut().zip(chunks).enumerate();
                // lint: allow(no_panic, reason = "true invariant: this match arm is the two-or-more-chunks case, so the iterator yields a first element")
                let (_, (first_state, first_chunk)) =
                    shard_workers.next().expect("two or more chunks");
                // Spawn shards 1.. first, then run shard 0 on this thread:
                // one spawn fewer, and the caller's core stays busy.
                let handles: Vec<_> = shard_workers
                    .map(|(shard, (state, chunk))| {
                        scope.spawn({
                            let guarded = &guarded;
                            let chunk = chunk.clone();
                            move || guarded(state, shard, chunk)
                        })
                    })
                    .collect();
                let mut outcomes = vec![guarded(first_state, 0, first_chunk.clone())];
                // Every handle is joined before the scope closes: sibling
                // shards always finish, whatever happened elsewhere. (The
                // outer join error — the guarded closure itself panicking —
                // cannot happen, but folds into the same payload channel.)
                outcomes.extend(handles.into_iter().map(|h| h.join().unwrap_or_else(Err)));
                outcomes
            }),
        };
        let mut results = Vec::with_capacity(outcomes.len());
        let mut first_panic: Option<(usize, Box<dyn Any + Send>)> = None;
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(result) => results.push(result),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some((shard, payload));
                    }
                }
            }
        }
        match first_panic {
            None => Ok(results),
            Some((shard, payload)) => {
                Err(ExecError::ShardPanicked { shard, workers, payload: payload_string(payload) })
            }
        }
    }
}

/// Fire the shard-start failpoint with the shard index. Armed `Panic`
/// actions panic here (caught at the shard boundary like any worker
/// panic); armed `Fault` actions have no error channel at a shard start,
/// so they panic too — either way the fan-out reports
/// [`ExecError::ShardPanicked`] for the chosen shard. A no-op unless the
/// `failpoints` feature is enabled and the site armed.
fn shard_start_failpoint(shard: usize) {
    if let Err(fault) = failpoints::fire(failpoints::EXEC_SHARD_START, shard as u64) {
        // lint: allow(no_panic, reason = "deliberately injected fault: an armed failpoint propagates as a shard panic so catch_unwind isolation can be exercised")
        panic!("{fault}");
    }
}

impl Default for Exec {
    /// [`Exec::auto`]: the environment-driven pool.
    fn default() -> Self {
        Exec::auto()
    }
}

/// The machine's available parallelism, defaulting to 1 where the platform
/// cannot report it.
fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_is_rejected() {
        assert_eq!(Exec::new(0), Err(ExecError::ZeroThreads));
        assert_eq!(Exec::new(3).unwrap().threads(), 3);
        assert!(Exec::sequential().is_sequential());
        assert!(!Exec::new(2).unwrap().is_sequential());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 2 "), Ok(2));
        for bad in ["0", "-1", "four", "", "1.5"] {
            assert_eq!(
                parse_threads(bad),
                Err(ExecError::InvalidThreads(bad.to_string())),
                "{bad}"
            );
        }
    }

    #[test]
    fn shard_ranges_cover_everything_exactly_once_in_order() {
        for items in [0usize, 1, 2, 7, 16, 100, 101] {
            for shards in [1usize, 2, 3, 7, 16] {
                let ranges = Exec::shard_ranges(items, shards);
                assert!(!ranges.is_empty());
                let mut next = 0usize;
                for range in &ranges {
                    assert_eq!(range.start, next, "items {items} shards {shards}");
                    assert!(range.end >= range.start);
                    next = range.end;
                }
                assert_eq!(next, items, "items {items} shards {shards}");
                // Near-equal: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "items {items} shards {shards}: {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_count_honors_the_minimum_work_floor() {
        let exec = Exec::new(4).unwrap();
        assert_eq!(exec.shard_count(0, 16), 1);
        assert_eq!(exec.shard_count(15, 16), 1);
        assert_eq!(exec.shard_count(32, 16), 2);
        assert_eq!(exec.shard_count(1000, 16), 4);
        assert_eq!(Exec::sequential().shard_count(1000, 1), 1);
    }

    #[test]
    fn run_sharded_returns_results_in_shard_order() {
        for threads in [1usize, 2, 3, 7] {
            let exec = Exec::new(threads).unwrap();
            let results = exec.run_sharded(100, 1, |shard, range| (shard, range.clone()));
            let shards = exec.shard_count(100, 1);
            assert_eq!(results.len(), shards);
            for (i, (shard, _)) in results.iter().enumerate() {
                assert_eq!(*shard, i);
            }
            // Concatenating the ranges in result order reproduces 0..100.
            let covered: Vec<usize> = results.iter().flat_map(|(_, r)| r.clone()).collect();
            assert_eq!(covered, (0..100).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn sequential_runs_inline_without_spawning() {
        let caller = std::thread::current().id();
        let results = Exec::sequential()
            .run_sharded(10, 1, |_, range| (std::thread::current().id(), range.len()));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0], (caller, 10));
    }

    #[test]
    fn run_chunks_with_gives_each_chunk_its_own_state() {
        let exec = Exec::new(4).unwrap();
        let chunks: Vec<Range<usize>> = vec![0..3, 3..4, 4..9];
        let mut states = vec![0usize; 3];
        let sums = exec.run_chunks_with(&mut states, &chunks, |state, _, range| {
            *state += range.len();
            range.sum::<usize>()
        });
        assert_eq!(states, vec![3, 1, 5]);
        assert_eq!(sums, vec![3, 3, 30]);
        // States persist across calls (the scratch-arena reuse contract).
        let _ = exec.run_chunks_with(&mut states, &chunks, |state, _, range| {
            *state += range.len();
        });
        assert_eq!(states, vec![6, 2, 10]);
    }

    #[test]
    fn run_chunks_with_handles_empty_and_single_chunk_inline() {
        let mut states = vec![(); 2];
        let none: Vec<Range<usize>> = Vec::new();
        let out = Exec::new(2).unwrap().run_chunks_with(&mut states, &none, |_, _, _| 1usize);
        assert!(out.is_empty());
        let caller = std::thread::current().id();
        let single: Vec<Range<usize>> = Exec::shard_ranges(5, 1);
        let out = Exec::new(2)
            .unwrap()
            .run_chunks_with(&mut states, &single, |_, _, _| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn every_item_is_processed_exactly_once_across_thread_counts() {
        for threads in [1usize, 2, 7] {
            let counter = AtomicUsize::new(0);
            Exec::new(threads).unwrap().run_sharded(257, 4, |_, range| {
                counter.fetch_add(range.len(), Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 257, "threads {threads}");
        }
    }

    #[test]
    fn a_panicking_shard_never_takes_down_its_siblings() {
        let exec = Exec::new(4).unwrap();
        let processed = AtomicUsize::new(0);
        let err = exec
            .try_run_sharded(100, 1, |shard, range| {
                if shard == 2 {
                    panic!("boom in shard 2");
                }
                processed.fetch_add(range.len(), Ordering::Relaxed);
                range.len()
            })
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::ShardPanicked {
                shard: 2,
                workers: 4,
                payload: "boom in shard 2".to_string(),
            }
        );
        // The three sibling shards all ran to completion: 100 items minus
        // shard 2's quarter.
        assert_eq!(processed.load(Ordering::Relaxed), 75);
        // The pool stays usable after an isolated panic.
        let ok = exec.try_run_sharded(100, 1, |_, range| range.len()).unwrap();
        assert_eq!(ok.iter().sum::<usize>(), 100);
    }

    #[test]
    fn the_inline_single_shard_path_isolates_panics_too() {
        let err = Exec::sequential()
            .try_run_sharded(10, 1, |_, _| -> usize { panic!("inline boom") })
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::ShardPanicked { shard: 0, workers: 1, payload: "inline boom".to_string() }
        );
    }

    #[test]
    fn the_infallible_wrapper_panics_with_the_shard_attached() {
        let exec = Exec::new(2).unwrap();
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run_sharded(64, 1, |shard, _| {
                if shard == 1 {
                    panic!("worker died");
                }
            });
        }))
        .unwrap_err();
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("shard 1 of 2"), "{message}");
        assert!(message.contains("worker died"), "{message}");
    }

    #[test]
    fn lowest_panicked_shard_wins_when_several_panic() {
        let err = Exec::new(4)
            .unwrap()
            .try_run_sharded(100, 1, |shard, _| {
                if shard >= 1 {
                    panic!("boom {shard}");
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::ShardPanicked { shard: 1, workers: 4, payload: "boom 1".to_string() }
        );
    }

    /// The doc contract on [`Exec::auto`]: invalid `SOCIALSCOPE_THREADS`
    /// values must never panic. One test fn so env mutations cannot race
    /// across the parallel test harness.
    #[test]
    fn invalid_thread_env_values_never_panic() {
        for bad in ["0", "four", "", " ", "18446744073709551616", "-3"] {
            std::env::set_var(THREADS_ENV, bad);
            assert_eq!(
                Exec::from_env(),
                Err(ExecError::InvalidThreads(bad.to_string())),
                "{bad:?}"
            );
            // The auto() fallback path: invalid values degrade to 1 thread.
            let threads = Exec::from_env().map(|e| e.threads()).unwrap_or(1);
            assert_eq!(threads, 1, "{bad:?}");
        }
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Exec::from_env(), Ok(Exec::new(3).unwrap()));
        std::env::remove_var(THREADS_ENV);
        assert!(Exec::from_env().unwrap().threads() >= 1);
        // auto() itself must not panic whatever the cache saw first.
        assert!(Exec::auto().threads() >= 1);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod failpoint_tests {
    use super::*;
    use failpoints::{FailAction, FailScenario, EXEC_SHARD_START};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn an_armed_shard_start_panics_exactly_the_chosen_shard() {
        let scenario = FailScenario::setup();
        scenario.arm(EXEC_SHARD_START, FailAction::Panic { index: 1 });
        let exec = Exec::new(4).unwrap();
        let processed = AtomicUsize::new(0);
        let err = exec
            .try_run_sharded(100, 1, |_, range| {
                processed.fetch_add(range.len(), Ordering::Relaxed);
            })
            .unwrap_err();
        match err {
            ExecError::ShardPanicked { shard, workers, payload } => {
                assert_eq!((shard, workers), (1, 4));
                assert!(payload.contains(EXEC_SHARD_START), "{payload}");
            }
            other => panic!("expected ShardPanicked, got {other:?}"),
        }
        // Shard 1 panicked before its work ran; the other three finished.
        assert_eq!(processed.load(Ordering::Relaxed), 75);
        scenario.disarm(EXEC_SHARD_START);
        assert!(exec.try_run_sharded(100, 1, |_, _| ()).is_ok());
    }
}
