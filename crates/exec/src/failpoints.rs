//! Deterministic fault injection for robustness testing.
//!
//! A *failpoint* is a named site in the code — a shard boundary, an apply
//! phase boundary, a deadline check — where a test can deterministically
//! inject a failure: a panic at a chosen invocation index, or a typed fault
//! from the n-th hit onward. Production code calls [`fire`] at each site;
//! tests arm sites through a `FailScenario` guard (a type that only
//! exists in `failpoints` builds). Nothing here depends
//! on anything outside `std`, and with the `failpoints` cargo feature
//! disabled (the default) every call compiles to an inlined no-op — the
//! hot paths carry zero cost and the registry does not even exist.
//!
//! Determinism comes from the actions, not from randomness: a
//! [`FailAction::Panic`] fires exactly when the caller-supplied index (e.g.
//! a shard number) matches, and a [`FailAction::Fault`] counts hits and
//! fails *sticky* from the configured hit onward — so a test can place a
//! fault at precisely the first, second or n-th time a site is reached,
//! and replaying the test replays the failure.
//!
//! Scenarios serialize on a global lock: failpoint tests in one process
//! never see each other's armed sites, and dropping the scenario disarms
//! everything even if the test panics.

/// The failpoint at the start of every shard a [`crate::Exec`] fan-out
/// runs: arming it with [`FailAction::Panic`]`{ index: s }` panics shard
/// `s` deterministically, which is how the panic-isolation contract
/// ([`crate::Exec::try_run_sharded`]) is exercised without racy test
/// closures.
pub const EXEC_SHARD_START: &str = "exec::shard_start";

/// A typed fault returned by [`fire`] when the site is armed with
/// [`FailAction::Fault`] and the hit count has been reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The site the fault fired at.
    pub site: String,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for Fault {}

/// What an armed failpoint does when [`fire`]d.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic when the caller-supplied fire index equals `index` (e.g. the
    /// shard number) — other indexes pass through untouched.
    Panic {
        /// The fire index to panic at.
        index: u64,
    },
    /// Return a [`Fault`] from the `after`-th hit of the site onward
    /// (0-based and *sticky*: once faulting, every later hit faults too,
    /// which is how a forced deadline expiry stays expired).
    Fault {
        /// How many hits pass through before the fault starts firing.
        after: u64,
    },
}

#[cfg(feature = "failpoints")]
mod armed {
    use super::{FailAction, Fault};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct ArmedPoint {
        action: FailAction,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, ArmedPoint>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, ArmedPoint>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Lock helper that shrugs off poisoning: a failpoint test that
    /// panicked on purpose must not wedge every later scenario.
    fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
        mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn clear() {
        lock(registry()).clear();
    }

    /// RAII guard owning the process's failpoint registry for the duration
    /// of one test scenario. [`FailScenario::setup`] serializes on a global
    /// lock (concurrent failpoint tests cannot see each other's armed
    /// sites), clears any leftover state, and clears again on drop — even
    /// when the test panics.
    pub struct FailScenario {
        _guard: MutexGuard<'static, ()>,
    }

    impl FailScenario {
        /// Begin a scenario: take the global scenario lock and start from
        /// an empty registry.
        pub fn setup() -> Self {
            static SCENARIO: Mutex<()> = Mutex::new(());
            let guard = SCENARIO.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            clear();
            FailScenario { _guard: guard }
        }

        /// Arm a site for the rest of this scenario (replacing any earlier
        /// arming of the same site, hit count reset).
        pub fn arm(&self, site: &str, action: FailAction) {
            lock(registry()).insert(site.to_string(), ArmedPoint { action, hits: 0 });
        }

        /// Disarm one site (later [`super::fire`] calls pass through).
        pub fn disarm(&self, site: &str) {
            lock(registry()).remove(site);
        }
    }

    impl Drop for FailScenario {
        fn drop(&mut self) {
            clear();
        }
    }

    pub fn fire(site: &str, index: u64) -> Result<(), Fault> {
        let mut reg = lock(registry());
        let Some(point) = reg.get_mut(site) else {
            return Ok(());
        };
        match point.action {
            FailAction::Panic { index: at } => {
                if index == at {
                    // Release the registry before unwinding: a poisoned
                    // registry must never outlive the deliberate panic.
                    drop(reg);
                    // lint: allow(no_panic, reason = "deliberately injected fault: panicking here under a test-armed failpoint is this module's entire purpose")
                    panic!("injected panic at failpoint `{site}` (index {index})");
                }
                Ok(())
            }
            FailAction::Fault { after } => {
                let hit = point.hits;
                point.hits = point.hits.saturating_add(1);
                if hit >= after {
                    drop(reg);
                    Err(Fault { site: site.to_string() })
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use armed::FailScenario;

/// Fire a failpoint site with a caller-supplied index (a shard number, a
/// check counter — whatever identifies *which* invocation this is).
/// Unarmed sites — and every site when the `failpoints` feature is off —
/// pass through as `Ok(())` at zero cost. An armed
/// [`FailAction::Panic`] panics when the index matches; an armed
/// [`FailAction::Fault`] returns [`Fault`] from its configured hit onward.
#[cfg(feature = "failpoints")]
pub fn fire(site: &str, index: u64) -> Result<(), Fault> {
    armed::fire(site, index)
}

/// Fire a failpoint site. With the `failpoints` feature disabled this is
/// the whole implementation: an inlined no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire(_site: &str, _index: u64) -> Result<(), Fault> {
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_pass_through() {
        let _scenario = FailScenario::setup();
        assert_eq!(fire("nobody::armed::this", 0), Ok(()));
    }

    #[test]
    fn fault_counts_hits_and_stays_sticky() {
        let scenario = FailScenario::setup();
        scenario.arm("t::fault", FailAction::Fault { after: 2 });
        assert_eq!(fire("t::fault", 0), Ok(()));
        assert_eq!(fire("t::fault", 0), Ok(()));
        for _ in 0..3 {
            assert_eq!(fire("t::fault", 0), Err(Fault { site: "t::fault".to_string() }));
        }
        scenario.disarm("t::fault");
        assert_eq!(fire("t::fault", 0), Ok(()));
    }

    #[test]
    fn panic_fires_only_at_the_matching_index() {
        let scenario = FailScenario::setup();
        scenario.arm("t::panic", FailAction::Panic { index: 3 });
        assert_eq!(fire("t::panic", 2), Ok(()));
        assert_eq!(fire("t::panic", 4), Ok(()));
        let err = std::panic::catch_unwind(|| fire("t::panic", 3)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t::panic"), "{msg}");
        // The registry survives the caught panic un-poisoned.
        assert_eq!(fire("t::panic", 2), Ok(()));
    }

    #[test]
    fn dropping_the_scenario_disarms_everything() {
        {
            let scenario = FailScenario::setup();
            scenario.arm("t::leftover", FailAction::Fault { after: 0 });
            assert!(fire("t::leftover", 0).is_err());
        }
        let _next = FailScenario::setup();
        assert_eq!(fire("t::leftover", 0), Ok(()));
    }
}
