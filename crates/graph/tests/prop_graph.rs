//! Property-based tests of the social content graph substrate.

use proptest::prelude::*;
use socialscope_graph::{GraphBuilder, HasAttrs, NodeId, SocialGraph, Value};

/// Build a random small site from a compact description: a number of users,
/// a number of items, a friendship edge list and a tagging action list.
fn build_site(
    users: usize,
    items: usize,
    friendships: &[(usize, usize)],
    tags: &[(usize, usize)],
) -> (SocialGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let user_ids: Vec<NodeId> = (0..users).map(|i| b.add_user(&format!("u{i}"))).collect();
    let item_ids: Vec<NodeId> =
        (0..items).map(|i| b.add_item(&format!("i{i}"), &["destination"])).collect();
    for &(a, c) in friendships {
        let (a, c) = (a % users.max(1), c % users.max(1));
        if users > 0 && a != c {
            b.befriend(user_ids[a], user_ids[c]);
        }
    }
    for &(u, i) in tags {
        if users > 0 && items > 0 {
            b.tag(user_ids[u % users], item_ids[i % items], &["t"]);
        }
    }
    (b.build(), user_ids, item_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated site satisfies the structural invariants: link
    /// endpoints exist and adjacency indexes agree with the link store.
    #[test]
    fn generated_sites_satisfy_invariants(
        users in 1usize..12,
        items in 1usize..12,
        friendships in prop::collection::vec((0usize..12, 0usize..12), 0..40),
        tags in prop::collection::vec((0usize..12, 0usize..12), 0..60),
    ) {
        let (g, _, _) = build_site(users, items, &friendships, &tags);
        prop_assert!(g.check_invariants().is_ok());
        prop_assert_eq!(g.node_count(), users + items);
    }

    /// Removing any node keeps the graph well-formed and removes exactly the
    /// links that touched it.
    #[test]
    fn node_removal_is_consistent(
        users in 2usize..10,
        items in 1usize..10,
        friendships in prop::collection::vec((0usize..10, 0usize..10), 0..30),
        tags in prop::collection::vec((0usize..10, 0usize..10), 0..30),
        victim in 0usize..10,
    ) {
        let (mut g, user_ids, _) = build_site(users, items, &friendships, &tags);
        let victim = user_ids[victim % users];
        let touching = g.links_of(victim).count();
        let before = g.link_count();
        g.remove_node(victim);
        prop_assert!(g.check_invariants().is_ok());
        prop_assert_eq!(g.link_count(), before - touching);
        prop_assert!(!g.has_node(victim));
    }

    /// Merging a graph with itself is a no-op (idempotent consolidation).
    #[test]
    fn self_merge_is_idempotent(
        users in 1usize..8,
        items in 1usize..8,
        friendships in prop::collection::vec((0usize..8, 0usize..8), 0..20),
        tags in prop::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let (g, _, _) = build_site(users, items, &friendships, &tags);
        let mut merged = g.clone();
        merged.merge(&g);
        prop_assert_eq!(&merged, &g);
    }

    /// The sub-graph induced by all links contains every non-isolated node
    /// and every link of the original graph.
    #[test]
    fn induced_by_all_links_preserves_links(
        users in 1usize..8,
        items in 1usize..8,
        friendships in prop::collection::vec((0usize..8, 0usize..8), 0..20),
        tags in prop::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let (g, _, _) = build_site(users, items, &friendships, &tags);
        let all: Vec<_> = g.links().map(|l| l.id).collect();
        let sub = g.induced_by_links(all);
        prop_assert_eq!(sub.link_count(), g.link_count());
        for l in sub.links() {
            prop_assert!(sub.has_node(l.src));
            prop_assert!(sub.has_node(l.tgt));
        }
    }

    /// Multi-valued attribute superset semantics: a value built from a
    /// superset list always satisfies conditions built from any subset.
    #[test]
    fn value_superset_satisfaction(
        vals in prop::collection::btree_set("[a-z]{1,6}", 1..8),
        take in 0usize..8,
    ) {
        let all: Vec<String> = vals.iter().cloned().collect();
        let sub: Vec<String> = all.iter().take(take % (all.len() + 1)).cloned().collect();
        let have = Value::multi(all.clone());
        let need = Value::multi(sub);
        prop_assert!(have.is_superset_of(&need));
    }

    /// Degree accounting: the sum of all node degrees equals twice the link
    /// count.
    #[test]
    fn handshake_lemma(
        users in 1usize..10,
        items in 1usize..10,
        friendships in prop::collection::vec((0usize..10, 0usize..10), 0..30),
        tags in prop::collection::vec((0usize..10, 0usize..10), 0..30),
    ) {
        let (g, _, _) = build_site(users, items, &friendships, &tags);
        let degree_sum: usize = g.nodes().map(|n| g.degree(n.id)).sum();
        prop_assert_eq!(degree_sum, 2 * g.link_count());
    }
}

#[test]
fn consolidation_keeps_attribute_values_from_both_sides() {
    let mut g = SocialGraph::new();
    let mut b = GraphBuilder::new();
    let u = b.add_user_with_interests("John", &["baseball"]);
    g.merge(b.graph());
    let mut other = SocialGraph::new();
    other.add_node(
        socialscope_graph::Node::new(u, ["user", "traveler"]).with_attr("interests", "museums"),
    );
    g.merge(&other);
    let n = g.node(u).unwrap();
    assert!(n.has_type("traveler"));
    assert_eq!(n.attrs.get("interests").unwrap().len(), 2);
}
