//! Overlay views of a social content graph.
//!
//! The paper (§4) notes it is "sometimes convenient to view the social
//! content graph as an overlay of sub-graphs": the *activity graph* (users'
//! activities on items), the *network graph* (social connections), and the
//! *topical graph* (links from users or items to derived topics/groups).

use crate::attrs::HasAttrs;
use crate::graph::SocialGraph;
use crate::link::Link;
use crate::types;
use serde::{Deserialize, Serialize};

/// Which overlay of the social content graph to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverlayKind {
    /// Users' activities on items (`act` links: tag, review, click, visit, …).
    Activity,
    /// Social connections between users (`connect` links: friend, contact, …).
    Network,
    /// Links to derived semantic groups or topics (`belong` / `match`).
    Topical,
}

fn link_in_overlay(link: &Link, kind: OverlayKind) -> bool {
    let matches_category = |pred: fn(&str) -> bool| link.type_values().iter().any(|t| pred(t));
    match kind {
        OverlayKind::Activity => matches_category(types::is_activity_type),
        OverlayKind::Network => matches_category(types::is_connection_type),
        OverlayKind::Topical => matches_category(types::is_topical_type),
    }
}

/// Extract an overlay view: the sub-graph induced by the links of the given
/// category.
pub fn overlay(graph: &SocialGraph, kind: OverlayKind) -> SocialGraph {
    let ids = graph.links().filter(|l| link_in_overlay(l, kind)).map(|l| l.id).collect::<Vec<_>>();
    graph.induced_by_links(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn site() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let denver = b.add_item("Denver", &["city"]);
        let topic = b.add_topic("baseball");
        b.befriend(john, mary);
        b.tag(john, denver, &["rockies"]);
        b.visit(mary, denver);
        b.belongs_to(denver, topic);
        b.matches(john, mary, 0.6);
        b.build()
    }

    #[test]
    fn activity_overlay_keeps_only_activities() {
        let g = site();
        let act = overlay(&g, OverlayKind::Activity);
        assert_eq!(act.link_count(), 2);
        assert!(act.links().all(|l| l.has_type("act")));
    }

    #[test]
    fn network_overlay_keeps_connections() {
        let g = site();
        let net = overlay(&g, OverlayKind::Network);
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.node_count(), 2);
        assert!(net.links().all(|l| l.has_type("friend")));
    }

    #[test]
    fn topical_overlay_keeps_belong_and_match() {
        let g = site();
        let top = overlay(&g, OverlayKind::Topical);
        assert_eq!(top.link_count(), 2);
    }

    #[test]
    fn overlays_partition_this_site_links() {
        let g = site();
        let total = overlay(&g, OverlayKind::Activity).link_count()
            + overlay(&g, OverlayKind::Network).link_count()
            + overlay(&g, OverlayKind::Topical).link_count();
        assert_eq!(total, g.link_count());
    }
}
