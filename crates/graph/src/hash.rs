//! A small, fast, non-cryptographic hasher for id-keyed maps.
//!
//! The graph stores are keyed by dense integer ids ([`crate::NodeId`],
//! [`crate::LinkId`]); SipHash (the standard-library default) is needlessly
//! slow for such keys. This is the classic "Fx" multiply-xor hash used by
//! rustc, implemented locally to avoid an extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher (multiply-xor).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_for_same_input() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("denver"), hash_one("denver"));
    }

    #[test]
    fn different_inputs_usually_differ() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
    }
}
