//! Error type for graph operations.

use crate::id::{LinkId, NodeId};
use std::fmt;

/// Errors raised by social content graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A link referenced a node that is not present in the graph.
    MissingNode(NodeId),
    /// An operation referenced a link that is not present in the graph.
    MissingLink(LinkId),
    /// A node with the same id but conflicting identity was inserted.
    ConflictingLink {
        /// Id of the conflicting link.
        id: LinkId,
        /// Explanation of the conflict.
        reason: String,
    },
    /// An operation received graphs that do not originate from the same
    /// social content site (disjoint id spaces were expected to be shared).
    IncompatibleGraphs(String),
    /// A generic invariant violation.
    Invariant(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingNode(id) => write!(f, "node {id} is not present in the graph"),
            GraphError::MissingLink(id) => write!(f, "link {id} is not present in the graph"),
            GraphError::ConflictingLink { id, reason } => {
                write!(f, "conflicting link {id}: {reason}")
            }
            GraphError::IncompatibleGraphs(msg) => write!(f, "incompatible graphs: {msg}"),
            GraphError::Invariant(msg) => write!(f, "graph invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GraphError::MissingNode(NodeId(3)).to_string().contains("n3"));
        assert!(GraphError::MissingLink(LinkId(4)).to_string().contains("l4"));
        let e = GraphError::ConflictingLink { id: LinkId(1), reason: "endpoints differ".into() };
        assert!(e.to_string().contains("endpoints differ"));
    }
}
