//! Attribute values.
//!
//! SocialScope adopts a flexible, schema-less typing system where an
//! attribute may hold *multiple* values (paper §4): `type = "user, traveler"`,
//! `tags = "rockies baseball"`. A [`Value`] is therefore an ordered multi-set
//! of [`Scalar`]s; satisfaction of a structural condition `att = v1,…,vk`
//! checks that the node's (or link's) value set is a *superset* of
//! `{v1,…,vk}` (paper Def. 1).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single scalar attribute value.
///
/// Floats are wrapped with total ordering (`f64::total_cmp`) so scalars can
/// live in ordered sets and be compared deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Scalar {
    /// A string value (the most common case: names, tags, keywords).
    Str(String),
    /// A signed integer value.
    Int(i64),
    /// A floating point value (scores, ratings, similarities).
    Float(f64),
    /// A boolean flag.
    Bool(bool),
}

impl Scalar {
    /// String form used for keyword matching and display.
    pub fn as_text(&self) -> String {
        match self {
            Scalar::Str(s) => s.clone(),
            Scalar::Int(i) => i.to_string(),
            Scalar::Float(f) => format!("{f}"),
            Scalar::Bool(b) => b.to_string(),
        }
    }

    /// Numeric view of the scalar, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(i) => Some(*i as f64),
            Scalar::Float(f) => Some(*f),
            Scalar::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Scalar::Str(s) => s.parse::<f64>().ok(),
        }
    }

    /// String view of the scalar, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    fn discriminant(&self) -> u8 {
        match self {
            Scalar::Str(_) => 0,
            Scalar::Int(_) => 1,
            Scalar::Float(_) => 2,
            Scalar::Bool(_) => 3,
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Scalar::Str(a), Scalar::Str(b)) => a == b,
            (Scalar::Int(a), Scalar::Int(b)) => a == b,
            (Scalar::Bool(a), Scalar::Bool(b)) => a == b,
            (Scalar::Float(a), Scalar::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            // Cross-type numeric equality: `Int(3)` equals `Float(3.0)`.
            (Scalar::Int(a), Scalar::Float(b)) | (Scalar::Float(b), Scalar::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            _ => false,
        }
    }
}

impl Eq for Scalar {}

impl PartialOrd for Scalar {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scalar {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Scalar::Str(a), Scalar::Str(b)) => a.cmp(b),
            (Scalar::Int(a), Scalar::Int(b)) => a.cmp(b),
            (Scalar::Bool(a), Scalar::Bool(b)) => a.cmp(b),
            (Scalar::Float(a), Scalar::Float(b)) => a.total_cmp(b),
            (Scalar::Int(a), Scalar::Float(b)) => (*a as f64).total_cmp(b),
            (Scalar::Float(a), Scalar::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.discriminant().cmp(&other.discriminant()),
        }
    }
}

impl Hash for Scalar {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Scalar::Str(s) => {
                0u8.hash(state);
                s.hash(state);
            }
            Scalar::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Scalar::Float(f) => {
                // Hash via bits of the canonical representation so that
                // Int(3) and Float(3.0) — which compare equal — hash equal.
                if f.fract() == 0.0 && f.is_finite() && f.abs() < i64::MAX as f64 {
                    1u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Scalar::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_text())
    }
}

impl From<&str> for Scalar {
    fn from(s: &str) -> Self {
        Scalar::Str(s.to_string())
    }
}
impl From<String> for Scalar {
    fn from(s: String) -> Self {
        Scalar::Str(s)
    }
}
impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}
impl From<u64> for Scalar {
    fn from(v: u64) -> Self {
        Scalar::Int(v as i64)
    }
}
impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::Int(v as i64)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}
impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

/// A multi-valued attribute value: an ordered list of scalars with set
/// semantics for condition satisfaction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Value {
    values: Vec<Scalar>,
}

impl Value {
    /// The empty value (no scalars).
    pub fn empty() -> Self {
        Value { values: Vec::new() }
    }

    /// A single-scalar value.
    pub fn single(s: impl Into<Scalar>) -> Self {
        Value { values: vec![s.into()] }
    }

    /// A multi-scalar value built from an iterator.
    pub fn multi<I, S>(vals: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Scalar>,
    {
        Value { values: vals.into_iter().map(Into::into).collect() }
    }

    /// Parse a comma/whitespace separated string into a multi-valued string
    /// value, mirroring the paper's notation `type=‘user, traveler’`.
    pub fn parse_list(s: &str) -> Self {
        Value {
            values: s
                .split(|c: char| c == ',' || c.is_whitespace())
                .filter(|t| !t.is_empty())
                .map(|t| Scalar::Str(t.to_string()))
                .collect(),
        }
    }

    /// Number of scalars held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no scalars are held.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate the scalars.
    pub fn iter(&self) -> impl Iterator<Item = &Scalar> {
        self.values.iter()
    }

    /// Append a scalar (duplicates are kept out: a value behaves as a set).
    pub fn push(&mut self, s: impl Into<Scalar>) {
        let s = s.into();
        if !self.values.contains(&s) {
            self.values.push(s);
        }
    }

    /// Merge another value into this one (set union, order-preserving).
    pub fn merge(&mut self, other: &Value) {
        for s in &other.values {
            if !self.values.contains(s) {
                self.values.push(s.clone());
            }
        }
    }

    /// Whether this value contains the given scalar.
    pub fn contains(&self, s: &Scalar) -> bool {
        self.values.contains(s)
    }

    /// Superset check used by structural-condition satisfaction (Def. 1):
    /// every scalar of `required` must appear in this value.
    pub fn is_superset_of(&self, required: &Value) -> bool {
        required.values.iter().all(|s| self.values.contains(s))
    }

    /// First scalar, if any.
    pub fn first(&self) -> Option<&Scalar> {
        self.values.first()
    }

    /// First scalar as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        self.values.first().and_then(Scalar::as_str)
    }

    /// First scalar as a float, if convertible.
    pub fn as_f64(&self) -> Option<f64> {
        self.values.first().and_then(Scalar::as_f64)
    }

    /// All scalars rendered as a whitespace-joined text (for keyword search).
    pub fn text(&self) -> String {
        self.values.iter().map(Scalar::as_text).collect::<Vec<_>>().join(" ")
    }

    /// All string scalars, lowercased, as owned tokens.
    pub fn string_tokens(&self) -> Vec<String> {
        self.values.iter().filter_map(Scalar::as_str).map(|s| s.to_lowercase()).collect()
    }

    /// Consume into the underlying scalar list.
    pub fn into_scalars(self) -> Vec<Scalar> {
        self.values
    }

    /// Borrow the underlying scalar list.
    pub fn scalars(&self) -> &[Scalar] {
        &self.values
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(Scalar::as_text).collect();
        write!(f, "{}", parts.join(", "))
    }
}

impl<T: Into<Scalar>> From<T> for Value {
    fn from(v: T) -> Self {
        Value::single(v)
    }
}

impl From<Vec<&str>> for Value {
    fn from(v: Vec<&str>) -> Self {
        Value::multi(v)
    }
}

impl From<&[&str]> for Value {
    fn from(v: &[&str]) -> Self {
        Value::multi(v.iter().copied())
    }
}

impl FromIterator<Scalar> for Value {
    fn from_iter<I: IntoIterator<Item = Scalar>>(iter: I) -> Self {
        let mut v = Value::empty();
        for s in iter {
            v.push(s);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_numeric_cross_type_equality() {
        assert_eq!(Scalar::Int(3), Scalar::Float(3.0));
        assert_ne!(Scalar::Int(3), Scalar::Float(3.5));
        assert_ne!(Scalar::Str("3".into()), Scalar::Int(3));
    }

    #[test]
    fn scalar_ordering_is_total() {
        let mut v =
            vec![Scalar::from(2.5), Scalar::from(1i64), Scalar::from("abc"), Scalar::from(true)];
        v.sort();
        // Sorting must not panic and must be deterministic.
        let v2 = {
            let mut w = v.clone();
            w.sort();
            w
        };
        assert_eq!(v, v2);
    }

    #[test]
    fn parse_list_splits_commas_and_spaces() {
        let v = Value::parse_list("user, traveler");
        assert_eq!(v.len(), 2);
        assert!(v.contains(&Scalar::from("user")));
        assert!(v.contains(&Scalar::from("traveler")));

        let tags = Value::parse_list("rockies baseball");
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn superset_semantics() {
        let have = Value::multi(["user", "traveler", "expert"]);
        let need = Value::multi(["user", "expert"]);
        assert!(have.is_superset_of(&need));
        assert!(!need.is_superset_of(&have));
        assert!(have.is_superset_of(&Value::empty()));
    }

    #[test]
    fn push_deduplicates() {
        let mut v = Value::empty();
        v.push("a");
        v.push("a");
        v.push("b");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn merge_unions_values() {
        let mut a = Value::multi(["x", "y"]);
        let b = Value::multi(["y", "z"]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn text_and_tokens() {
        let v = Value::multi(["Rockies", "Baseball"]);
        assert_eq!(v.text(), "Rockies Baseball");
        assert_eq!(v.string_tokens(), vec!["rockies", "baseball"]);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::single(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::single(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::single("0.25").as_f64(), Some(0.25));
        assert_eq!(Value::single("abc").as_f64(), None);
    }
}
