//! # socialscope-graph
//!
//! The social content graph substrate of [SocialScope] (CIDR 2009).
//!
//! A *social content graph* (paper §4) is a logical graph whose nodes
//! represent physical and abstract entities (users, items, topics, groups)
//! and whose links represent connections and activities between entities
//! (friendship, tagging, visiting, reviewing, topic membership, derived
//! similarity). Nodes and links carry *structural attributes*: schema-less,
//! multi-valued attribute/value pairs with a mandatory `type` attribute that
//! may itself hold several values (e.g. `type = "user, traveler"`).
//!
//! This crate provides:
//!
//! * [`Scalar`], [`Value`], [`AttrMap`] — the multi-valued attribute model;
//! * [`Node`], [`Link`], [`NodeId`], [`LinkId`] — graph elements;
//! * [`SocialGraph`] — an in-memory graph with id-keyed stores and
//!   adjacency indexes;
//! * [`GraphBuilder`] — a fluent builder for constructing sites
//!   programmatically (users, items, tagging activity, friendships, …);
//! * [`TypeCatalog`] and the basic type constants of the paper's evolving
//!   catalog (`user`, `item`, `topic`, `group`, `connect`, `act`, `match`,
//!   `belong`);
//! * [`overlay`] views — the activity, network and topical sub-graphs the
//!   paper describes as overlays of the full graph;
//! * [`GraphStats`] — degree/type/clustering statistics used by the workload
//!   generator and the experiment harness.
//!
//! The graph model here is purely logical; physical concerns (inverted
//! indexes, clustering, synchronization) live in `socialscope-content`.
//!
//! [SocialScope]: https://www.cidrdb.org/cidr2009/
//!
//! ## Example
//!
//! ```
//! use socialscope_graph::{GraphBuilder, HasAttrs, types};
//!
//! let mut b = GraphBuilder::new();
//! let john = b.add_user("John");
//! let denver = b.add_item("Denver", &["city"]);
//! b.tag(john, denver, &["rockies", "baseball"]);
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.link_count(), 1);
//! let link = g.out_links(john).next().unwrap();
//! assert!(link.has_type(types::LINK_TAG));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attrs;
pub mod builder;
pub mod error;
pub mod graph;
pub mod hash;
pub mod id;
pub mod link;
pub mod node;
pub mod stats;
pub mod types;
pub mod value;
pub mod view;

pub use attrs::{AttrMap, HasAttrs};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::SocialGraph;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use id::{
    is_derived_link_id, next_derived_link_id, IdGen, LinkId, NodeId, DERIVED_LINK_ID_BASE,
};
pub use link::{Direction, Link};
pub use node::Node;
pub use stats::GraphStats;
pub use types::{TypeCatalog, TYPE_ATTR};
pub use value::{Scalar, Value};
pub use view::{overlay, OverlayKind};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
