//! Descriptive statistics of social content graphs.
//!
//! Used by the workload generator to validate that synthetic sites have the
//! degree skew and small-world structure the experiments assume, and by the
//! experiment harness to report the shape of generated data.

use crate::attrs::HasAttrs;
use crate::graph::SocialGraph;
use crate::hash::FxHashMap;
use crate::id::NodeId;
use crate::types;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics of a social content graph.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GraphStats {
    /// Total number of nodes.
    pub nodes: usize,
    /// Total number of links.
    pub links: usize,
    /// Node counts per type value.
    pub node_type_histogram: BTreeMap<String, usize>,
    /// Link counts per type value.
    pub link_type_histogram: BTreeMap<String, usize>,
    /// Average total degree over all nodes.
    pub avg_degree: f64,
    /// Maximum total degree over all nodes.
    pub max_degree: usize,
    /// Average local clustering coefficient of the friendship network
    /// (undirected, over `connect` links).
    pub network_clustering_coefficient: f64,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn compute(graph: &SocialGraph) -> Self {
        let mut node_hist: BTreeMap<String, usize> = BTreeMap::new();
        for n in graph.nodes() {
            for t in n.type_values() {
                *node_hist.entry(t).or_default() += 1;
            }
        }
        let mut link_hist: BTreeMap<String, usize> = BTreeMap::new();
        for l in graph.links() {
            for t in l.type_values() {
                *link_hist.entry(t).or_default() += 1;
            }
        }
        let degrees: Vec<usize> = graph.nodes().map(|n| graph.degree(n.id)).collect();
        let avg_degree = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
        };
        let max_degree = degrees.iter().copied().max().unwrap_or(0);

        GraphStats {
            nodes: graph.node_count(),
            links: graph.link_count(),
            node_type_histogram: node_hist,
            link_type_histogram: link_hist,
            avg_degree,
            max_degree,
            network_clustering_coefficient: network_clustering_coefficient(graph),
        }
    }
}

/// Average local clustering coefficient of the (undirected) connection
/// network — the classic small-world statistic of Watts & Strogatz, which the
/// paper cites as the model of the social graphs underlying these sites.
pub fn network_clustering_coefficient(graph: &SocialGraph) -> f64 {
    // Undirected adjacency over connection links.
    let mut adj: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for l in graph.links() {
        if l.type_values().iter().any(|t| types::is_connection_type(t)) {
            adj.entry(l.src).or_default().push(l.tgt);
            adj.entry(l.tgt).or_default().push(l.src);
        }
    }
    if adj.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for (node, neigh) in &adj {
        let mut uniq: Vec<NodeId> = neigh.clone();
        uniq.sort_unstable();
        uniq.dedup();
        uniq.retain(|n| n != node);
        let k = uniq.len();
        if k < 2 {
            continue;
        }
        let mut closed = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if adj.get(&uniq[i]).is_some_and(|ns| ns.contains(&uniq[j])) {
                    closed += 1;
                }
            }
        }
        total += 2.0 * closed as f64 / (k as f64 * (k as f64 - 1.0));
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Degree distribution of the graph: `degree -> number of nodes`.
pub fn degree_distribution(graph: &SocialGraph) -> BTreeMap<usize, usize> {
    let mut dist = BTreeMap::new();
    for n in graph.nodes() {
        *dist.entry(graph.degree(n.id)).or_default() += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_site() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_user("a");
        let bb = b.add_user("b");
        let c = b.add_user("c");
        let d = b.add_user("d");
        let item = b.add_item("x", &["city"]);
        b.befriend(a, bb);
        b.befriend(bb, c);
        b.befriend(a, c);
        b.befriend(c, d);
        b.tag(a, item, &["t"]);
        b.build()
    }

    #[test]
    fn histograms_and_degrees() {
        let s = GraphStats::compute(&triangle_site());
        assert_eq!(s.nodes, 5);
        assert_eq!(s.links, 5);
        assert_eq!(s.node_type_histogram["user"], 4);
        assert_eq!(s.node_type_histogram["item"], 1);
        assert_eq!(s.link_type_histogram["friend"], 4);
        assert!(s.avg_degree > 0.0);
        assert!(s.max_degree >= 3);
    }

    #[test]
    fn clustering_coefficient_of_triangle_plus_tail() {
        let g = triangle_site();
        let cc = network_clustering_coefficient(&g);
        // a and b sit on a closed triangle (cc = 1); c has 3 neighbors with
        // 1 closed pair (cc = 1/3); d has a single neighbor (not counted).
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 3.0;
        assert!((cc - expected).abs() < 1e-9, "cc = {cc}");
    }

    #[test]
    fn empty_graph_has_zero_clustering() {
        assert_eq!(network_clustering_coefficient(&SocialGraph::new()), 0.0);
        let s = GraphStats::compute(&SocialGraph::new());
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn degree_distribution_sums_to_node_count() {
        let g = triangle_site();
        let dist = degree_distribution(&g);
        let total: usize = dist.values().sum();
        assert_eq!(total, g.node_count());
    }
}
