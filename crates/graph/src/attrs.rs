//! Structural attributes: ordered attribute → multi-value maps shared by
//! nodes and links, plus the [`HasAttrs`] trait through which the algebra
//! treats both uniformly.

use crate::value::{Scalar, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered map from attribute name to (multi-)value.
///
/// A `BTreeMap` keeps iteration deterministic, which matters both for
/// reproducible experiments and for stable test expectations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AttrMap {
    map: BTreeMap<String, Value>,
}

impl AttrMap {
    /// An empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fetch an attribute's value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }

    /// Fetch an attribute's value mutably, creating it empty when absent.
    pub fn entry(&mut self, name: &str) -> &mut Value {
        self.map.entry(name.to_string()).or_default()
    }

    /// Whether an attribute is present.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Set (replace) an attribute's value.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.map.insert(name.into(), value.into());
    }

    /// Add a scalar to a (possibly absent) attribute, preserving existing
    /// values (set semantics).
    pub fn add(&mut self, name: impl Into<String>, scalar: impl Into<Scalar>) {
        self.map.entry(name.into()).or_default().push(scalar);
    }

    /// Remove an attribute, returning its value when present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.map.remove(name)
    }

    /// Iterate `(name, value)` pairs in attribute-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Merge another attribute map into this one: values of shared
    /// attributes are unioned, new attributes are inserted. This is the
    /// consolidation rule used when set operators meet the same id twice
    /// (paper Def. 3).
    pub fn merge(&mut self, other: &AttrMap) {
        for (k, v) in &other.map {
            match self.map.get_mut(k) {
                Some(existing) => existing.merge(v),
                None => {
                    self.map.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Superset-semantics satisfaction of a single structural condition
    /// `att = v1,…,vk` (paper §5.1): the stored value set for `att` must be
    /// a superset of `{v1,…,vk}`.
    pub fn satisfies_equals(&self, attr: &str, required: &Value) -> bool {
        match self.map.get(attr) {
            Some(have) => have.is_superset_of(required),
            None => false,
        }
    }

    /// Full text of all attribute values (whitespace joined), used by default
    /// keyword scoring functions.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for (i, (_, v)) in self.map.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&v.text());
        }
        out
    }

    /// Lowercased tokens of every string-valued scalar across all attributes.
    pub fn all_tokens(&self) -> Vec<String> {
        let mut toks = Vec::new();
        for v in self.map.values() {
            for s in v.iter() {
                if let Some(text) = s.as_str() {
                    for t in text.split_whitespace() {
                        toks.push(t.to_lowercase());
                    }
                }
            }
        }
        toks
    }

    /// Convenience: get the first scalar of an attribute as a string.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Convenience: get the first scalar of an attribute as a float.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }
}

impl fmt::Display for AttrMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for AttrMap {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = AttrMap::new();
        for (k, v) in iter {
            m.set(k, v);
        }
        m
    }
}

/// Uniform access to the attributes and score of a graph element. Both
/// [`crate::Node`] and [`crate::Link`] implement this, which lets the algebra
/// express conditions and scoring once for both selection operators.
pub trait HasAttrs {
    /// Borrow the structural attributes.
    fn attrs(&self) -> &AttrMap;
    /// Borrow the structural attributes mutably.
    fn attrs_mut(&mut self) -> &mut AttrMap;
    /// Relevance score attached by a scoring function, if any.
    fn score(&self) -> Option<f64>;
    /// Attach a relevance score.
    fn set_score(&mut self, score: f64);

    /// The values of the mandatory `type` attribute, lowercased.
    fn type_values(&self) -> Vec<String> {
        self.attrs().get(crate::types::TYPE_ATTR).map(|v| v.string_tokens()).unwrap_or_default()
    }

    /// Whether the element carries the given type value.
    fn has_type(&self, ty: &str) -> bool {
        self.type_values().iter().any(|t| t == &ty.to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut a = AttrMap::new();
        a.set("name", "Denver");
        a.set("rating", 0.8);
        assert_eq!(a.get_str("name"), Some("Denver"));
        assert_eq!(a.get_f64("rating"), Some(0.8));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn satisfies_equals_superset() {
        let mut a = AttrMap::new();
        a.set("type", Value::multi(["item", "city"]));
        assert!(a.satisfies_equals("type", &Value::single("city")));
        assert!(a.satisfies_equals("type", &Value::multi(["item", "city"])));
        assert!(!a.satisfies_equals("type", &Value::single("user")));
        assert!(!a.satisfies_equals("missing", &Value::single("x")));
    }

    #[test]
    fn merge_unions_attribute_values() {
        let mut a = AttrMap::new();
        a.set("tags", Value::multi(["a", "b"]));
        a.set("name", "x");
        let mut b = AttrMap::new();
        b.set("tags", Value::multi(["b", "c"]));
        b.set("extra", 1i64);
        a.merge(&b);
        assert_eq!(a.get("tags").unwrap().len(), 3);
        assert_eq!(a.get_str("name"), Some("x"));
        assert!(a.contains("extra"));
    }

    #[test]
    fn full_text_and_tokens() {
        let mut a = AttrMap::new();
        a.set("name", "Coors Field");
        a.set("keywords", Value::multi(["baseball", "stadium"]));
        let text = a.full_text();
        assert!(text.contains("Coors Field"));
        assert!(text.contains("baseball"));
        let toks = a.all_tokens();
        assert!(toks.contains(&"coors".to_string()));
        assert!(toks.contains(&"stadium".to_string()));
    }

    #[test]
    fn from_iterator_builds_map() {
        let a: AttrMap = [("name", "John"), ("type", "user")].into_iter().collect();
        assert_eq!(a.get_str("name"), Some("John"));
        assert_eq!(a.get_str("type"), Some("user"));
    }

    #[test]
    fn add_appends_scalars() {
        let mut a = AttrMap::new();
        a.add("tags", "x");
        a.add("tags", "y");
        a.add("tags", "x");
        assert_eq!(a.get("tags").unwrap().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let mut a = AttrMap::new();
        a.set("id", 1i64);
        a.set("type", Value::multi(["user", "traveler"]));
        let s = a.to_string();
        assert!(s.contains("type=user, traveler"));
    }
}
