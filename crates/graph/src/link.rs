//! Links of the social content graph, and link directions.

use crate::attrs::{AttrMap, HasAttrs};
use crate::id::{LinkId, NodeId};
use crate::types::TYPE_ATTR;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which endpoint of a link a directional condition refers to
/// (`d = src | tgt`, paper §5.3–5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The source endpoint of the link.
    Src,
    /// The target endpoint of the link.
    Tgt,
}

impl Direction {
    /// The opposite direction (written `δ d̄` in the paper).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Src => Direction::Tgt,
            Direction::Tgt => Direction::Src,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Src => write!(f, "src"),
            Direction::Tgt => write!(f, "tgt"),
        }
    }
}

/// A link: a connection or activity between two entities (paper §4), e.g.
/// a friendship, a tagging action with its tags and date, a visit, a derived
/// `match` similarity link, or a `belong` topic-membership link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Unique link identifier within the social content site.
    pub id: LinkId,
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub tgt: NodeId,
    /// Structural attributes (always include `type`).
    pub attrs: AttrMap,
    /// Relevance score attached by a scoring function, if any.
    pub score: Option<f64>,
}

impl Link {
    /// Create a link with the given id, endpoints and type values.
    pub fn new<I, S>(id: LinkId, src: NodeId, tgt: NodeId, types: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut attrs = AttrMap::new();
        attrs.set(TYPE_ATTR, Value::multi(types.into_iter().map(|s| s.into().to_lowercase())));
        Link { id, src, tgt, attrs, score: None }
    }

    /// Builder-style attribute setter.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.set(name, value);
        self
    }

    /// Builder-style score setter.
    pub fn with_score(mut self, score: f64) -> Self {
        self.score = Some(score);
        self
    }

    /// The endpoint selected by a direction: `endpoint(Src) = src`,
    /// `endpoint(Tgt) = tgt`. This is the `ℓ.δd` notation of the paper.
    #[inline]
    pub fn endpoint(&self, d: Direction) -> NodeId {
        match d {
            Direction::Src => self.src,
            Direction::Tgt => self.tgt,
        }
    }

    /// The endpoint opposite to the given direction (`ℓ.δd̄`).
    #[inline]
    pub fn other_endpoint(&self, d: Direction) -> NodeId {
        self.endpoint(d.opposite())
    }

    /// Whether the link touches the given node at either endpoint.
    pub fn touches(&self, node: NodeId) -> bool {
        self.src == node || self.tgt == node
    }

    /// Merge another link (same id) into this one: attributes are unioned and
    /// the higher score wins. Endpoints must agree.
    pub fn consolidate(&mut self, other: &Link) {
        debug_assert_eq!(self.id, other.id, "consolidate requires matching ids");
        debug_assert_eq!(self.src, other.src);
        debug_assert_eq!(self.tgt, other.tgt);
        self.attrs.merge(&other.attrs);
        self.score = match (self.score, other.score) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl HasAttrs for Link {
    fn attrs(&self) -> &AttrMap {
        &self.attrs
    }
    fn attrs_mut(&mut self) -> &mut AttrMap {
        &mut self.attrs
    }
    fn score(&self) -> Option<f64> {
        self.score
    }
    fn set_score(&mut self, score: f64) {
        self.score = Some(score);
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}->{} {}", self.id, self.src, self.tgt, self.attrs)?;
        if let Some(s) = self.score {
            write!(f, " score={s:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposite() {
        assert_eq!(Direction::Src.opposite(), Direction::Tgt);
        assert_eq!(Direction::Tgt.opposite(), Direction::Src);
        assert_eq!(Direction::Src.to_string(), "src");
    }

    #[test]
    fn endpoints_by_direction() {
        let l = Link::new(LinkId(1), NodeId(10), NodeId(20), ["act", "tag"]);
        assert_eq!(l.endpoint(Direction::Src), NodeId(10));
        assert_eq!(l.endpoint(Direction::Tgt), NodeId(20));
        assert_eq!(l.other_endpoint(Direction::Src), NodeId(20));
        assert!(l.touches(NodeId(10)));
        assert!(!l.touches(NodeId(30)));
    }

    #[test]
    fn link_types_from_paper_example() {
        // l12 = {id=12; type='act, tag'; date='2008-8-2'; tags='rockies baseball'}
        let l = Link::new(LinkId(12), NodeId(1), NodeId(2), ["act", "tag"])
            .with_attr("date", "2008-8-2")
            .with_attr("tags", Value::parse_list("rockies baseball"));
        assert!(l.has_type("act"));
        assert!(l.has_type("tag"));
        assert_eq!(l.attrs.get("tags").unwrap().len(), 2);
    }

    #[test]
    fn consolidate_links() {
        let mut a = Link::new(LinkId(3), NodeId(1), NodeId(2), ["friend"]).with_score(0.2);
        let b = Link::new(LinkId(3), NodeId(1), NodeId(2), ["contact"]).with_score(0.9);
        a.consolidate(&b);
        assert!(a.has_type("friend"));
        assert!(a.has_type("contact"));
        assert_eq!(a.score, Some(0.9));
    }
}
