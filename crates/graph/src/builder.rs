//! Fluent construction of social content graphs.

use crate::graph::SocialGraph;
use crate::id::{IdGen, LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use crate::types;
use crate::value::Value;

/// A fluent builder for social content graphs: allocates ids, inserts nodes
/// and links, and offers domain helpers matching the kinds of entities and
/// activities the paper describes for Y!Travel-style sites (users, items,
/// topics, friendships, tagging, visiting, rating, reviewing, topic
/// membership).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    graph: SocialGraph,
    ids: IdGen,
}

impl GraphBuilder {
    /// A builder starting from an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder that extends an existing graph (ids continue after the
    /// maxima already present).
    pub fn extending(graph: SocialGraph) -> Self {
        let ids = graph.id_gen();
        GraphBuilder { graph, ids }
    }

    /// Finish building and return the graph.
    pub fn build(self) -> SocialGraph {
        self.graph
    }

    /// Peek at the graph built so far.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    // --- generic node/link insertion ---------------------------------------

    /// Add a node with explicit types and attributes.
    pub fn add_node_with<I, S>(&mut self, node_types: I, attrs: &[(&str, Value)]) -> NodeId
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let id = self.ids.node_id();
        let mut node = Node::new(id, node_types);
        for (k, v) in attrs {
            node.attrs.set(*k, v.clone());
        }
        self.graph.add_node(node);
        id
    }

    /// Add a link with explicit types and attributes between existing nodes.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added; the builder owns id
    /// allocation, so a missing endpoint is a programming error.
    pub fn add_link_with<I, S>(
        &mut self,
        src: NodeId,
        tgt: NodeId,
        link_types: I,
        attrs: &[(&str, Value)],
    ) -> LinkId
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let id = self.ids.link_id();
        let mut link = Link::new(id, src, tgt, link_types);
        for (k, v) in attrs {
            link.attrs.set(*k, v.clone());
        }
        self.graph.add_link(link).expect("builder endpoints must exist before linking");
        id
    }

    // --- domain helpers -----------------------------------------------------

    /// Add a user node with a name.
    pub fn add_user(&mut self, name: &str) -> NodeId {
        self.add_node_with([types::NODE_USER], &[("name", Value::single(name))])
    }

    /// Add a user node with a name and free-form interests.
    pub fn add_user_with_interests(&mut self, name: &str, interests: &[&str]) -> NodeId {
        self.add_node_with(
            [types::NODE_USER],
            &[
                ("name", Value::single(name)),
                ("interests", Value::multi(interests.iter().copied())),
            ],
        )
    }

    /// Add an item node with a name and extra sub-types (e.g. `city`,
    /// `destination`, `museum`).
    pub fn add_item(&mut self, name: &str, subtypes: &[&str]) -> NodeId {
        let mut tys: Vec<String> = vec![types::NODE_ITEM.to_string()];
        tys.extend(subtypes.iter().map(|s| s.to_string()));
        self.add_node_with(tys, &[("name", Value::single(name))])
    }

    /// Add an item node with a name, sub-types and descriptive keywords.
    pub fn add_item_with_keywords(
        &mut self,
        name: &str,
        subtypes: &[&str],
        keywords: &[&str],
    ) -> NodeId {
        let mut tys: Vec<String> = vec![types::NODE_ITEM.to_string()];
        tys.extend(subtypes.iter().map(|s| s.to_string()));
        self.add_node_with(
            tys,
            &[("name", Value::single(name)), ("keywords", Value::multi(keywords.iter().copied()))],
        )
    }

    /// Add a derived topic node.
    pub fn add_topic(&mut self, label: &str) -> NodeId {
        self.add_node_with([types::NODE_TOPIC], &[("label", Value::single(label))])
    }

    /// Add a group node.
    pub fn add_group(&mut self, label: &str) -> NodeId {
        self.add_node_with([types::NODE_GROUP], &[("label", Value::single(label))])
    }

    /// Connect two users with a friendship link.
    pub fn befriend(&mut self, a: NodeId, b: NodeId) -> LinkId {
        self.add_link_with(a, b, [types::LINK_CONNECT, types::LINK_FRIEND], &[])
    }

    /// Connect two users with a generic connection sub-type (e.g. `contact`).
    pub fn connect(&mut self, a: NodeId, b: NodeId, subtype: &str) -> LinkId {
        self.add_link_with(a, b, [types::LINK_CONNECT, subtype], &[])
    }

    /// Record a tagging activity: `user` tags `item` with the given tags.
    pub fn tag(&mut self, user: NodeId, item: NodeId, tags: &[&str]) -> LinkId {
        self.add_link_with(
            user,
            item,
            [types::LINK_ACT, types::LINK_TAG],
            &[("tags", Value::multi(tags.iter().copied()))],
        )
    }

    /// Record a visit activity.
    pub fn visit(&mut self, user: NodeId, item: NodeId) -> LinkId {
        self.add_link_with(user, item, [types::LINK_ACT, types::LINK_VISIT], &[])
    }

    /// Record a rating activity.
    pub fn rate(&mut self, user: NodeId, item: NodeId, rating: f64) -> LinkId {
        self.add_link_with(
            user,
            item,
            [types::LINK_ACT, types::LINK_RATING],
            &[("rating", Value::single(rating))],
        )
    }

    /// Record a review activity with free text.
    pub fn review(&mut self, user: NodeId, item: NodeId, text: &str) -> LinkId {
        self.add_link_with(
            user,
            item,
            [types::LINK_ACT, types::LINK_REVIEW],
            &[("text", Value::single(text))],
        )
    }

    /// Record a click/browse activity.
    pub fn click(&mut self, user: NodeId, item: NodeId) -> LinkId {
        self.add_link_with(user, item, [types::LINK_ACT, types::LINK_CLICK], &[])
    }

    /// Attach an entity to a topic or group with a `belong` link.
    pub fn belongs_to(&mut self, member: NodeId, topic: NodeId) -> LinkId {
        self.add_link_with(member, topic, [types::LINK_BELONG], &[])
    }

    /// Add a derived similarity (`match`) link with a similarity weight.
    pub fn matches(&mut self, a: NodeId, b: NodeId, sim: f64) -> LinkId {
        self.add_link_with(a, b, [types::LINK_MATCH], &[("sim", Value::single(sim))])
    }

    /// Add a semantic containment link between items (e.g. Fisherman's Wharf
    /// → San Francisco).
    pub fn contained_in(&mut self, inner: NodeId, outer: NodeId) -> LinkId {
        self.add_link_with(inner, outer, ["belong", "geo_containment"], &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::HasAttrs;

    #[test]
    fn build_small_travel_site() {
        let mut b = GraphBuilder::new();
        let john = b.add_user_with_interests("John", &["baseball"]);
        let mary = b.add_user("Mary");
        let denver = b.add_item_with_keywords("Denver", &["city"], &["skiing"]);
        let coors = b.add_item("Coors Field", &["destination", "stadium"]);
        b.befriend(john, mary);
        b.tag(john, denver, &["rockies", "baseball"]);
        b.visit(mary, coors);
        b.rate(mary, coors, 4.5);
        b.contained_in(coors, denver);
        let g = b.build();

        assert_eq!(g.node_count(), 4);
        assert_eq!(g.link_count(), 5);
        assert_eq!(g.nodes_of_type("user").count(), 2);
        assert_eq!(g.links_of_type("act").count(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn extending_continues_ids() {
        let mut b = GraphBuilder::new();
        let a = b.add_user("A");
        let g = b.build();
        let mut b2 = GraphBuilder::extending(g);
        let c = b2.add_user("C");
        assert!(c > a);
        let g2 = b2.build();
        assert_eq!(g2.node_count(), 2);
    }

    #[test]
    fn topics_and_groups() {
        let mut b = GraphBuilder::new();
        let item = b.add_item("Gettysburg", &["destination"]);
        let topic = b.add_topic("american history");
        let link = b.belongs_to(item, topic);
        let g = b.build();
        assert!(g.link(link).unwrap().has_type("belong"));
        assert!(g.node(topic).unwrap().has_type("topic"));
    }

    #[test]
    fn match_links_carry_similarity() {
        let mut b = GraphBuilder::new();
        let u = b.add_user("u");
        let v = b.add_user("v");
        let l = b.matches(u, v, 0.75);
        let g = b.build();
        assert_eq!(g.link(l).unwrap().attrs.get_f64("sim"), Some(0.75));
    }

    #[test]
    #[should_panic(expected = "endpoints must exist")]
    fn linking_unknown_node_panics() {
        let mut b = GraphBuilder::new();
        let u = b.add_user("u");
        b.befriend(u, NodeId(9999));
    }
}
