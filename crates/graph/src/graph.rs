//! The in-memory social content graph.

use crate::attrs::HasAttrs;
use crate::error::GraphError;
use crate::hash::{FxHashMap, FxHashSet};
use crate::id::{IdGen, LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An instance of a social content site: nodes, links, and adjacency
/// indexes (paper §4).
///
/// * Nodes and links are keyed by id; algebra operators match elements by id,
///   so every graph derived from the same site shares its id space.
/// * A graph may be a *null graph* — nodes without links — which is exactly
///   what Node Selection produces (paper Def. 1).
/// * Links always have both endpoints present: inserting a link whose
///   endpoints are missing is an error, and operators that select links
///   (Link Selection, Semi-Join, Composition) always output the sub-graph
///   *induced* by the selected links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SocialGraph {
    nodes: FxHashMap<NodeId, Node>,
    links: FxHashMap<LinkId, Link>,
    out: FxHashMap<NodeId, Vec<LinkId>>,
    inc: FxHashMap<NodeId, Vec<LinkId>>,
}

impl SocialGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// True when the graph has neither nodes nor links.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }

    /// True when the graph has nodes but no links (a *null graph*).
    pub fn is_null_graph(&self) -> bool {
        self.links.is_empty()
    }

    // --- nodes ------------------------------------------------------------

    /// Insert a node. If a node with the same id exists it is consolidated
    /// (attributes unioned, max score kept).
    pub fn add_node(&mut self, node: Node) {
        match self.nodes.get_mut(&node.id) {
            Some(existing) => existing.consolidate(&node),
            None => {
                self.nodes.insert(node.id, node);
            }
        }
    }

    /// Insert a node, replacing any existing node with the same id.
    pub fn replace_node(&mut self, node: Node) {
        self.nodes.insert(node.id, node);
    }

    /// Fetch a node by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Fetch a node mutably by id.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// Whether a node with the given id is present.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Iterate all nodes (unordered).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Iterate all nodes mutably (unordered).
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.nodes.values_mut()
    }

    /// All node ids, sorted (deterministic order for tests and experiments).
    pub fn node_ids_sorted(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// All node ids as a set.
    pub fn node_id_set(&self) -> FxHashSet<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Nodes carrying the given type value.
    pub fn nodes_of_type<'a>(&'a self, ty: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.nodes.values().filter(move |n| n.has_type(ty))
    }

    // --- links ------------------------------------------------------------

    /// Insert a link. Both endpoints must already be present. If a link with
    /// the same id exists with the same endpoints it is consolidated;
    /// differing endpoints are an error.
    pub fn add_link(&mut self, link: Link) -> Result<()> {
        if !self.nodes.contains_key(&link.src) {
            return Err(GraphError::MissingNode(link.src));
        }
        if !self.nodes.contains_key(&link.tgt) {
            return Err(GraphError::MissingNode(link.tgt));
        }
        match self.links.get_mut(&link.id) {
            Some(existing) => {
                if existing.src != link.src || existing.tgt != link.tgt {
                    return Err(GraphError::ConflictingLink {
                        id: link.id,
                        reason: "existing link has different endpoints".into(),
                    });
                }
                existing.consolidate(&link);
            }
            None => {
                self.out.entry(link.src).or_default().push(link.id);
                self.inc.entry(link.tgt).or_default().push(link.id);
                self.links.insert(link.id, link);
            }
        }
        Ok(())
    }

    /// Insert a link, inserting stub nodes for missing endpoints first.
    ///
    /// The stubs carry no attributes beyond an empty `type`; callers that
    /// know the real nodes should add them explicitly.
    pub fn add_link_with_endpoints(&mut self, link: Link, src: &Node, tgt: &Node) -> Result<()> {
        if !self.has_node(link.src) {
            self.add_node(src.clone());
        }
        if !self.has_node(link.tgt) {
            self.add_node(tgt.clone());
        }
        self.add_link(link)
    }

    /// Fetch a link by id.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(&id)
    }

    /// Fetch a link mutably by id.
    pub fn link_mut(&mut self, id: LinkId) -> Option<&mut Link> {
        self.links.get_mut(&id)
    }

    /// Whether a link with the given id is present.
    pub fn has_link(&self, id: LinkId) -> bool {
        self.links.contains_key(&id)
    }

    /// Iterate all links (unordered).
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.values()
    }

    /// Iterate all links mutably (unordered).
    pub fn links_mut(&mut self) -> impl Iterator<Item = &mut Link> {
        self.links.values_mut()
    }

    /// All link ids, sorted.
    pub fn link_ids_sorted(&self) -> Vec<LinkId> {
        let mut ids: Vec<LinkId> = self.links.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// All link ids as a set.
    pub fn link_id_set(&self) -> FxHashSet<LinkId> {
        self.links.keys().copied().collect()
    }

    /// Links carrying the given type value.
    pub fn links_of_type<'a>(&'a self, ty: &'a str) -> impl Iterator<Item = &'a Link> + 'a {
        self.links.values().filter(move |l| l.has_type(ty))
    }

    // --- adjacency ---------------------------------------------------------

    /// Outgoing links of a node.
    pub fn out_links(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.out.get(&node).into_iter().flatten().filter_map(|id| self.links.get(id))
    }

    /// Incoming links of a node.
    pub fn in_links(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.inc.get(&node).into_iter().flatten().filter_map(|id| self.links.get(id))
    }

    /// All links touching a node (outgoing then incoming).
    pub fn links_of(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.out_links(node).chain(self.in_links(node))
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out.get(&node).map_or(0, Vec::len)
    }

    /// In-degree of a node.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc.get(&node).map_or(0, Vec::len)
    }

    /// Total degree of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Neighbors reachable via outgoing links.
    pub fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_links(node).map(|l| l.tgt)
    }

    /// Neighbors reachable via incoming links.
    pub fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_links(node).map(|l| l.src)
    }

    /// All neighbors (both directions, may contain duplicates).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_neighbors(node).chain(self.in_neighbors(node))
    }

    /// Undirected neighbor set restricted to links of the given type.
    pub fn neighbors_via(&self, node: NodeId, link_type: &str) -> BTreeSet<NodeId> {
        let mut set = BTreeSet::new();
        for l in self.links_of(node) {
            if l.has_type(link_type) {
                set.insert(if l.src == node { l.tgt } else { l.src });
            }
        }
        set
    }

    /// Links between a specific source and target node.
    pub fn links_between(&self, src: NodeId, tgt: NodeId) -> impl Iterator<Item = &Link> {
        self.out_links(src).filter(move |l| l.tgt == tgt)
    }

    // --- removal -----------------------------------------------------------

    /// Remove a link.
    pub fn remove_link(&mut self, id: LinkId) -> Option<Link> {
        let link = self.links.remove(&id)?;
        if let Some(v) = self.out.get_mut(&link.src) {
            v.retain(|l| *l != id);
        }
        if let Some(v) = self.inc.get_mut(&link.tgt) {
            v.retain(|l| *l != id);
        }
        Some(link)
    }

    /// Remove a node and every link touching it.
    pub fn remove_node(&mut self, id: NodeId) -> Option<Node> {
        let node = self.nodes.remove(&id)?;
        let touching: Vec<LinkId> =
            self.links.values().filter(|l| l.touches(id)).map(|l| l.id).collect();
        for lid in touching {
            self.remove_link(lid);
        }
        self.out.remove(&id);
        self.inc.remove(&id);
        Some(node)
    }

    /// Keep only nodes satisfying the predicate; links touching removed nodes
    /// are removed too.
    pub fn retain_nodes(&mut self, mut pred: impl FnMut(&Node) -> bool) {
        let remove: Vec<NodeId> = self.nodes.values().filter(|n| !pred(n)).map(|n| n.id).collect();
        for id in remove {
            self.remove_node(id);
        }
    }

    /// Keep only links satisfying the predicate (nodes are untouched).
    pub fn retain_links(&mut self, mut pred: impl FnMut(&Link) -> bool) {
        let remove: Vec<LinkId> = self.links.values().filter(|l| !pred(l)).map(|l| l.id).collect();
        for id in remove {
            self.remove_link(id);
        }
    }

    // --- derived graphs -----------------------------------------------------

    /// The null graph containing only the given nodes of this graph
    /// (used by Node Selection).
    pub fn null_graph_of<I: IntoIterator<Item = NodeId>>(&self, ids: I) -> SocialGraph {
        let mut g = SocialGraph::new();
        for id in ids {
            if let Some(n) = self.nodes.get(&id) {
                g.add_node(n.clone());
            }
        }
        g
    }

    /// The sub-graph *induced by* the given links of this graph: the links
    /// plus their endpoint nodes (used by Link Selection and Semi-Join).
    pub fn induced_by_links<I: IntoIterator<Item = LinkId>>(&self, ids: I) -> SocialGraph {
        let mut g = SocialGraph::new();
        for id in ids {
            if let Some(l) = self.links.get(&id) {
                if let (Some(s), Some(t)) = (self.nodes.get(&l.src), self.nodes.get(&l.tgt)) {
                    g.add_node(s.clone());
                    g.add_node(t.clone());
                    g.add_link(l.clone()).expect("endpoints were just inserted");
                }
            }
        }
        g
    }

    /// The sub-graph of this graph induced by the given node set: those nodes
    /// plus every link with *both* endpoints in the set.
    pub fn induced_by_nodes<I: IntoIterator<Item = NodeId>>(&self, ids: I) -> SocialGraph {
        let keep: FxHashSet<NodeId> = ids.into_iter().collect();
        let mut g = SocialGraph::new();
        for id in &keep {
            if let Some(n) = self.nodes.get(id) {
                g.add_node(n.clone());
            }
        }
        for l in self.links.values() {
            if keep.contains(&l.src) && keep.contains(&l.tgt) {
                g.add_link(l.clone()).expect("endpoints inserted above");
            }
        }
        g
    }

    /// Merge another graph into this one, consolidating nodes and links that
    /// share ids.
    pub fn merge(&mut self, other: &SocialGraph) {
        for n in other.nodes() {
            self.add_node(n.clone());
        }
        for l in other.links() {
            // Endpoints are guaranteed present because other is well-formed
            // and we just merged all of its nodes.
            self.add_link(l.clone()).expect("merged endpoints present");
        }
    }

    /// Highest node and link ids present (0 when empty); used to seed
    /// [`IdGen::starting_after`] so derived links never collide.
    pub fn max_ids(&self) -> (u64, u64) {
        let n = self.nodes.keys().map(|i| i.0).max().unwrap_or(0);
        let l = self.links.keys().map(|i| i.0).max().unwrap_or(0);
        (n, l)
    }

    /// An [`IdGen`] that will never collide with ids already in this graph.
    pub fn id_gen(&self) -> IdGen {
        let (n, l) = self.max_ids();
        IdGen::starting_after(n, l)
    }

    /// Check internal invariants (every link's endpoints exist, adjacency
    /// indexes agree with the link store). Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<()> {
        for l in self.links.values() {
            if !self.nodes.contains_key(&l.src) {
                return Err(GraphError::MissingNode(l.src));
            }
            if !self.nodes.contains_key(&l.tgt) {
                return Err(GraphError::MissingNode(l.tgt));
            }
            let out_ok = self.out.get(&l.src).is_some_and(|v| v.contains(&l.id));
            let in_ok = self.inc.get(&l.tgt).is_some_and(|v| v.contains(&l.id));
            if !out_ok || !in_ok {
                return Err(GraphError::Invariant(format!(
                    "adjacency index out of sync for {}",
                    l.id
                )));
            }
        }
        for (nid, lids) in self.out.iter().chain(self.inc.iter()) {
            for lid in lids {
                if !self.links.contains_key(lid) {
                    return Err(GraphError::Invariant(format!(
                        "adjacency of {nid} references removed link {lid}"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl PartialEq for SocialGraph {
    /// Two graphs are equal when they contain the same node ids and link ids
    /// with equal attributes and scores (iteration order is irrelevant).
    fn eq(&self, other: &Self) -> bool {
        if self.node_count() != other.node_count() || self.link_count() != other.link_count() {
            return false;
        }
        self.nodes.iter().all(|(id, n)| other.nodes.get(id) == Some(n))
            && self.links.iter().all(|(id, l)| other.links.get(id) == Some(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn user(id: u64, name: &str) -> Node {
        Node::new(NodeId(id), ["user"]).with_attr("name", name)
    }
    fn item(id: u64, name: &str) -> Node {
        Node::new(NodeId(id), ["item"]).with_attr("name", name)
    }

    fn small_graph() -> SocialGraph {
        let mut g = SocialGraph::new();
        g.add_node(user(1, "John"));
        g.add_node(user(2, "Mary"));
        g.add_node(item(10, "Denver"));
        g.add_node(item(11, "Coors Field"));
        g.add_link(Link::new(LinkId(100), NodeId(1), NodeId(2), ["connect", "friend"])).unwrap();
        g.add_link(
            Link::new(LinkId(101), NodeId(1), NodeId(10), ["act", "tag"])
                .with_attr("tags", Value::parse_list("rockies baseball")),
        )
        .unwrap();
        g.add_link(Link::new(LinkId(102), NodeId(2), NodeId(11), ["act", "visit"])).unwrap();
        g
    }

    #[test]
    fn counts_and_lookup() {
        let g = small_graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.link_count(), 3);
        assert!(g.has_node(NodeId(1)));
        assert!(!g.has_node(NodeId(99)));
        assert_eq!(g.node(NodeId(10)).unwrap().name(), Some("Denver"));
        assert!(g.has_link(LinkId(101)));
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_link_requires_endpoints() {
        let mut g = SocialGraph::new();
        g.add_node(user(1, "John"));
        let err = g.add_link(Link::new(LinkId(1), NodeId(1), NodeId(2), ["friend"])).unwrap_err();
        assert_eq!(err, GraphError::MissingNode(NodeId(2)));
    }

    #[test]
    fn add_link_conflicting_endpoints_rejected() {
        let mut g = small_graph();
        let err = g.add_link(Link::new(LinkId(100), NodeId(2), NodeId(1), ["friend"])).unwrap_err();
        assert!(matches!(err, GraphError::ConflictingLink { .. }));
    }

    #[test]
    fn duplicate_node_is_consolidated() {
        let mut g = small_graph();
        g.add_node(Node::new(NodeId(1), ["traveler"]).with_attr("interests", "baseball"));
        let n = g.node(NodeId(1)).unwrap();
        assert!(n.has_type("user"));
        assert!(n.has_type("traveler"));
        assert_eq!(n.name(), Some("John"));
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = small_graph();
        assert_eq!(g.out_degree(NodeId(1)), 2);
        assert_eq!(g.in_degree(NodeId(1)), 0);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.in_degree(NodeId(10)), 1);
        let neigh: Vec<NodeId> = g.out_neighbors(NodeId(1)).collect();
        assert!(neigh.contains(&NodeId(2)));
        assert!(neigh.contains(&NodeId(10)));
    }

    #[test]
    fn neighbors_via_type() {
        let g = small_graph();
        let friends = g.neighbors_via(NodeId(1), "friend");
        assert_eq!(friends.len(), 1);
        assert!(friends.contains(&NodeId(2)));
        let tagged = g.neighbors_via(NodeId(1), "tag");
        assert!(tagged.contains(&NodeId(10)));
    }

    #[test]
    fn remove_node_cascades_to_links() {
        let mut g = small_graph();
        g.remove_node(NodeId(1));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 1); // only Mary -> Coors Field remains
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_link_keeps_nodes() {
        let mut g = small_graph();
        g.remove_link(LinkId(100));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn induced_by_links_brings_endpoints() {
        let g = small_graph();
        let sub = g.induced_by_links([LinkId(101)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.link_count(), 1);
        assert!(sub.has_node(NodeId(1)));
        assert!(sub.has_node(NodeId(10)));
    }

    #[test]
    fn induced_by_nodes_requires_both_endpoints() {
        let g = small_graph();
        let sub = g.induced_by_nodes([NodeId(1), NodeId(2)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.link_count(), 1); // only the friendship link survives
        let sub2 = g.induced_by_nodes([NodeId(1), NodeId(11)]);
        assert_eq!(sub2.link_count(), 0);
    }

    #[test]
    fn null_graph_of_nodes() {
        let g = small_graph();
        let null = g.null_graph_of([NodeId(1), NodeId(10), NodeId(999)]);
        assert_eq!(null.node_count(), 2);
        assert!(null.is_null_graph());
    }

    #[test]
    fn merge_consolidates() {
        let mut a = small_graph();
        let mut b = SocialGraph::new();
        b.add_node(user(1, "John").with_attr("interests", "baseball"));
        b.add_node(item(12, "B's Ballpark Museum"));
        b.add_link(Link::new(LinkId(200), NodeId(1), NodeId(12), ["act", "visit"])).unwrap();
        a.merge(&b);
        assert_eq!(a.node_count(), 5);
        assert_eq!(a.link_count(), 4);
        assert!(a.node(NodeId(1)).unwrap().attrs.contains("interests"));
        a.check_invariants().unwrap();
    }

    #[test]
    fn equality_ignores_order() {
        let a = small_graph();
        let b = small_graph();
        assert_eq!(a, b);
        let mut c = small_graph();
        c.remove_link(LinkId(102));
        assert_ne!(a, c);
    }

    #[test]
    fn max_ids_and_id_gen() {
        let g = small_graph();
        assert_eq!(g.max_ids(), (11, 102));
        let mut gen = g.id_gen();
        assert_eq!(gen.node_id(), NodeId(12));
        assert_eq!(gen.link_id(), LinkId(103));
    }

    #[test]
    fn retain_links_filters() {
        let mut g = small_graph();
        g.retain_links(|l| l.has_type("act"));
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn nodes_of_type_iterates() {
        let g = small_graph();
        assert_eq!(g.nodes_of_type("user").count(), 2);
        assert_eq!(g.nodes_of_type("item").count(), 2);
        assert_eq!(g.links_of_type("act").count(), 2);
    }
}
