//! Nodes of the social content graph.

use crate::attrs::{AttrMap, HasAttrs};
use crate::id::NodeId;
use crate::types::TYPE_ATTR;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node: a physical or abstract entity — a user, an item (destination,
/// article, URL, photo), a derived topic, or a group (paper §4).
///
/// A node carries a unique [`NodeId`], a schema-less [`AttrMap`] with the
/// mandatory multi-valued `type` attribute, and an optional relevance score
/// attached by a scoring function during selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Unique node identifier within the social content site.
    pub id: NodeId,
    /// Structural attributes (always include `type`).
    pub attrs: AttrMap,
    /// Relevance score attached by a scoring function, if any.
    pub score: Option<f64>,
}

impl Node {
    /// Create a node with the given id and type values.
    pub fn new<I, S>(id: NodeId, types: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut attrs = AttrMap::new();
        attrs.set(TYPE_ATTR, Value::multi(types.into_iter().map(|s| s.into().to_lowercase())));
        Node { id, attrs, score: None }
    }

    /// Builder-style attribute setter.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.set(name, value);
        self
    }

    /// Builder-style score setter.
    pub fn with_score(mut self, score: f64) -> Self {
        self.score = Some(score);
        self
    }

    /// Add a type value to the node's `type` attribute.
    pub fn add_type(&mut self, ty: &str) {
        self.attrs.add(TYPE_ATTR, ty.to_lowercase());
    }

    /// Convenience: the node's `name` attribute, when present.
    pub fn name(&self) -> Option<&str> {
        self.attrs.get_str("name")
    }

    /// Merge another node (with the same id) into this one: attributes are
    /// unioned and the higher score wins. This is the consolidation rule
    /// applied by set operators.
    pub fn consolidate(&mut self, other: &Node) {
        debug_assert_eq!(self.id, other.id, "consolidate requires matching ids");
        self.attrs.merge(&other.attrs);
        self.score = match (self.score, other.score) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl HasAttrs for Node {
    fn attrs(&self) -> &AttrMap {
        &self.attrs
    }
    fn attrs_mut(&mut self) -> &mut AttrMap {
        &mut self.attrs
    }
    fn score(&self) -> Option<f64> {
        self.score
    }
    fn set_score(&mut self, score: f64) {
        self.score = Some(score);
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id, self.attrs)?;
        if let Some(s) = self.score {
            write!(f, " score={s:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_gets_lowercased_types() {
        let n = Node::new(NodeId(1), ["User", "Traveler"]);
        assert!(n.has_type("user"));
        assert!(n.has_type("traveler"));
        assert!(!n.has_type("item"));
    }

    #[test]
    fn with_attr_and_name() {
        let n = Node::new(NodeId(2), ["item", "city"]).with_attr("name", "Denver");
        assert_eq!(n.name(), Some("Denver"));
        assert!(n.has_type("city"));
    }

    #[test]
    fn add_type_evolves_node() {
        let mut n = Node::new(NodeId(3), ["user"]);
        n.add_type("expert");
        assert!(n.has_type("expert"));
        assert!(n.has_type("user"));
    }

    #[test]
    fn consolidate_merges_attrs_and_takes_max_score() {
        let mut a =
            Node::new(NodeId(4), ["user"]).with_attr("interests", "baseball").with_score(0.3);
        let b = Node::new(NodeId(4), ["traveler"]).with_attr("interests", "skiing").with_score(0.7);
        a.consolidate(&b);
        assert!(a.has_type("user"));
        assert!(a.has_type("traveler"));
        assert_eq!(a.attrs.get("interests").unwrap().len(), 2);
        assert_eq!(a.score, Some(0.7));
    }

    #[test]
    fn consolidate_keeps_present_score_when_other_missing() {
        let mut a = Node::new(NodeId(5), ["user"]).with_score(0.4);
        let b = Node::new(NodeId(5), ["user"]);
        a.consolidate(&b);
        assert_eq!(a.score, Some(0.4));
    }

    #[test]
    fn display_includes_score() {
        let n = Node::new(NodeId(6), ["user"]).with_score(0.5);
        assert!(n.to_string().contains("score=0.5000"));
    }
}
