//! The evolving type catalog (paper §4).
//!
//! SocialScope maintains "an evolving catalog of basic types, including
//! `user`, `item`, `topic`, `group` for nodes and `connect` (e.g. friend),
//! `act` (e.g. tag, review, click, …), `match`, `belong` for links". The
//! constants below are those basic types plus the concrete sub-types that
//! appear in the paper's examples; [`TypeCatalog`] tracks the catalog as
//! content analysis derives new types at runtime.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Name of the mandatory type attribute carried by every node and link.
pub const TYPE_ATTR: &str = "type";

// --- basic node types ---------------------------------------------------

/// Node type: a user of the social content site.
pub const NODE_USER: &str = "user";
/// Node type: a content item (destination, article, URL, photo, …).
pub const NODE_ITEM: &str = "item";
/// Node type: a derived semantic topic.
pub const NODE_TOPIC: &str = "topic";
/// Node type: a group of users or items.
pub const NODE_GROUP: &str = "group";

// --- basic link categories ----------------------------------------------

/// Link category: explicit social connections between users.
pub const LINK_CONNECT: &str = "connect";
/// Link category: user activities on items (tag, review, click, visit, …).
pub const LINK_ACT: &str = "act";
/// Link category: derived similarity between users or items.
pub const LINK_MATCH: &str = "match";
/// Link category: membership of a user/item in a topic or group.
pub const LINK_BELONG: &str = "belong";

// --- common concrete sub-types used throughout the paper's examples ------

/// Connection sub-type: friendship.
pub const LINK_FRIEND: &str = "friend";
/// Connection sub-type: instant-messenger contact.
pub const LINK_CONTACT: &str = "contact";
/// Activity sub-type: tagging an item with keywords.
pub const LINK_TAG: &str = "tag";
/// Activity sub-type: reviewing an item.
pub const LINK_REVIEW: &str = "review";
/// Activity sub-type: clicking / browsing an item.
pub const LINK_CLICK: &str = "click";
/// Activity sub-type: visiting a destination.
pub const LINK_VISIT: &str = "visit";
/// Activity sub-type: rating an item.
pub const LINK_RATING: &str = "rating";
/// Derived link produced when composing friendship and activity links
/// (Example 5, step 5/6 of the paper).
pub const LINK_USER_FRIEND_ITEM: &str = "user_friend_item";

/// Which of the two element kinds a registered type applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TypeKind {
    /// A node type.
    Node,
    /// A link type.
    Link,
}

/// The evolving catalog of node and link types.
///
/// The catalog starts with the paper's basic types and records, for link
/// types, the *category* they refine (`connect`, `act`, `match`, `belong`).
/// Content analysis (e.g. topic derivation) registers new types at runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeCatalog {
    node_types: BTreeSet<String>,
    link_types: BTreeMap<String, String>,
}

impl Default for TypeCatalog {
    fn default() -> Self {
        Self::with_basic_types()
    }
}

impl TypeCatalog {
    /// An empty catalog (no registered types).
    pub fn empty() -> Self {
        TypeCatalog { node_types: BTreeSet::new(), link_types: BTreeMap::new() }
    }

    /// The catalog pre-populated with the paper's basic types.
    pub fn with_basic_types() -> Self {
        let mut c = Self::empty();
        for t in [NODE_USER, NODE_ITEM, NODE_TOPIC, NODE_GROUP] {
            c.register_node_type(t);
        }
        for (t, cat) in [
            (LINK_FRIEND, LINK_CONNECT),
            (LINK_CONTACT, LINK_CONNECT),
            (LINK_TAG, LINK_ACT),
            (LINK_REVIEW, LINK_ACT),
            (LINK_CLICK, LINK_ACT),
            (LINK_VISIT, LINK_ACT),
            (LINK_RATING, LINK_ACT),
            (LINK_MATCH, LINK_MATCH),
            (LINK_BELONG, LINK_BELONG),
            (LINK_CONNECT, LINK_CONNECT),
            (LINK_ACT, LINK_ACT),
        ] {
            c.register_link_type(t, cat);
        }
        c
    }

    /// Register a node type (idempotent). Returns `true` when newly added.
    pub fn register_node_type(&mut self, ty: &str) -> bool {
        self.node_types.insert(ty.to_lowercase())
    }

    /// Register a link type under a category (idempotent).
    /// Returns `true` when newly added.
    pub fn register_link_type(&mut self, ty: &str, category: &str) -> bool {
        self.link_types.insert(ty.to_lowercase(), category.to_lowercase()).is_none()
    }

    /// Whether the node type is known.
    pub fn has_node_type(&self, ty: &str) -> bool {
        self.node_types.contains(&ty.to_lowercase())
    }

    /// Whether the link type is known.
    pub fn has_link_type(&self, ty: &str) -> bool {
        self.link_types.contains_key(&ty.to_lowercase())
    }

    /// The category (`connect` / `act` / `match` / `belong`) a link type
    /// refines, if registered.
    pub fn link_category(&self, ty: &str) -> Option<&str> {
        self.link_types.get(&ty.to_lowercase()).map(String::as_str)
    }

    /// All registered node types, in order.
    pub fn node_types(&self) -> impl Iterator<Item = &str> {
        self.node_types.iter().map(String::as_str)
    }

    /// All registered link types with their categories, in order.
    pub fn link_types(&self) -> impl Iterator<Item = (&str, &str)> {
        self.link_types.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of registered node types.
    pub fn node_type_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of registered link types.
    pub fn link_type_count(&self) -> usize {
        self.link_types.len()
    }
}

/// Whether a concrete link type string belongs to the activity category by
/// the default convention (used by overlay views when no catalog is given).
pub fn is_activity_type(ty: &str) -> bool {
    matches!(
        ty.to_lowercase().as_str(),
        LINK_ACT | LINK_TAG | LINK_REVIEW | LINK_CLICK | LINK_VISIT | LINK_RATING
    )
}

/// Whether a concrete link type string belongs to the connection category by
/// the default convention.
pub fn is_connection_type(ty: &str) -> bool {
    matches!(ty.to_lowercase().as_str(), LINK_CONNECT | LINK_FRIEND | LINK_CONTACT)
}

/// Whether a concrete link type string belongs to the topical category
/// (derived `belong`/`match` links) by the default convention.
pub fn is_topical_type(ty: &str) -> bool {
    matches!(ty.to_lowercase().as_str(), LINK_BELONG | LINK_MATCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_catalog_contains_paper_types() {
        let c = TypeCatalog::with_basic_types();
        assert!(c.has_node_type("user"));
        assert!(c.has_node_type("topic"));
        assert!(c.has_link_type("friend"));
        assert_eq!(c.link_category("friend"), Some("connect"));
        assert_eq!(c.link_category("tag"), Some("act"));
        assert_eq!(c.link_category("belong"), Some("belong"));
    }

    #[test]
    fn catalog_evolves() {
        let mut c = TypeCatalog::with_basic_types();
        assert!(!c.has_node_type("destination"));
        assert!(c.register_node_type("destination"));
        assert!(!c.register_node_type("destination"));
        assert!(c.has_node_type("Destination"));

        assert!(c.register_link_type("user_friend_item", "act"));
        assert_eq!(c.link_category("user_friend_item"), Some("act"));
    }

    #[test]
    fn category_helpers() {
        assert!(is_activity_type("tag"));
        assert!(is_activity_type("VISIT"));
        assert!(!is_activity_type("friend"));
        assert!(is_connection_type("friend"));
        assert!(is_topical_type("belong"));
        assert!(is_topical_type("match"));
        assert!(!is_topical_type("tag"));
    }

    #[test]
    fn counts() {
        let c = TypeCatalog::with_basic_types();
        assert_eq!(c.node_type_count(), 4);
        assert!(c.link_type_count() >= 9);
        assert_eq!(TypeCatalog::empty().node_type_count(), 0);
    }
}
