//! Node and link identifiers.
//!
//! Every node and link in a social content graph carries a unique id
//! (paper §4). Operators in the algebra match nodes and links *by id*,
//! which is why graph isomorphism never arises: two graphs derived from the
//! same site share the id space of that site.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a social content graph.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u64);

/// Identifier of a link in a social content graph.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub u64);

impl NodeId {
    /// Raw numeric value of the id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl LinkId {
    /// Raw numeric value of the id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<u64> for LinkId {
    fn from(v: u64) -> Self {
        LinkId(v)
    }
}

/// Monotonic id allocator shared by [`crate::GraphBuilder`] and by algebra
/// operators that create new links (composition, link aggregation, pattern
/// aggregation).
///
/// Ids allocated by different `IdGen`s starting at different offsets never
/// collide as long as the offsets are chosen from disjoint ranges; the
/// algebra uses [`IdGen::starting_after`] seeded with the maximum id present
/// in its input graphs.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct IdGen {
    next_node: u64,
    next_link: u64,
}

impl IdGen {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose first allocated ids are strictly greater than the
    /// given maxima.
    pub fn starting_after(max_node: u64, max_link: u64) -> Self {
        IdGen { next_node: max_node + 1, next_link: max_link + 1 }
    }

    /// Allocate a fresh node id.
    pub fn node_id(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    /// Allocate a fresh link id.
    pub fn link_id(&mut self) -> LinkId {
        let id = LinkId(self.next_link);
        self.next_link += 1;
        id
    }

    /// The next node id that would be allocated (without allocating it).
    pub fn peek_node(&self) -> NodeId {
        NodeId(self.next_node)
    }

    /// The next link id that would be allocated (without allocating it).
    pub fn peek_link(&self) -> LinkId {
        LinkId(self.next_link)
    }
}

/// Base of the id range reserved for *derived* links — links created by
/// algebra operators (composition, link aggregation, pattern aggregation)
/// rather than stored in a site. Site link ids are expected to stay below
/// this value (2^48 links is far beyond any realistic site), so derived
/// links never collide with stored links, and a process-wide counter keeps
/// independent derivations from colliding with each other.
pub const DERIVED_LINK_ID_BASE: u64 = 1 << 48;

static NEXT_DERIVED_LINK_ID: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(DERIVED_LINK_ID_BASE);

/// Allocate a fresh link id from the reserved derived-link range.
pub fn next_derived_link_id() -> LinkId {
    LinkId(NEXT_DERIVED_LINK_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
}

/// Whether a link id belongs to the derived-link range.
pub fn is_derived_link_id(id: LinkId) -> bool {
    id.0 >= DERIVED_LINK_ID_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_link_ids_are_fresh_and_flagged() {
        let a = next_derived_link_id();
        let b = next_derived_link_id();
        assert_ne!(a, b);
        assert!(is_derived_link_id(a));
        assert!(!is_derived_link_id(LinkId(42)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(LinkId(9).to_string(), "l9");
    }

    #[test]
    fn idgen_is_monotonic() {
        let mut g = IdGen::new();
        let a = g.node_id();
        let b = g.node_id();
        assert!(b > a);
        let l1 = g.link_id();
        let l2 = g.link_id();
        assert!(l2 > l1);
    }

    #[test]
    fn idgen_starting_after_skips_existing() {
        let mut g = IdGen::starting_after(100, 200);
        assert_eq!(g.node_id(), NodeId(101));
        assert_eq!(g.link_id(), LinkId(201));
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).raw(), 5);
        assert_eq!(LinkId(6).raw(), 6);
    }
}
