//! Shared fixtures for the SocialScope benchmark harness: standard site
//! scales and helpers used by both the Criterion benches and the
//! `experiments` binary that regenerates the paper's tables and figures.

#![warn(rust_2018_idioms)]

pub mod loadgen;

use socialscope_discovery::analyzer::similarity::derive_similarity_links;
use socialscope_graph::{NodeId, SocialGraph};
use socialscope_workload::{generate_site, GeneratedSite, SiteConfig};

/// Standard site scales used across experiments.
pub fn scale_config(users: usize) -> SiteConfig {
    SiteConfig {
        users,
        items: users * 2,
        cities: 10,
        avg_friends: 8,
        tags_per_user: 8,
        visits_per_user: 10,
        ..SiteConfig::default()
    }
}

/// Generate a site at a given user scale (deterministic).
pub fn site_at_scale(users: usize) -> GeneratedSite {
    generate_site(&scale_config(users))
}

/// Generate a site and materialize `match` links so plan-based collaborative
/// filtering and the Figure 2 pattern can run on it.
pub fn site_with_matches(users: usize, threshold: f64) -> (SocialGraph, Vec<NodeId>) {
    let site = site_at_scale(users);
    let mut graph = site.graph;
    derive_similarity_links(&mut graph, threshold);
    (graph, site.users)
}

/// The query keywords used by the index / top-k experiments.
pub fn standard_keywords() -> Vec<String> {
    vec!["baseball".to_string(), "museum".to_string(), "family".to_string()]
}
