//! The SocialScope experiment harness: regenerates every table and figure of
//! the paper's evaluation material (see `DESIGN.md` §3 and `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p socialscope-bench --release --bin experiments -- all
//! cargo run -p socialscope-bench --release --bin experiments -- table1
//! ```
//!
//! Subcommands: `table1`, `table2`, `fig2`, `sizing`, `clustering`,
//! `algebra`, `presentation`, `all`, plus two measured sweeps (see the
//! README "Performance" section):
//!
//! * `topk` — the E8 top-k sweep: wall time and cost counters at a fixed
//!   seed, emitting `BENCH_topk.json`;
//! * `batch` — the E9 batched multi-user sweep: query-log-driven keyword
//!   sets served to user batches of size {1, 8, 32, 128}, batch call vs
//!   per-user loop, emitting `BENCH_batch.json`;
//! * `parallel` — the E10 thread-scaling sweep of the execution layer:
//!   parallel index builds (asserted identical to sequential ones) and the
//!   parallel batch engines at each requested thread count, against the
//!   threads=1 per-user serving loop, emitting `BENCH_parallel.json`;
//! * `update` — the E11 live-maintenance sweep: synthetic tag-event batches
//!   (assigns + retracts) at several fractions of the site's assignment
//!   volume, applied incrementally to both indexes versus rebuilding them
//!   from scratch (results asserted identical before anything is timed),
//!   emitting `BENCH_update.json`;
//! * `robustness` — the E12 deadline-budget sweep: the E9 workload served
//!   with and without a (never-expiring) deadline to price the cooperative
//!   expiry checks, plus budgets at fractions of the measured unbounded
//!   wall to chart the deadline hit-rate, with the partial-results contract
//!   asserted before anything is timed; emits `BENCH_robustness.json`;
//! * `serving` — the E13 serving-front sweep: an in-process
//!   `socialscope_server` driven by the open-loop load generator at 1.5×
//!   its measured per-request capacity, across micro-batching windows
//!   (window 0 is the per-request baseline), reporting p50/p99/p99.9
//!   scheduled-time latency and throughput per window, with the wire
//!   contract (HTTP round-trip ≡ direct engine calls, transactional-apply
//!   rollback, in-band degradation) asserted before anything is timed;
//!   emits `BENCH_serving.json`;
//! * `scale` — the E14 memory-scaling sweep: sites from the
//!   [`SiteConfig::at_scale`] presets (Zipf-skewed tags, bursty per-class
//!   query mixes) built at each requested user scale under the `Raw` and
//!   `Compressed` posting layouts, reporting measured heap bytes/user,
//!   build-time curves, single-query latency and batch throughput per
//!   layout — with compressed results asserted identical to raw before
//!   anything is timed — emitting `BENCH_scale.json`.
//!
//! ```text
//! cargo run -p socialscope_bench --release --bin experiments -- topk \
//!     --scale 200 --out BENCH_topk.json [--baseline before.json]
//! cargo run -p socialscope_bench --release --bin experiments -- batch \
//!     --scale 200 --out BENCH_batch.json
//! cargo run -p socialscope_bench --release --bin experiments -- parallel \
//!     --scale 200 --threads 1,2,4 --out BENCH_parallel.json
//! cargo run -p socialscope_bench --release --bin experiments -- update \
//!     --scale 200 --out BENCH_update.json
//! cargo run -p socialscope_bench --release --bin experiments -- robustness \
//!     --scale 200 --out BENCH_robustness.json
//! cargo run -p socialscope_bench --release --bin experiments -- serving \
//!     --scale 200 --out BENCH_serving.json
//! cargo run -p socialscope_bench --release --bin experiments -- scale \
//!     --scale 10000,100000 --layout both --out BENCH_scale.json
//! ```
//!
//! Unknown subcommands or flags, malformed numeric values (`--threads`
//! rejects zero and non-integers upfront; `scale`'s `--scale` list rejects
//! zero, garbage and anything past 10^6; `--layout` rejects anything but
//! `raw`/`compressed`/`both`) and unwritable `--out` destinations all fail
//! fast with a non-zero exit.

use socialscope_algebra::prelude::*;
use socialscope_bench::loadgen::{post, run_load, LoadPlan, PlannedRequest};
use socialscope_bench::{site_at_scale, site_with_matches, standard_keywords};
use socialscope_content::models::all_models;
use socialscope_content::wire::{ApplyRequest, QueryRequest, QueryResponse};
use socialscope_content::TagEvent;
use socialscope_content::{
    BatchOptions, BehaviorBasedClustering, ClusteredIndex, ClusteringStrategy, ExactIndex,
    HybridClustering, Layout, NetworkBasedClustering, SiteModel, UserJourney,
};
use socialscope_discovery::recommend::algebra_cf::{example5_pipeline, CfConfig};
use socialscope_discovery::ClusteredNetworkAwareSearch;
use socialscope_discovery::{ContentAnalyzer, InformationDiscoverer, UserQuery};
use socialscope_presentation::{GroupingStrategy, InformationOrganizer};
use socialscope_server::ServerConfig;
use socialscope_workload::queries::expected_fraction;
use socialscope_workload::{
    generate_events, generate_site, keywords_of, paper_sizing_example, ClassCounts,
    EventStreamConfig, QueryClass, QueryLogConfig, QueryLogGenerator, SiteConfig,
};
use std::time::{Duration, Instant};

const USAGE: &str = "table1 | table2 | fig2 | sizing | clustering | algebra | presentation | \
                     topk | batch | parallel | update | robustness | serving | scale | all";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let rest: &[String] = if args.is_empty() { &[] } else { &args[1..] };
    // Fixed experiments take no flags; swallowing a typo silently would
    // leave the caller believing the flag did something.
    let no_flags = |name: &str| {
        if !rest.is_empty() {
            fail(&format!("`{name}` takes no flags (got `{}`)", rest.join(" ")));
        }
    };
    match which {
        "table1" => {
            no_flags("table1");
            table1();
        }
        "table2" => {
            no_flags("table2");
            table2();
        }
        "fig2" => {
            no_flags("fig2");
            fig2();
        }
        "sizing" => {
            no_flags("sizing");
            sizing();
        }
        "clustering" => {
            no_flags("clustering");
            clustering();
        }
        "algebra" => {
            no_flags("algebra");
            algebra();
        }
        "presentation" => {
            no_flags("presentation");
            presentation();
        }
        "topk" => topk_sweep(rest),
        "batch" => batch_sweep(rest),
        "parallel" => parallel_sweep(rest),
        "update" => update_sweep(rest),
        "robustness" => robustness_sweep(rest),
        "serving" => serving_sweep(rest),
        "scale" => scale_sweep(rest),
        "all" => {
            no_flags("all");
            table1();
            table2();
            fig2();
            sizing();
            clustering();
            algebra();
            presentation();
        }
        other => fail(&format!("unknown experiment `{other}` (expected: {USAGE})")),
    }
}

/// Usage error: print the message and exit non-zero.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: experiments <{USAGE}> [flags]");
    // lint: allow(exit_confined, reason = "experiments.rs is a src/bin crate root, a main.rs in all but name; exit codes are its CLI contract with run_bench.sh")
    std::process::exit(2);
}

/// I/O error: print the message and exit non-zero (distinct from usage
/// errors so scripts can tell a typo from a filesystem problem).
fn fail_io(msg: &str) -> ! {
    eprintln!("error: {msg}");
    // lint: allow(exit_confined, reason = "experiments.rs is a src/bin crate root, a main.rs in all but name; exit codes are its CLI contract with run_bench.sh")
    std::process::exit(1);
}

/// Parse a numeric flag value with a clear error instead of a panic.
fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("{flag} takes a number, got `{value}`")))
}

/// Reject an unwritable `--out` destination up front — before minutes of
/// sweeping — without touching the file itself: regeneration flows point
/// `--baseline` and `--out` at the same committed path, so the file must
/// not be truncated before the baseline has been read.
fn validate_out_path(path: &str) {
    if let Some(message) = out_path_error(path) {
        fail(&message);
    }
}

/// The testable core of [`validate_out_path`]: `Some(reason)` when the
/// path must be rejected. An empty (or all-whitespace) path is refused
/// explicitly — `Path::new("").parent()` is `Some("")`, which the
/// current-directory default used to wave through, leaving a sweep to
/// end by writing a file literally named `""`.
fn out_path_error(path: &str) -> Option<String> {
    if path.trim().is_empty() {
        return Some("--out needs a non-empty file path".to_string());
    }
    let p = std::path::Path::new(path);
    if p.is_dir() {
        return Some(format!("--out `{path}` is a directory"));
    }
    let parent = match p.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir,
        _ => std::path::Path::new("."),
    };
    if !parent.is_dir() {
        return Some(format!(
            "--out `{path}`: parent directory `{}` does not exist",
            parent.display()
        ));
    }
    None
}

fn heading(title: &str) {
    println!("\n============================================================");
    println!("{title}");
    println!("============================================================");
}

/// E1 — Table 1: class × location breakdown of the query log.
fn table1() {
    heading("E1 / Table 1 — Summary statistics of the (synthetic) Y!Travel query log");
    let config = QueryLogConfig { queries: 200_000, ..Default::default() };
    let mut gen = QueryLogGenerator::new(config);
    let log = gen.generate();
    let counts = ClassCounts::from_queries(log.iter().map(String::as_str));
    let mixture = gen.mixture();

    println!("{} queries generated (paper analyzed 10M real queries)\n", counts.total());
    println!("measured:");
    println!("{}", counts.render_table());
    println!("paper (Table 1):");
    println!("                    general   categorical   specific");
    println!("with locations       32.36%       22.52%      8.37%");
    println!("w/o locations        21.38%        5.34%");
    println!("unclassified         ~10%");
    for (class, with_loc, label) in [
        (QueryClass::General, true, "general/with-location"),
        (QueryClass::General, false, "general/without-location"),
        (QueryClass::Categorical, true, "categorical/with-location"),
        (QueryClass::Categorical, false, "categorical/without-location"),
    ] {
        let measured = counts.fraction(class, with_loc);
        let paper = expected_fraction(&mixture, class, with_loc);
        println!(
            "  {label:<30} measured {:>6.2}%  paper {:>6.2}%",
            measured * 100.0,
            paper * 100.0
        );
    }
}

/// E2 — Table 2: the three content-management models.
fn table2() {
    heading("E2 / Table 2 — Comparison of content management models");
    let journey = UserJourney { users: 10_000, content_sites: 3, ..UserJourney::default() };
    println!(
        "journey: {} users, {} content sites, {} connections/user, {} activities/user, {} queries/user\n",
        journey.users,
        journey.content_sites,
        journey.connections_per_user,
        journey.activities_per_user,
        journey.queries_per_user
    );

    println!(
        "{:<36} {:>14} {:>14} {:>14}",
        "factor", "Decentralized", "Closed Cartel", "Open Cartel"
    );
    let models = all_models();
    let matrices: Vec<_> = models.iter().map(|m| m.control_matrix()).collect();
    let row = |label: &str, f: &dyn Fn(usize) -> String| {
        println!("{:<36} {:>14} {:>14} {:>14}", label, f(0), f(1), f(2));
    };
    row("users: interact with", &|i| matrices[i].user_interaction.to_string());
    row("users: duplicate profiles?", &|i| {
        if matrices[i].duplicate_profiles { "yes" } else { "no" }.to_string()
    });
    row("content site: control content", &|i| matrices[i].content_sites.content.to_string());
    row("content site: control social graph", &|i| {
        matrices[i].content_sites.social_graph.to_string()
    });
    row("content site: control activities", &|i| matrices[i].content_sites.activities.to_string());
    row("social site: control content", &|i| matrices[i].social_sites.content.to_string());
    row("social site: control social graph", &|i| {
        matrices[i].social_sites.social_graph.to_string()
    });
    row("social site: control activities", &|i| matrices[i].social_sites.activities.to_string());

    println!("\nmeasured consequences of the simulated journey:");
    println!(
        "{:<36} {:>14} {:>14} {:>14}",
        "metric", "Decentralized", "Closed Cartel", "Open Cartel"
    );
    let metrics: Vec<_> = models.iter().map(|m| m.simulate(&journey)).collect();
    let mrow = |label: &str, f: &dyn Fn(usize) -> String| {
        println!("{:<36} {:>14} {:>14} {:>14}", label, f(0), f(1), f(2));
    };
    mrow("profiles per user (user-maintained)", &|i| {
        format!("{:.1}", metrics[i].profiles_per_user)
    });
    mrow("profiles stored (incl. caches)", &|i| metrics[i].profiles_stored.to_string());
    mrow("sync messages", &|i| metrics[i].sync_messages.to_string());
    mrow("cross-site query requests", &|i| metrics[i].cross_site_query_requests.to_string());
    mrow("content site can analyze graph", &|i| {
        if metrics[i].content_site_can_analyze_graph { "yes" } else { "no" }.to_string()
    });
    mrow("requires social account", &|i| {
        if metrics[i].requires_social_account { "yes" } else { "no" }.to_string()
    });
}

/// E3 — Figure 2: multi-step Example 5 vs. single graph-pattern aggregation.
fn fig2() {
    heading("E3 / Figure 2 — CF as multi-step algebra vs. one graph-pattern aggregation");
    println!(
        "{:>8} {:>18} {:>16} {:>14} {:>12} {:>8}",
        "users", "example5 full (ms)", "step plan (ms)", "pattern (ms)", "plan/pattern", "agree?"
    );
    for users in [100usize, 300, 600] {
        let (graph, user_ids) = site_with_matches(users, 0.15);
        let user = user_ids[0];

        // The full nine-step Example 5 pipeline (derives the similarity
        // network from scratch on every invocation).
        let start = Instant::now();
        let _full = example5_pipeline(&graph, user, &CfConfig::default());
        let full_ms = start.elapsed().as_secs_f64() * 1e3;

        // Steps 7–9 as a plan over the pre-materialized match links …
        let plan = socialscope_discovery::collaborative_filtering_plan(user);
        let start = Instant::now();
        let stepped = Evaluator::new(&graph).evaluate(&plan).expect("plan evaluates");
        let plan_ms = start.elapsed().as_secs_f64() * 1e3;

        // … versus the single Figure 2 pattern aggregation over the same
        // match links.
        let pattern = GraphPattern::fig2_collaborative_filtering(user);
        let start = Instant::now();
        let patterned = pattern_aggregate(
            &graph,
            &pattern,
            "score",
            &PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
        );
        let pattern_ms = start.elapsed().as_secs_f64() * 1e3;

        let targets = |g: &socialscope_graph::SocialGraph| -> std::collections::BTreeSet<_> {
            g.links().filter(|l| l.src == user).map(|l| l.tgt).collect()
        };
        let agree = if targets(&stepped) == targets(&patterned) { "yes" } else { "no" };
        println!(
            "{:>8} {:>18.2} {:>16.2} {:>14.2} {:>11.2}x {:>8}",
            users,
            full_ms,
            plan_ms,
            pattern_ms,
            plan_ms / pattern_ms.max(1e-9),
            agree
        );
    }
    println!("\n(The paper leaves the comparison as an open question. Both formulations");
    println!(" compute the same recommendations over the materialized match links; the");
    println!(" single pattern aggregation avoids the intermediate compose/semi-join");
    println!(" results, so it is the cheaper formulation — and re-deriving the");
    println!(" similarity network inline, as the full Example 5 pipeline does, dominates");
    println!(" the cost of either.)");
}

/// E4 — the §6.2 index-sizing back-of-envelope.
fn sizing() {
    heading("E4 / §6.2 — Index sizing back-of-envelope");
    let est = paper_sizing_example();
    println!("paper: 100k users, 1M items, 1000 tags, 20 tags/item by 5% of users, 10 B/entry");
    println!("paper estimate : ≈ 1 terabyte");
    println!("model estimate : {:.3e} entries = {:.2} TB", est.exact_entries, est.exact_terabytes);

    let site = site_at_scale(400);
    let model = SiteModel::from_graph(&site.graph);
    let exact = ExactIndex::build(&model);
    let stats = exact.stats();
    println!(
        "\nmeasured on a generated site ({} users, {} items, {} tags): {} lists, {} entries, {} bytes",
        model.user_count(),
        model.item_count(),
        model.tag_count(),
        stats.lists,
        stats.entries,
        stats.bytes
    );
}

/// E5 — clustering space/time trade-off (the ref \[5\] summary).
fn clustering() {
    heading("E5 / §6.2 — Clustering strategies: space vs. query-time trade-off");
    let site = site_at_scale(400);
    let model = SiteModel::from_graph(&site.graph);
    let exact = ExactIndex::build(&model);
    let exact_stats = exact.stats();
    let keywords = standard_keywords();
    println!(
        "site: {} users, {} items, {} tags; exact index: {} entries ({} bytes)\n",
        model.user_count(),
        model.item_count(),
        model.tag_count(),
        exact_stats.entries,
        exact_stats.bytes
    );
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>15} {:>13} {:>18} {:>19}",
        "strategy",
        "theta",
        "clusters",
        "entries",
        "bounds vs exact",
        "+refinement",
        "exact comps/query",
        "net clusters/query"
    );
    let strategies: Vec<(&str, &dyn ClusteringStrategy)> = vec![
        ("network", &NetworkBasedClustering),
        ("behavior", &BehaviorBasedClustering),
        ("hybrid", &HybridClustering),
    ];
    for theta in [0.1, 0.3, 0.5, 0.7] {
        for (name, strategy) in &strategies {
            let clustering = strategy.cluster(&model, theta);
            let clusters = clustering.cluster_count();
            let index = ClusteredIndex::build(&model, clustering);
            let stats = index.stats();
            let mut exact_comps = 0usize;
            let mut spans = 0usize;
            let probe_users: Vec<_> = site.users.iter().copied().take(25).collect();
            for &u in &probe_users {
                let report = index.query(&model, u, &keywords, 10);
                exact_comps += report.result.exact_computations;
                spans += report.network_clusters_spanned;
            }
            // Two space ratios: the upper-bound lists alone (the Eq. 1
            // trade-off quantity), and the full deployment including the
            // keyword-first refinement index exact scores are recomputed
            // from.
            let total = index.stats_with_refinement();
            println!(
                "{:<10} {:>6.1} {:>10} {:>10} {:>14.1}% {:>12.1}% {:>18.1} {:>19.1}",
                name,
                theta,
                clusters,
                stats.entries,
                100.0 * stats.entries as f64 / exact_stats.entries.max(1) as f64,
                100.0 * total.entries as f64 / exact_stats.entries.max(1) as f64,
                exact_comps as f64 / probe_users.len() as f64,
                spans as f64 / probe_users.len() as f64
            );
        }
    }
    println!("\n(Expected shape, per the paper's summary of ref [5]: network-based saves the");
    println!(" most space; behavior-based fragments a user's network over more clusters but");
    println!(" keeps item scores tighter; hybrid sits between.)");
}

/// E6 — algebra operator and plan costs (Examples 4 & 5), optimizer effect.
fn algebra() {
    heading("E6 / §5 — Algebra operators, Example 4/5 plans, optimizer effect");
    let (graph, users) = site_with_matches(400, 0.15);
    let user = users[0];

    let t = Instant::now();
    let friends = link_select(&graph, &Condition::on_attr("type", "friend"), None);
    let select_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let visits = link_select(&graph, &Condition::on_attr("type", "visit"), None);
    let _ = semi_join(&friends, &visits, DirectionalCondition::tgt_src());
    let semijoin_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let _ = union(&friends, &visits);
    let union_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "link_select: {select_ms:.2} ms   semi_join: {semijoin_ms:.2} ms   union: {union_ms:.2} ms"
    );

    let plan = socialscope_discovery::collaborative_filtering_plan(user);
    let (optimized, report) = Optimizer::new().optimize(&plan);
    let mut ev = Evaluator::new(&graph);
    let t = Instant::now();
    let a = ev.evaluate(&plan).unwrap();
    let plain_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let b = ev.evaluate(&optimized).unwrap();
    let opt_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "Example 5 plan: {} ops -> {} ops after optimization ({:?})",
        plan.size(),
        optimized.size(),
        report.rules_applied
    );
    println!("evaluation: {plain_ms:.2} ms unoptimized vs {opt_ms:.2} ms optimized");
    println!("results agree: {}", a.link_count() == b.link_count());
}

/// E7 — grouping and explanation behaviour.
fn presentation() {
    heading("E7 / §7 — Grouping meaningfulness and explanation coverage");
    let site = site_at_scale(300);
    let mut graph = site.graph.clone();
    ContentAnalyzer::default().analyze(&mut graph);
    let user = site.users[0];
    let msg = InformationDiscoverer::default()
        .discover(&graph, &UserQuery::keywords_for(user, "museum history family"));
    println!("{} relevant items discovered for the probe query\n", msg.len());
    let organizer = InformationOrganizer::default();
    println!(
        "{:<44} {:>8} {:>10} {:>10} {:>14}",
        "grouping", "groups", "avg size", "quality", "meaningfulness"
    );
    for strategy in [
        GroupingStrategy::Social { theta: 0.2 },
        GroupingStrategy::Social { theta: 0.6 },
        GroupingStrategy::Topical,
        GroupingStrategy::Structural { attribute: "keywords".into() },
    ] {
        let p = organizer.organize(&graph, &msg, strategy.clone());
        println!(
            "{:<44} {:>8} {:>10.1} {:>10.3} {:>14.3}",
            format!("{strategy:?}"),
            p.meaningfulness.group_count,
            p.meaningfulness.avg_size,
            p.meaningfulness.avg_quality,
            p.meaningfulness.score
        );
    }
    let mut covered = 0usize;
    for r in msg.ranked.iter().take(10) {
        let expl = socialscope_presentation::user_based_explanation(&graph, user, r.item);
        let agg = socialscope_presentation::aggregate_explanation(&graph, user, r.item);
        if !expl.entries.is_empty() || !agg.entries.is_empty() {
            covered += 1;
        }
    }
    println!(
        "\nexplanation coverage: {covered}/{} of the top results have a social provenance explanation",
        msg.ranked.len().min(10)
    );
}

/// Pull the `wall_ms` of an engine × k row out of a run object previously
/// emitted by this tool (the format is ours, so plain string surgery is
/// reliable and keeps the binary free of a JSON-parser dependency).
fn extract_wall(run_json: &str, engine: &str, k: usize) -> Option<f64> {
    let needle = format!("\"engine\":\"{engine}\",\"k\":{k},\"wall_ms\":");
    let rest = &run_json[run_json.find(&needle)? + needle.len()..];
    rest[..rest.find(',')?].parse().ok()
}

/// A named top-k engine under measurement.
type TopkEngine<'a> =
    (&'static str, Box<dyn Fn(socialscope_graph::NodeId) -> socialscope_content::TopKResult + 'a>);

/// One measured engine × k configuration of the E8 sweep.
struct TopkRow {
    engine: &'static str,
    k: usize,
    wall_ms: f64,
    sorted_accesses: usize,
    exact_computations: usize,
    early_terminations: usize,
}

impl TopkRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"engine\":\"{}\",\"k\":{},\"wall_ms\":{:.3},\"sorted_accesses\":{},\"exact_computations\":{},\"early_terminations\":{}}}",
            self.engine,
            self.k,
            self.wall_ms,
            self.sorted_accesses,
            self.exact_computations,
            self.early_terminations
        )
    }
}

/// E8 — top-k pruning sweep at a fixed seed: wall time plus the
/// `sorted_accesses` / `exact_computations` cost counters for the
/// exhaustive baseline, the exact per-`(tag, user)` index and the
/// clustered (upper-bound) index. Emits a JSON run object; with
/// `--baseline <file>` the prior run is embedded verbatim as `before`.
fn topk_sweep(args: &[String]) {
    let mut scale = 200usize;
    let mut probe_users = 20usize;
    let mut reps = 50usize;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => scale = parse_num("--scale", value("--scale")),
            "--users" => probe_users = parse_num("--users", value("--users")),
            "--reps" => reps = parse_num("--reps", value("--reps")),
            "--out" => out = Some(value("--out").clone()),
            "--baseline" => baseline = Some(value("--baseline").clone()),
            other => fail(&format!(
                "unknown topk flag `{other}` (expected --scale/--users/--reps/--out/--baseline)"
            )),
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }

    heading(&format!(
        "E8 / §6.2 — Top-k sweep at scale {scale} ({probe_users} users × {reps} reps)"
    ));
    let site = site_at_scale(scale);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    // The sweep's wall times and counters only mean anything if the probe
    // query does real index work; an empty keyword set (possible for
    // query-log-derived keywords, see E9) would measure pure dispatch.
    assert!(!keywords.is_empty(), "E8 probe keywords must be non-empty");
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));
    let users: Vec<_> = site.users.iter().copied().take(probe_users).collect();

    // Dedup the keyword set once for the whole sweep, as a real exhaustive
    // scorer would — the per-item loop must not absorb per-query work.
    let distinct = socialscope_content::distinct_keywords(&keywords);
    let mut rows: Vec<TopkRow> = Vec::new();
    for &k in &[5usize, 20] {
        let engines: Vec<TopkEngine<'_>> = vec![
            (
                "exhaustive_baseline",
                Box::new(|u| {
                    socialscope_content::topk::top_k_exhaustive(model.items(), k, |i| {
                        model.query_score_distinct(i, u, &distinct)
                    })
                }),
            ),
            ("exact_index_ta", Box::new(|u| exact.query(u, &keywords, k))),
            ("clustered_index_ta", Box::new(|u| clustered.query(&model, u, &keywords, k).result)),
        ];
        for (name, run) in engines {
            let (mut sa, mut ec, mut et) = (0usize, 0usize, 0usize);
            for &u in &users {
                let r = run(u);
                sa += r.sorted_accesses;
                ec += r.exact_computations;
                et += r.early_terminated as usize;
            }
            let best = best_of_three(reps, || {
                for &u in &users {
                    std::hint::black_box(run(u).ranked.len());
                }
            });
            println!(
                "{name:<22} k={k:<3} wall {best:>9.3} ms   sorted {sa:>7}   exact {ec:>6}   early {et:>3}"
            );
            rows.push(TopkRow {
                engine: name,
                k,
                wall_ms: best,
                sorted_accesses: sa,
                exact_computations: ec,
                early_terminations: et,
            });
        }
    }

    let run_json = format!(
        "{{\"experiment\":\"E8_topk_sweep\",\"seed\":7,\"scale\":{scale},\"probe_users\":{},\"repetitions\":{reps},\"keywords\":[{}],\"engines\":[{}]}}",
        users.len(),
        keywords.iter().map(|k| format!("\"{k}\"")).collect::<Vec<_>>().join(","),
        rows.iter().map(TopkRow::to_json).collect::<Vec<_>>().join(",")
    );
    let before = match baseline {
        Some(path) => {
            let doc = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail_io(&format!("cannot read baseline {path}: {e}")));
            let doc = doc.trim();
            // A baseline is either a bare run object or a prior
            // before/after document. For the latter, keep its original
            // `before` run when it has one — regenerating over the
            // committed file refreshes `after` without losing the seed
            // baseline (and without ever comparing the engine to itself);
            // a document with a null `before` contributes its `after`.
            match doc.strip_prefix("{\"before\":").and_then(|rest| rest.split_once(",\"after\":")) {
                Some((original_before, _)) if original_before != "null" => {
                    original_before.to_string()
                }
                Some((_, after)) => match after.split_once(",\"speedup\":") {
                    Some((run, _)) => run.to_string(),
                    None => after.trim_end_matches('}').to_string(),
                },
                None => doc.to_string(),
            }
        }
        None => "null".to_string(),
    };
    // With a baseline in hand, derive per-engine speedups (before / after
    // wall time, per k and total) directly into the document.
    let speedup = if before == "null" {
        "null".to_string()
    } else {
        let mut parts = Vec::new();
        for engine in ["exhaustive_baseline", "exact_index_ta", "clustered_index_ta"] {
            let mut per_k = Vec::new();
            let (mut total_before, mut total_after) = (0.0f64, 0.0f64);
            for row in rows.iter().filter(|r| r.engine == engine) {
                if let Some(bw) = extract_wall(&before, engine, row.k) {
                    total_before += bw;
                    total_after += row.wall_ms;
                    per_k.push(format!("\"k{}\":{:.2}", row.k, bw / row.wall_ms));
                }
            }
            if !per_k.is_empty() {
                per_k.push(format!("\"total\":{:.2}", total_before / total_after));
                parts.push(format!("\"{engine}\":{{{}}}", per_k.join(",")));
            }
        }
        format!("{{{}}}", parts.join(","))
    };
    let json = format!("{{\"before\":{before},\"after\":{run_json},\"speedup\":{speedup}}}\n");
    write_json_out(out.as_deref(), &json);
}

/// Emit a JSON document to `--out` (with a clean error on failure) or to
/// stdout when no destination was given.
fn write_json_out(out: Option<&str>, json: &str) {
    match out {
        Some(path) => {
            std::fs::write(path, json)
                .unwrap_or_else(|e| fail_io(&format!("cannot write {path}: {e}")));
            println!("\nwrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// One measured engine × query-class × batch-size configuration of E9.
struct BatchRow {
    engine: &'static str,
    class: &'static str,
    batch_size: usize,
    user_queries: usize,
    wall_ms_loop: f64,
    wall_ms_batch: f64,
}

impl BatchRow {
    fn speedup(&self) -> f64 {
        self.wall_ms_loop / self.wall_ms_batch.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"engine\":\"{}\",\"class\":\"{}\",\"batch_size\":{},\"user_queries\":{},\"wall_ms_loop\":{:.3},\"wall_ms_batch\":{:.3},\"speedup\":{:.2}}}",
            self.engine,
            self.class,
            self.batch_size,
            self.user_queries,
            self.wall_ms_loop,
            self.wall_ms_batch,
            self.speedup()
        )
    }
}

/// The batch sizes every E9 combination sweeps.
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

/// Time one closure: best-of-three total wall time over `reps` repetitions,
/// to damp scheduler noise (same discipline as the E8 sweep).
fn best_of_three(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            run();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Time two closures for an A/B comparison: `trials` alternating rounds of
/// (`a`, `b`), returning the round whose b/a wall ratio is the median.
/// Interleaving means slow machine drift (frequency scaling, background
/// load) lands on both arms instead of biasing whichever ran second, and
/// the median round discards scheduler-spike outliers in either direction
/// — the discipline the E12 overhead gate needs, where the true
/// difference is near the noise floor.
fn interleaved_best(
    trials: usize,
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let mut rounds: Vec<(f64, f64)> = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        for _ in 0..reps {
            a();
        }
        let wall_a = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        for _ in 0..reps {
            b();
        }
        rounds.push((wall_a, t.elapsed().as_secs_f64() * 1e3));
    }
    rounds.sort_by(|x, y| (x.1 / x.0).total_cmp(&(y.1 / y.0)));
    rounds[rounds.len() / 2]
}

/// E9 — batched multi-user query sweep, driven by the query log: for each
/// query class (general / categorical / specific) and each batch size in
/// {1, 8, 32, 128}, the same keyword sets are served to user batches two
/// ways — a loop of single `query` calls versus one `query_batch_opts`
/// call over a persistent scratch arena — and the wall-time ratio is the
/// measured batching gain. Batch results are asserted identical to the
/// loop's before anything is timed, and queries whose text tokenizes to an
/// empty keyword set are counted per class (they are served as defined
/// empty results, so their share contextualizes the class's speedup).
/// Emits a JSON run object (`BENCH_batch.json` when `--out` points there).
fn batch_sweep(args: &[String]) {
    let mut scale = 200usize;
    let mut reps = 30usize;
    let mut k = 10usize;
    let mut queries_per_class = 16usize;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => scale = parse_num("--scale", value("--scale")),
            "--reps" => reps = parse_num("--reps", value("--reps")),
            "--k" => k = parse_num("--k", value("--k")),
            "--queries" => queries_per_class = parse_num("--queries", value("--queries")),
            "--out" => out = Some(value("--out").clone()),
            other => fail(&format!(
                "unknown batch flag `{other}` (expected --scale/--reps/--k/--queries/--out)"
            )),
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }

    heading(&format!(
        "E9 / batched multi-user queries at scale {scale} (k={k}, {queries_per_class} queries/class × {reps} reps)"
    ));
    let site = site_at_scale(scale);
    let model = SiteModel::from_graph(&site.graph);
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));

    // Query-log-driven keyword sets, a fixed number per class (alternating
    // the with/without-location form where the class distinguishes them).
    let mut gen = QueryLogGenerator::new(QueryLogConfig { seed: 7, ..Default::default() });
    let classes: Vec<(&'static str, Vec<Vec<String>>)> = [
        ("general", QueryClass::General),
        ("categorical", QueryClass::Categorical),
        ("specific", QueryClass::Specific),
    ]
    .into_iter()
    .map(|(name, class)| {
        let queries: Vec<Vec<String>> = (0..queries_per_class)
            .map(|i| keywords_of(&gen.next_query_of(class, i % 2 == 0)))
            .collect();
        (name, queries)
    })
    .collect();

    // Query-log text can tokenize to an *empty* keyword set (all-stopword
    // queries — common in the general and specific classes). The engines
    // serve those as defined empty results after one resolution, which is
    // legitimate serving work but trivially cheap: account for them
    // explicitly — printed and emitted in the JSON — so a class's batching
    // speedup is read against how much of its workload was empty-keyword
    // dispatch rather than index work.
    let empty_counts: Vec<(&'static str, usize)> = classes
        .iter()
        .map(|(name, queries)| (*name, queries.iter().filter(|q| q.is_empty()).count()))
        .collect();
    for (name, count) in &empty_counts {
        println!("{name:<12} {count}/{queries_per_class} queries tokenize to empty keyword sets");
    }
    println!();

    let mut rows: Vec<BatchRow> = Vec::new();
    println!(
        "{:<16} {:<12} {:>6} {:>9} {:>14} {:>15} {:>9}",
        "engine", "class", "batch", "queries", "loop (ms)", "batch (ms)", "speedup"
    );
    for (class, queries) in &classes {
        for &batch_size in &BATCH_SIZES {
            // Each query serves one batch of users, cycling through the
            // site's population so consecutive batches don't overlap.
            let batches: Vec<Vec<socialscope_graph::NodeId>> = (0..queries.len())
                .map(|i| {
                    (0..batch_size)
                        .map(|j| site.users[(i * batch_size + j) % site.users.len()])
                        .collect()
                })
                .collect();
            let user_queries = queries.len() * batch_size;

            // Sanity: the batch path must be element-wise identical to the
            // per-user loop before its wall time means anything.
            for (keywords, batch) in queries.iter().zip(&batches) {
                let from_batch = exact.query_batch_opts(batch, keywords, k, BatchOptions::new());
                for (got, &u) in from_batch.iter().zip(batch.iter()) {
                    assert_eq!(got, &exact.query(u, keywords, k), "exact batch mismatch");
                }
                let from_batch =
                    clustered.query_batch_opts(&model, batch, keywords, k, BatchOptions::new());
                for (got, &u) in from_batch.iter().zip(batch.iter()) {
                    assert_eq!(
                        got,
                        &clustered.query(&model, u, keywords, k),
                        "clustered batch mismatch"
                    );
                }
            }

            let wall_ms_loop = best_of_three(reps, || {
                for (keywords, batch) in queries.iter().zip(&batches) {
                    for &u in batch {
                        std::hint::black_box(exact.query(u, keywords, k).ranked.len());
                    }
                }
            });
            let mut scratch = socialscope_content::BatchScratch::default();
            let wall_ms_batch = best_of_three(reps, || {
                for (keywords, batch) in queries.iter().zip(&batches) {
                    std::hint::black_box(
                        exact
                            .query_batch_opts(
                                batch,
                                keywords,
                                k,
                                BatchOptions::new().scratch(&mut scratch),
                            )
                            .len(),
                    );
                }
            });
            rows.push(BatchRow {
                engine: "exact_index",
                class,
                batch_size,
                user_queries,
                wall_ms_loop,
                wall_ms_batch,
            });

            let wall_ms_loop = best_of_three(reps, || {
                for (keywords, batch) in queries.iter().zip(&batches) {
                    for &u in batch {
                        std::hint::black_box(
                            clustered.query(&model, u, keywords, k).result.ranked.len(),
                        );
                    }
                }
            });
            let mut scratch = socialscope_content::BatchScratch::default();
            let wall_ms_batch = best_of_three(reps, || {
                for (keywords, batch) in queries.iter().zip(&batches) {
                    std::hint::black_box(
                        clustered
                            .query_batch_opts(
                                &model,
                                batch,
                                keywords,
                                k,
                                BatchOptions::new().scratch(&mut scratch),
                            )
                            .len(),
                    );
                }
            });
            rows.push(BatchRow {
                engine: "clustered_index",
                class,
                batch_size,
                user_queries,
                wall_ms_loop,
                wall_ms_batch,
            });

            for row in rows.iter().rev().take(2).rev() {
                println!(
                    "{:<16} {:<12} {:>6} {:>9} {:>14.3} {:>15.3} {:>8.2}x",
                    row.engine,
                    row.class,
                    row.batch_size,
                    row.user_queries,
                    row.wall_ms_loop,
                    row.wall_ms_batch,
                    row.speedup()
                );
            }
        }
    }

    // Aggregate across classes: total loop wall over total batch wall per
    // engine × batch size — the headline is the exact index at batch 32.
    let mut aggregate = Vec::new();
    let mut headline = 0.0f64;
    for engine in ["exact_index", "clustered_index"] {
        for &batch_size in &BATCH_SIZES {
            let (mut lp, mut bt) = (0.0f64, 0.0f64);
            for row in rows.iter().filter(|r| r.engine == engine && r.batch_size == batch_size) {
                lp += row.wall_ms_loop;
                bt += row.wall_ms_batch;
            }
            let speedup = lp / bt.max(1e-9);
            if engine == "exact_index" && batch_size == 32 {
                headline = speedup;
            }
            aggregate.push(format!(
                "{{\"engine\":\"{engine}\",\"batch_size\":{batch_size},\"wall_ms_loop\":{lp:.3},\"wall_ms_batch\":{bt:.3},\"speedup\":{speedup:.2}}}"
            ));
        }
    }
    println!(
        "\nheadline: exact_index batch-32 aggregate speedup {headline:.2}x over the per-user loop"
    );

    let class_names: Vec<String> = classes.iter().map(|(name, _)| format!("\"{name}\"")).collect();
    let empty_json: Vec<String> =
        empty_counts.iter().map(|(name, count)| format!("\"{name}\":{count}")).collect();
    let json = format!(
        "{{\"experiment\":\"E9_batch_sweep\",\"seed\":7,\"scale\":{scale},\"k\":{k},\"queries_per_class\":{queries_per_class},\"repetitions\":{reps},\"site_users\":{},\"classes\":[{}],\"empty_keyword_queries\":{{{}}},\"batch_sizes\":[{}],\"rows\":[{}],\"aggregate\":[{}],\"headline\":{{\"engine\":\"exact_index\",\"batch_size\":32,\"speedup\":{headline:.2}}}}}\n",
        site.users.len(),
        class_names.join(","),
        empty_json.join(","),
        BATCH_SIZES.map(|b| b.to_string()).join(","),
        rows.iter().map(BatchRow::to_json).collect::<Vec<_>>().join(","),
        aggregate.join(",")
    );
    write_json_out(out.as_deref(), &json);
}

/// The batch sizes the E10 thread-scaling sweep serves: the CI-gated
/// batch-32 serving unit plus a larger one that crosses the parallel
/// engines' fan-out floor at every multi-worker thread count.
const PARALLEL_BATCH_SIZES: [usize; 2] = [32, 256];

/// One measured engine × thread-count × batch-size aggregate of E10 (wall
/// times summed across the three query classes).
struct ParallelRow {
    engine: &'static str,
    threads: usize,
    batch_size: usize,
    wall_ms_loop: f64,
    wall_ms_batch: f64,
}

impl ParallelRow {
    /// Aggregate serving gain of the parallel batch engine over the
    /// threads=1 per-user loop — the deployment baseline every thread
    /// count is judged against (the threads=1 row is the pure batching
    /// gain; multi-worker rows add whatever the hardware's cores allow).
    fn speedup_vs_loop(&self) -> f64 {
        self.wall_ms_loop / self.wall_ms_batch.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"engine\":\"{}\",\"threads\":{},\"batch_size\":{},\"wall_ms_loop\":{:.3},\"wall_ms_batch\":{:.3},\"speedup_vs_loop\":{:.2}}}",
            self.engine,
            self.threads,
            self.batch_size,
            self.wall_ms_loop,
            self.wall_ms_batch,
            self.speedup_vs_loop()
        )
    }
}

/// E10 — thread-scaling sweep of the parallel execution layer: index
/// builds and the batch serving paths at each requested thread count.
///
/// Builds at every thread count are asserted to produce indexes with the
/// sequential build's stats, and every parallel batch result is asserted
/// element-wise identical to the per-user loop *before* anything is
/// timed — the determinism contract is checked on the measured workload
/// itself, not just in the test suite. Serving rows report wall time
/// against the threads=1 per-user serving loop (the E9 baseline), so the
/// threads=1 row isolates the batching gain and multi-worker rows add the
/// thread-level gain the machine's cores allow; the emitted
/// `available_parallelism` records how many cores that was. Emits a JSON
/// run object (`BENCH_parallel.json` when `--out` points there).
fn parallel_sweep(args: &[String]) {
    let mut scale = 200usize;
    let mut reps = 10usize;
    let mut k = 10usize;
    let mut queries_per_class = 8usize;
    let mut threads_list: Vec<usize> = vec![1, 2, 4];
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => scale = parse_num("--scale", value("--scale")),
            "--reps" => reps = parse_num("--reps", value("--reps")),
            "--k" => k = parse_num("--k", value("--k")),
            "--queries" => queries_per_class = parse_num("--queries", value("--queries")),
            "--threads" => {
                // Worker counts go through the execution layer's own
                // parser: zero and non-integers are rejected upfront, like
                // every other malformed flag value.
                threads_list = value("--threads")
                    .split(',')
                    .map(|part| {
                        socialscope_exec::parse_threads(part)
                            .unwrap_or_else(|e| fail(&format!("--threads: {e}")))
                    })
                    .collect();
                if threads_list.is_empty() {
                    fail("--threads needs at least one worker count");
                }
            }
            "--out" => out = Some(value("--out").clone()),
            other => fail(&format!(
                "unknown parallel flag `{other}` (expected --scale/--reps/--k/--queries/--threads/--out)"
            )),
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    heading(&format!(
        "E10 / parallel execution layer at scale {scale} (k={k}, threads {threads_list:?}, {cores} core(s) available)"
    ));
    let site = site_at_scale(scale);
    let model = SiteModel::from_graph(&site.graph);

    // Build layer: wall time per thread count, with the determinism
    // contract asserted against the sequential build.
    let sequential = socialscope_exec::Exec::sequential();
    let exact = ExactIndex::build_with(&sequential, &model);
    let clustered = ClusteredIndex::build_with(
        &sequential,
        &model,
        NetworkBasedClustering.cluster(&model, 0.3),
    );
    let mut build_rows: Vec<String> = Vec::new();
    println!("{:<10} {:>8} {:>16} {:>16}", "build", "threads", "exact (ms)", "clustered (ms)");
    for &threads in &threads_list {
        let exec = socialscope_exec::Exec::new(threads)
            .unwrap_or_else(|e| fail(&format!("--threads: {e}")));
        let parallel_exact = ExactIndex::build_with(&exec, &model);
        assert_eq!(parallel_exact.stats(), exact.stats(), "parallel exact build diverged");
        let clustering = NetworkBasedClustering.cluster(&model, 0.3);
        let parallel_clustered = ClusteredIndex::build_with(&exec, &model, clustering);
        assert_eq!(
            parallel_clustered.stats_with_refinement(),
            clustered.stats_with_refinement(),
            "parallel clustered build diverged"
        );
        let exact_ms = best_of_three(1, || {
            std::hint::black_box(ExactIndex::build_with(&exec, &model).stats().entries);
        });
        let clustered_ms = best_of_three(1, || {
            let clustering = NetworkBasedClustering.cluster(&model, 0.3);
            std::hint::black_box(
                ClusteredIndex::build_with(&exec, &model, clustering).stats().entries,
            );
        });
        println!("{:<10} {:>8} {:>16.3} {:>16.3}", "", threads, exact_ms, clustered_ms);
        build_rows.push(format!(
            "{{\"index\":\"exact\",\"threads\":{threads},\"wall_ms\":{exact_ms:.3}}}"
        ));
        build_rows.push(format!(
            "{{\"index\":\"clustered\",\"threads\":{threads},\"wall_ms\":{clustered_ms:.3}}}"
        ));
    }

    // Serving layer: the E9 query-log workload (three classes), aggregated
    // per engine × thread count × batch size.
    let mut gen = QueryLogGenerator::new(QueryLogConfig { seed: 7, ..Default::default() });
    let classes: Vec<(&'static str, Vec<Vec<String>>)> = [
        ("general", QueryClass::General),
        ("categorical", QueryClass::Categorical),
        ("specific", QueryClass::Specific),
    ]
    .into_iter()
    .map(|(name, class)| {
        let queries: Vec<Vec<String>> = (0..queries_per_class)
            .map(|i| keywords_of(&gen.next_query_of(class, i % 2 == 0)))
            .collect();
        (name, queries)
    })
    .collect();

    let mut rows: Vec<ParallelRow> = Vec::new();
    println!(
        "\n{:<16} {:>8} {:>6} {:>14} {:>15} {:>9}",
        "engine", "threads", "batch", "loop (ms)", "batch (ms)", "vs loop"
    );
    for &batch_size in &PARALLEL_BATCH_SIZES {
        let batches: Vec<Vec<Vec<socialscope_graph::NodeId>>> = classes
            .iter()
            .map(|(_, queries)| {
                (0..queries.len())
                    .map(|i| {
                        (0..batch_size)
                            .map(|j| site.users[(i * batch_size + j) % site.users.len()])
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Per-user loop baselines (threads=1 serving, once per engine).
        let exact_loop = best_of_three(reps, || {
            for ((_, queries), class_batches) in classes.iter().zip(&batches) {
                for (keywords, batch) in queries.iter().zip(class_batches) {
                    for &u in batch {
                        std::hint::black_box(exact.query(u, keywords, k).ranked.len());
                    }
                }
            }
        });
        let clustered_loop = best_of_three(reps, || {
            for ((_, queries), class_batches) in classes.iter().zip(&batches) {
                for (keywords, batch) in queries.iter().zip(class_batches) {
                    for &u in batch {
                        std::hint::black_box(
                            clustered.query(&model, u, keywords, k).result.ranked.len(),
                        );
                    }
                }
            }
        });

        for &threads in &threads_list {
            let exec = socialscope_exec::Exec::new(threads)
                .unwrap_or_else(|e| fail(&format!("--threads: {e}")));
            // The determinism contract, checked on the measured workload
            // before anything is timed.
            for ((_, queries), class_batches) in classes.iter().zip(&batches) {
                for (keywords, batch) in queries.iter().zip(class_batches) {
                    let par =
                        exact.query_batch_opts(batch, keywords, k, BatchOptions::new().exec(&exec));
                    for (got, &u) in par.iter().zip(batch) {
                        assert_eq!(got, &exact.query(u, keywords, k), "exact parallel mismatch");
                    }
                    let par = clustered.query_batch_opts(
                        &model,
                        batch,
                        keywords,
                        k,
                        BatchOptions::new().exec(&exec),
                    );
                    for (got, &u) in par.iter().zip(batch) {
                        assert_eq!(
                            got,
                            &clustered.query(&model, u, keywords, k),
                            "clustered parallel mismatch"
                        );
                    }
                }
            }

            let mut pool = socialscope_content::BatchScratchPool::default();
            let exact_batch = best_of_three(reps, || {
                for ((_, queries), class_batches) in classes.iter().zip(&batches) {
                    for (keywords, batch) in queries.iter().zip(class_batches) {
                        std::hint::black_box(
                            exact
                                .query_batch_opts(
                                    batch,
                                    keywords,
                                    k,
                                    BatchOptions::new().exec(&exec).scratch_pool(&mut pool),
                                )
                                .len(),
                        );
                    }
                }
            });
            let mut pool = socialscope_content::BatchScratchPool::default();
            let clustered_batch = best_of_three(reps, || {
                for ((_, queries), class_batches) in classes.iter().zip(&batches) {
                    for (keywords, batch) in queries.iter().zip(class_batches) {
                        std::hint::black_box(
                            clustered
                                .query_batch_opts(
                                    &model,
                                    batch,
                                    keywords,
                                    k,
                                    BatchOptions::new().exec(&exec).scratch_pool(&mut pool),
                                )
                                .len(),
                        );
                    }
                }
            });
            rows.push(ParallelRow {
                engine: "exact_index",
                threads,
                batch_size,
                wall_ms_loop: exact_loop,
                wall_ms_batch: exact_batch,
            });
            rows.push(ParallelRow {
                engine: "clustered_index",
                threads,
                batch_size,
                wall_ms_loop: clustered_loop,
                wall_ms_batch: clustered_batch,
            });
            for row in rows.iter().rev().take(2).rev() {
                println!(
                    "{:<16} {:>8} {:>6} {:>14.3} {:>15.3} {:>8.2}x",
                    row.engine,
                    row.threads,
                    row.batch_size,
                    row.wall_ms_loop,
                    row.wall_ms_batch,
                    row.speedup_vs_loop()
                );
            }
        }
    }

    // Headline: the exact engine at batch 32 and the highest requested
    // thread count (4 in the committed and CI configurations).
    let head_threads = threads_list.iter().copied().max().unwrap_or(1);
    let headline = rows
        .iter()
        .find(|r| r.engine == "exact_index" && r.batch_size == 32 && r.threads == head_threads)
        .map(ParallelRow::speedup_vs_loop)
        .unwrap_or(0.0);
    println!(
        "\nheadline: exact_index batch-32 at {head_threads} thread(s) serves {headline:.2}x the per-user loop"
    );

    let json = format!(
        "{{\"experiment\":\"E10_parallel_sweep\",\"seed\":7,\"scale\":{scale},\"k\":{k},\"queries_per_class\":{queries_per_class},\"repetitions\":{reps},\"site_users\":{},\"available_parallelism\":{cores},\"threads\":[{}],\"batch_sizes\":[{}],\"build\":[{}],\"rows\":[{}],\"headline\":{{\"engine\":\"exact_index\",\"batch_size\":32,\"threads\":{head_threads},\"speedup_vs_loop\":{headline:.2}}}}}\n",
        site.users.len(),
        threads_list.iter().map(usize::to_string).collect::<Vec<_>>().join(","),
        PARALLEL_BATCH_SIZES.map(|b| b.to_string()).join(","),
        build_rows.join(","),
        rows.iter().map(ParallelRow::to_json).collect::<Vec<_>>().join(",")
    );
    write_json_out(out.as_deref(), &json);
}

/// The event-batch sizes E11 sweeps, as fractions of the site's tag
/// assignment count. The CI-gated headline is the exact index at 1%.
const UPDATE_FRACTIONS: [f64; 3] = [0.001, 0.01, 0.05];

/// One measured index × event-fraction configuration of E11.
struct UpdateRow {
    index: &'static str,
    fraction: f64,
    events: usize,
    changed_entries: usize,
    wall_ms_apply: f64,
    wall_ms_rebuild: f64,
}

impl UpdateRow {
    /// How many times faster the incremental apply is than rebuilding the
    /// index from the already-updated site.
    fn speedup(&self) -> f64 {
        self.wall_ms_rebuild / self.wall_ms_apply.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"index\":\"{}\",\"fraction\":{},\"events\":{},\"changed_entries\":{},\"wall_ms_apply\":{:.3},\"wall_ms_rebuild\":{:.3},\"speedup\":{:.2}}}",
            self.index,
            self.fraction,
            self.events,
            self.changed_entries,
            self.wall_ms_apply,
            self.wall_ms_rebuild,
            self.speedup()
        )
    }
}

/// The deadline budgets E12 charts, as fractions of the measured
/// unbounded wall time of one batch call. 1.0 prices "the budget is
/// exactly what the work takes"; the CI-gated headline is not these rows
/// but the overhead of the cooperative checks themselves.
const ROBUSTNESS_BUDGET_FRACTIONS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];

/// One measured engine row of the E12 overhead comparison: the same
/// workload served without a deadline and under a never-expiring one.
struct RobustnessOverheadRow {
    engine: &'static str,
    wall_ms_unbounded: f64,
    wall_ms_deadline: f64,
}

impl RobustnessOverheadRow {
    /// Relative cost of the cooperative deadline checks, in percent (can
    /// dip below zero from scheduler noise; the CI gate is one-sided).
    fn overhead_pct(&self) -> f64 {
        100.0 * (self.wall_ms_deadline - self.wall_ms_unbounded) / self.wall_ms_unbounded.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"engine\":\"{}\",\"wall_ms_unbounded\":{:.3},\"wall_ms_deadline\":{:.3},\"overhead_pct\":{:.2}}}",
            self.engine,
            self.wall_ms_unbounded,
            self.wall_ms_deadline,
            self.overhead_pct()
        )
    }
}

/// One measured engine × budget-fraction row of the E12 hit-rate chart.
struct RobustnessHitRow {
    engine: &'static str,
    budget_fraction: f64,
    budget_ms: f64,
    served: usize,
    members: usize,
}

impl RobustnessHitRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"engine\":\"{}\",\"budget_fraction\":{},\"budget_ms\":{:.4},\"served\":{},\"members\":{},\"hit_rate\":{:.4}}}",
            self.engine,
            self.budget_fraction,
            self.budget_ms,
            self.served,
            self.members,
            self.served as f64 / self.members.max(1) as f64
        )
    }
}

/// E12 — robustness of the hardened serving core: what do deadline budgets
/// cost, and what do they buy?
///
/// The E9 query-log workload (three classes, batch size 32) is served by
/// both engines three ways. First, the partial-results contract is
/// *asserted* — a generous budget is byte-identical to the unbounded batch
/// with every `deadline_expired` flag clear, an already-expired budget
/// degrades every member to the defined empty-with-flag result, and any
/// budget in between yields a subset where each member either matches its
/// unbounded answer or carries the flag. Only then is anything timed: the
/// workload without a deadline versus under a never-expiring one prices
/// the cooperative expiry checks (the CI-gated `overhead_pct`, expected
/// ≈ 0 and gated at ≤ 2%), and budgets at fractions of the measured
/// unbounded wall chart the deadline hit-rate (machine-dependent, emitted
/// for the record, not gated). Emits a JSON run object
/// (`BENCH_robustness.json` when `--out` points there).
fn robustness_sweep(args: &[String]) {
    let mut scale = 200usize;
    let mut reps = 30usize;
    let mut k = 10usize;
    let mut queries_per_class = 16usize;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => scale = parse_num("--scale", value("--scale")),
            "--reps" => reps = parse_num("--reps", value("--reps")),
            "--k" => k = parse_num("--k", value("--k")),
            "--queries" => queries_per_class = parse_num("--queries", value("--queries")),
            "--out" => out = Some(value("--out").clone()),
            other => fail(&format!(
                "unknown robustness flag `{other}` (expected --scale/--reps/--k/--queries/--out)"
            )),
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }

    const BATCH_SIZE: usize = 32;
    heading(&format!(
        "E12 / deadline budgets at scale {scale} (k={k}, batch {BATCH_SIZE}, {queries_per_class} queries/class × {reps} reps)"
    ));
    let site = site_at_scale(scale);
    let model = SiteModel::from_graph(&site.graph);
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));

    let mut gen = QueryLogGenerator::new(QueryLogConfig { seed: 7, ..Default::default() });
    let queries: Vec<Vec<String>> =
        [QueryClass::General, QueryClass::Categorical, QueryClass::Specific]
            .into_iter()
            .flat_map(|class| {
                (0..queries_per_class)
                    .map(|i| keywords_of(&gen.next_query_of(class, i % 2 == 0)))
                    .collect::<Vec<_>>()
            })
            .collect();
    let batches: Vec<Vec<socialscope_graph::NodeId>> = (0..queries.len())
        .map(|i| {
            (0..BATCH_SIZE).map(|j| site.users[(i * BATCH_SIZE + j) % site.users.len()]).collect()
        })
        .collect();
    let members = queries.len() * BATCH_SIZE;

    // The partial-results contract, asserted on the measured workload
    // before anything is timed. `hour` can never expire mid-workload;
    // `zero` is expired before the first check.
    let hour = std::time::Duration::from_secs(3600);
    let zero = std::time::Duration::ZERO;
    for (keywords, batch) in queries.iter().zip(&batches) {
        let unbounded = exact.query_batch_opts(batch, keywords, k, BatchOptions::new());
        let generous =
            exact.query_batch_opts(batch, keywords, k, BatchOptions::new().deadline(hour));
        assert_eq!(generous, unbounded, "a generous budget must be invisible");
        assert!(generous.iter().all(|r| !r.deadline_expired));
        // Every member of a starved batch is empty — flagged, unless the
        // query resolved to an empty keyword set, whose defined empty
        // result short-circuits before the first deadline check.
        let starved =
            exact.query_batch_opts(batch, keywords, k, BatchOptions::new().deadline(zero));
        assert!(
            starved
                .iter()
                .zip(&unbounded)
                .all(|(r, want)| r.ranked.is_empty() && (r.deadline_expired || r == want)),
            "an expired budget must degrade every member"
        );
        // Millisecond-scale budget: wherever the clock lands, every member
        // is either its unbounded self or the defined degraded result.
        let partial = exact.query_batch_opts(
            batch,
            keywords,
            k,
            BatchOptions::new().deadline(std::time::Duration::from_micros(50)),
        );
        for (got, want) in partial.iter().zip(&unbounded) {
            assert!(
                if got.deadline_expired { got.ranked.is_empty() } else { got == want },
                "partial result is neither served nor cleanly degraded"
            );
        }

        let unbounded = clustered.query_batch_opts(&model, batch, keywords, k, BatchOptions::new());
        let generous = clustered.query_batch_opts(
            &model,
            batch,
            keywords,
            k,
            BatchOptions::new().deadline(hour),
        );
        assert_eq!(generous, unbounded, "a generous budget must be invisible (clustered)");
        let starved = clustered.query_batch_opts(
            &model,
            batch,
            keywords,
            k,
            BatchOptions::new().deadline(zero),
        );
        assert!(
            starved
                .iter()
                .zip(&unbounded)
                .all(|(r, want)| r.result.ranked.is_empty() && (r.deadline_expired || r == want)),
            "an expired budget must degrade every member (clustered)"
        );
    }
    println!("partial-results contract holds on the workload ({members} members/run)\n");

    // Overhead of the cooperative checks: identical serving loops, scratch
    // reuse and all, differing only in whether a (never-expiring) deadline
    // rides along. This is the committed, CI-gated number.
    let mut overhead_rows: Vec<RobustnessOverheadRow> = Vec::new();
    println!(
        "{:<16} {:>16} {:>15} {:>10}",
        "engine", "unbounded (ms)", "deadline (ms)", "overhead"
    );
    {
        // One shared scratch for both arms: separate arenas would let
        // allocation luck (cache aliasing decided at startup) bias an
        // entire run toward one arm.
        let scratch = std::cell::RefCell::new(socialscope_content::BatchScratch::default());
        let (wall_ms_unbounded, wall_ms_deadline) = interleaved_best(
            15,
            reps,
            || {
                let scratch = &mut *scratch.borrow_mut();
                for (keywords, batch) in queries.iter().zip(&batches) {
                    std::hint::black_box(
                        exact
                            .query_batch_opts(
                                batch,
                                keywords,
                                k,
                                BatchOptions::new().scratch(scratch),
                            )
                            .len(),
                    );
                }
            },
            || {
                let scratch = &mut *scratch.borrow_mut();
                for (keywords, batch) in queries.iter().zip(&batches) {
                    std::hint::black_box(
                        exact
                            .query_batch_opts(
                                batch,
                                keywords,
                                k,
                                BatchOptions::new().scratch(scratch).deadline(hour),
                            )
                            .len(),
                    );
                }
            },
        );
        overhead_rows.push(RobustnessOverheadRow {
            engine: "exact_index",
            wall_ms_unbounded,
            wall_ms_deadline,
        });

        let scratch = std::cell::RefCell::new(socialscope_content::BatchScratch::default());
        let (wall_ms_unbounded, wall_ms_deadline) = interleaved_best(
            15,
            reps,
            || {
                let scratch = &mut *scratch.borrow_mut();
                for (keywords, batch) in queries.iter().zip(&batches) {
                    std::hint::black_box(
                        clustered
                            .query_batch_opts(
                                &model,
                                batch,
                                keywords,
                                k,
                                BatchOptions::new().scratch(scratch),
                            )
                            .len(),
                    );
                }
            },
            || {
                let scratch = &mut *scratch.borrow_mut();
                for (keywords, batch) in queries.iter().zip(&batches) {
                    std::hint::black_box(
                        clustered
                            .query_batch_opts(
                                &model,
                                batch,
                                keywords,
                                k,
                                BatchOptions::new().scratch(scratch).deadline(hour),
                            )
                            .len(),
                    );
                }
            },
        );
        overhead_rows.push(RobustnessOverheadRow {
            engine: "clustered_index",
            wall_ms_unbounded,
            wall_ms_deadline,
        });
    }
    for row in &overhead_rows {
        println!(
            "{:<16} {:>16.3} {:>15.3} {:>9.2}%",
            row.engine,
            row.wall_ms_unbounded,
            row.wall_ms_deadline,
            row.overhead_pct()
        );
    }
    let headline =
        overhead_rows.iter().map(RobustnessOverheadRow::overhead_pct).fold(f64::MIN, f64::max);
    println!("\nheadline: cooperative deadline checks cost {headline:.2}% at worst");

    // Hit-rate chart: budgets as fractions of each engine's measured
    // unbounded per-call wall, served over *wide* batches — deadline
    // checks are chunk-granular, so a batch must span many chunks for a
    // mid-call expiry to be observable at all. Real-clock territory —
    // machine-dependent by design, emitted for the record and
    // schema-checked, never gated.
    const HIT_BATCH: usize = 4096;
    let hit_batches: Vec<Vec<socialscope_graph::NodeId>> = (0..queries.len())
        .map(|q| {
            (0..HIT_BATCH).map(|i| site.users[(q * HIT_BATCH + i) % site.users.len()]).collect()
        })
        .collect();
    let hit_members = queries.len() * HIT_BATCH;
    let exact_call_ms = best_of_three(1, || {
        for (keywords, batch) in queries.iter().zip(&hit_batches) {
            std::hint::black_box(exact.query_batch_opts(batch, keywords, k, BatchOptions::new()));
        }
    }) / queries.len().max(1) as f64;
    let clustered_call_ms = best_of_three(1, || {
        for (keywords, batch) in queries.iter().zip(&hit_batches) {
            std::hint::black_box(clustered.query_batch_opts(
                &model,
                batch,
                keywords,
                k,
                BatchOptions::new(),
            ));
        }
    }) / queries.len().max(1) as f64;
    let mut hit_rows: Vec<RobustnessHitRow> = Vec::new();
    println!(
        "\n{:<16} {:>9} {:>12} {:>9} {:>9} {:>9}",
        "engine", "fraction", "budget (ms)", "served", "members", "hit rate"
    );
    for &fraction in &ROBUSTNESS_BUDGET_FRACTIONS {
        for (engine, per_call_ms) in
            [("exact_index", exact_call_ms), ("clustered_index", clustered_call_ms)]
        {
            let budget_ms = per_call_ms * fraction;
            let budget = std::time::Duration::from_secs_f64(budget_ms / 1e3);
            let mut served = 0usize;
            for (keywords, batch) in queries.iter().zip(&hit_batches) {
                if engine == "exact_index" {
                    served += exact
                        .query_batch_opts(batch, keywords, k, BatchOptions::new().deadline(budget))
                        .iter()
                        .filter(|r| !r.deadline_expired)
                        .count();
                } else {
                    served += clustered
                        .query_batch_opts(
                            &model,
                            batch,
                            keywords,
                            k,
                            BatchOptions::new().deadline(budget),
                        )
                        .iter()
                        .filter(|r| !r.deadline_expired)
                        .count();
                }
            }
            println!(
                "{:<16} {:>9} {:>12.4} {:>9} {:>9} {:>8.1}%",
                engine,
                fraction,
                budget_ms,
                served,
                hit_members,
                100.0 * served as f64 / hit_members.max(1) as f64
            );
            hit_rows.push(RobustnessHitRow {
                engine,
                budget_fraction: fraction,
                budget_ms,
                served,
                members: hit_members,
            });
        }
    }

    let json = format!(
        "{{\"experiment\":\"E12_robustness_sweep\",\"seed\":7,\"scale\":{scale},\"k\":{k},\"queries_per_class\":{queries_per_class},\"repetitions\":{reps},\"site_users\":{},\"batch_size\":{BATCH_SIZE},\"hit_batch_size\":{HIT_BATCH},\"workload_members\":{members},\"contract\":{{\"generous_budget_identical\":true,\"expired_budget_all_degraded\":true,\"partial_results_subset\":true}},\"budget_fractions\":[{}],\"overhead\":[{}],\"hit_rates\":[{}],\"headline\":{{\"metric\":\"deadline_check_overhead_pct\",\"overhead_pct\":{headline:.2}}}}}\n",
        site.users.len(),
        ROBUSTNESS_BUDGET_FRACTIONS.map(|f| f.to_string()).join(","),
        overhead_rows.iter().map(RobustnessOverheadRow::to_json).collect::<Vec<_>>().join(","),
        hit_rows.iter().map(RobustnessHitRow::to_json).collect::<Vec<_>>().join(",")
    );
    write_json_out(out.as_deref(), &json);
}

/// E11 — live index maintenance: for each event-batch size in
/// [`UPDATE_FRACTIONS`] (fractions of the site's assignment volume), a
/// deterministic tag-event stream (Zipf-skewed assigns mixed with retracts
/// of live assignments) is absorbed two ways — `*Index::apply` patching
/// pre-cloned indexes in place, versus rebuilding the index from scratch.
/// Both strategies start from the already-updated site model (the
/// `SiteModel::apply` cost is common to both, so it stays outside the
/// timed region), and the wall-time ratio is the measured maintenance
/// gain. Before anything is timed, the
/// maintained index is asserted identical to the rebuilt one (stats plus a
/// standard-keyword query sweep over the whole population): the
/// delta ≡ rebuild contract is checked on the measured workload itself.
/// Emits a JSON run object (`BENCH_update.json` when `--out` points there).
fn update_sweep(args: &[String]) {
    let mut scale = 200usize;
    let mut reps = 10usize;
    let mut k = 10usize;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => scale = parse_num("--scale", value("--scale")),
            "--reps" => reps = parse_num("--reps", value("--reps")),
            "--k" => k = parse_num("--k", value("--k")),
            "--out" => out = Some(value("--out").clone()),
            other => {
                fail(&format!("unknown update flag `{other}` (expected --scale/--reps/--k/--out)"))
            }
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }

    heading(&format!("E11 / live index maintenance at scale {scale} (k={k}, {reps} reps)"));
    let site = site_at_scale(scale);
    let model = SiteModel::from_graph(&site.graph);
    let assignments: usize = model.tag_assignments().map(|(_, _, taggers)| taggers.len()).sum();
    let keywords = standard_keywords();

    let exact = ExactIndex::builder(&model).build();
    let clustered = ClusteredIndex::builder(&model)
        .clustering(NetworkBasedClustering.cluster(&model, 0.3))
        .build();

    let mut rows: Vec<UpdateRow> = Vec::new();
    println!("{assignments} tag assignments on site");
    println!(
        "{:<16} {:>9} {:>8} {:>9} {:>13} {:>14} {:>9}",
        "index", "fraction", "events", "changed", "apply (ms)", "rebuild (ms)", "speedup"
    );
    for &fraction in &UPDATE_FRACTIONS {
        let wanted = ((assignments as f64) * fraction).round().max(1.0) as usize;
        let events = generate_events(
            &model,
            &EventStreamConfig {
                events: wanted,
                retract_fraction: 0.3,
                seed: 7,
                ..Default::default()
            },
        );
        let mut updated = model.clone();
        let effective = updated.apply(&events);
        assert!(effective > 0, "event stream must touch the site");

        // Delta ≡ rebuild, asserted on the measured workload before any
        // timing: stats plus a full-population query sweep per index.
        let mut maintained_exact = exact.clone();
        let exact_report = maintained_exact.apply(&updated, &events);
        let rebuilt_exact = ExactIndex::builder(&updated).build();
        assert_eq!(maintained_exact.stats(), rebuilt_exact.stats(), "exact delta diverged");
        let mut maintained_clustered = clustered.clone();
        let clustered_report = maintained_clustered.apply(&updated, &events);
        let rebuilt_clustered = ClusteredIndex::builder(&updated)
            .clustering(NetworkBasedClustering.cluster(&updated, 0.3))
            .build();
        assert_eq!(
            maintained_clustered.stats_with_refinement(),
            rebuilt_clustered.stats_with_refinement(),
            "clustered delta diverged"
        );
        for &u in &site.users {
            assert_eq!(
                maintained_exact.query(u, &keywords, k),
                rebuilt_exact.query(u, &keywords, k),
                "exact delta query diverged"
            );
            assert_eq!(
                maintained_clustered.query(&updated, u, &keywords, k),
                rebuilt_clustered.query(&updated, u, &keywords, k),
                "clustered delta query diverged"
            );
        }

        // Both maintenance strategies start from the already-updated site
        // model (rebuilding an index needs it just as much as patching
        // one), so the timed region is the *index* work only. The apply
        // mutates, so each timed run consumes a pre-built index clone;
        // best-of-three over `reps` runs needs 3 × reps of them.
        let mut exact_pool: Vec<ExactIndex> = (0..3 * reps).map(|_| exact.clone()).collect();
        let wall_ms_apply = best_of_three(reps, || {
            let mut ix = exact_pool.pop().expect("clone pool sized to 3 × reps");
            std::hint::black_box(ix.apply(&updated, &events).changed_entries);
        });
        let wall_ms_rebuild = best_of_three(reps, || {
            std::hint::black_box(ExactIndex::builder(&updated).build().stats().entries);
        });
        rows.push(UpdateRow {
            index: "exact",
            fraction,
            events: events.len(),
            changed_entries: exact_report.changed_entries,
            wall_ms_apply,
            wall_ms_rebuild,
        });

        let mut clustered_pool: Vec<ClusteredIndex> =
            (0..3 * reps).map(|_| clustered.clone()).collect();
        let wall_ms_apply = best_of_three(reps, || {
            let mut ix = clustered_pool.pop().expect("clone pool sized to 3 × reps");
            std::hint::black_box(ix.apply(&updated, &events).changed_entries);
        });
        let wall_ms_rebuild = best_of_three(reps, || {
            let clustering = NetworkBasedClustering.cluster(&updated, 0.3);
            std::hint::black_box(
                ClusteredIndex::builder(&updated).clustering(clustering).build().stats().entries,
            );
        });
        rows.push(UpdateRow {
            index: "clustered",
            fraction,
            events: events.len(),
            changed_entries: clustered_report.changed_entries,
            wall_ms_apply,
            wall_ms_rebuild,
        });

        for row in rows.iter().rev().take(2).rev() {
            println!(
                "{:<16} {:>9} {:>8} {:>9} {:>13.3} {:>14.3} {:>8.2}x",
                row.index,
                row.fraction,
                row.events,
                row.changed_entries,
                row.wall_ms_apply,
                row.wall_ms_rebuild,
                row.speedup()
            );
        }
    }

    // Headline: the exact index at the 1% event batch — the steady-state
    // maintenance unit the README quotes and CI gates.
    let headline = rows
        .iter()
        .find(|r| r.index == "exact" && r.fraction == 0.01)
        .map(UpdateRow::speedup)
        .unwrap_or(0.0);
    println!(
        "\nheadline: exact index applies a 1% event batch {headline:.2}x faster than a rebuild"
    );

    let json = format!(
        "{{\"experiment\":\"E11_update_sweep\",\"seed\":7,\"scale\":{scale},\"k\":{k},\"repetitions\":{reps},\"site_users\":{},\"tag_assignments\":{assignments},\"retract_fraction\":0.3,\"fractions\":[{}],\"rows\":[{}],\"headline\":{{\"index\":\"exact\",\"fraction\":0.01,\"speedup\":{headline:.2}}}}}\n",
        site.users.len(),
        UPDATE_FRACTIONS.map(|f| f.to_string()).join(","),
        rows.iter().map(UpdateRow::to_json).collect::<Vec<_>>().join(",")
    );
    write_json_out(out.as_deref(), &json);
}

/// The micro-batching windows E13 sweeps, in microseconds. Window 0 is
/// the per-request baseline (same machinery, no coalescing).
const SERVING_WINDOWS_US: [u64; 4] = [0, 500, 2000, 5000];

/// One measured serving configuration of E13.
struct ServingRow {
    window_us: u64,
    offered_rps: f64,
    completed: usize,
    failed: usize,
    degraded: usize,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

impl ServingRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"window_us\":{},\"offered_rps\":{:.1},\"completed\":{},\"failed\":{},\"degraded\":{},\"throughput_rps\":{:.1},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
            self.window_us,
            self.offered_rps,
            self.completed,
            self.failed,
            self.degraded,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us
        )
    }
}

/// The keyword sets E13's load rotates over: few enough that the batcher
/// can actually coalesce requests by resolved keyword set, varied enough
/// that one engine batch call does not serve the whole run.
fn serving_keyword_sets() -> Vec<Vec<String>> {
    let standard = standard_keywords();
    vec![standard.clone(), vec![standard[0].clone()], standard[1..].to_vec()]
}

/// The wire contract, asserted over real sockets before anything is
/// timed: HTTP round-trips answer identically to direct engine calls, a
/// valid apply commits (and is visible to subsequent queries), a
/// malformed apply is refused with a typed error and changes nothing,
/// and an exhausted deadline budget comes back as an in-band degraded
/// 200.
fn serving_contract(
    exec: &socialscope_exec::Exec,
    engine: &ClusteredNetworkAwareSearch,
    users: &[socialscope_graph::NodeId],
    items: &[socialscope_graph::NodeId],
    k: usize,
) {
    // A shadow copy of the engine answers "what should the server say".
    let mut shadow = engine.clone();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        window: Duration::from_micros(500),
        slo: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let handle = socialscope_server::spawn(config, engine.clone(), *exec)
        .unwrap_or_else(|e| fail_io(&format!("cannot boot contract server: {e}")));
    let addr = handle.addr();
    let keyword_sets = serving_keyword_sets();

    let query_server = |seeker: socialscope_graph::NodeId, keywords: &[String]| -> QueryResponse {
        let body = QueryRequest::new(seeker, keywords.to_vec(), k).to_json();
        let (status, body) =
            post(addr, "/query", &body).unwrap_or_else(|e| fail_io(&format!("query failed: {e}")));
        assert_eq!(status, 200, "contract query must answer 200, got {status}: {body}");
        QueryResponse::from_json(&body)
            .unwrap_or_else(|e| fail_io(&format!("unparseable response: {e}")))
    };
    let assert_matches_shadow = |shadow: &ClusteredNetworkAwareSearch, label: &str| {
        for keywords in &keyword_sets {
            for &seeker in users.iter().take(6).chain([socialscope_graph::NodeId(u64::MAX)].iter())
            {
                let response = query_server(seeker, keywords);
                assert!(!response.degraded, "generous-budget contract query degraded ({label})");
                let direct =
                    shadow.query_batch_opts(&[seeker], keywords, k, BatchOptions::new().exec(exec));
                let want: Vec<(socialscope_graph::NodeId, f64)> =
                    direct[0].result.ranked.iter().filter(|(_, s)| *s > 0.0).copied().collect();
                let got: Vec<(socialscope_graph::NodeId, f64)> =
                    response.results.iter().map(|r| (r.item, r.score)).collect();
                assert_eq!(got, want, "server round-trip diverged from engine ({label})");
                assert_eq!(response.unclustered, direct[0].unclustered, "flag diverged ({label})");
            }
        }
    };
    assert_matches_shadow(&shadow, "pre-apply");

    // A malformed apply (unknown op) is refused with a typed 400 before
    // it reaches the engine, and leaves every subsequent query exactly
    // where it was. (An engine-level rejection → 409 rollback needs an
    // injected fault — the engines welcome unknown taggers as late
    // joiners — and is asserted in the server's failpoints tests.)
    let bad = "{\"version\":1,\"events\":[{\"op\":\"obliterate\",\"tagger\":1,\"item\":2,\"tag\":\"x\"}]}";
    let (status, body) =
        post(addr, "/apply", bad).unwrap_or_else(|e| fail_io(&format!("apply failed: {e}")));
    assert_eq!(status, 400, "malformed apply must answer 400, got {status}: {body}");
    assert!(body.contains("bad_request"), "400 must carry the typed error: {body}");
    assert_matches_shadow(&shadow, "post-refusal");

    // A valid apply commits, reports its effect, and is visible to every
    // query admitted afterwards.
    let good = [TagEvent::assign(users[0], items[0], "serving")];
    let (status, body) = post(addr, "/apply", &ApplyRequest::new(&good).to_json())
        .unwrap_or_else(|e| fail_io(&format!("apply failed: {e}")));
    assert_eq!(status, 200, "valid apply must answer 200, got {status}: {body}");
    let shadow_report =
        shadow.try_apply_with(exec, &good).expect("shadow engine accepts the valid events");
    let applied = socialscope_content::wire::ApplyResponse::from_json(&body)
        .unwrap_or_else(|e| fail_io(&format!("unparseable apply response: {e}")));
    assert_eq!(applied.changed_entries, shadow_report.changed_entries, "apply report diverged");
    assert_matches_shadow(&shadow, "post-apply");
    handle.shutdown();

    // Degradation is in-band: a window longer than the SLO leaves zero
    // budget at flush time, and the engine's defined partial result comes
    // back as HTTP 200 with the degraded marker — not as an error.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        window: Duration::from_millis(60),
        slo: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let handle = socialscope_server::spawn(config, engine.clone(), *exec)
        .unwrap_or_else(|e| fail_io(&format!("cannot boot degraded-contract server: {e}")));
    let body = QueryRequest::new(users[0], keyword_sets[0].clone(), k).to_json();
    let (status, body) = post(handle.addr(), "/query", &body)
        .unwrap_or_else(|e| fail_io(&format!("degraded query failed: {e}")));
    assert_eq!(status, 200, "degraded responses are 200s, got {status}: {body}");
    let response = QueryResponse::from_json(&body)
        .unwrap_or_else(|e| fail_io(&format!("unparseable degraded response: {e}")));
    assert!(response.degraded, "expired budget must set the degraded marker: {body}");
    handle.shutdown();
}

/// E13 — the serving-front sweep: boot `socialscope_server` in-process
/// over the clustered engine (exact fallback attached), measure its
/// window-0 per-request capacity with a burst, then drive every
/// micro-batching window open-loop at 1.5× that capacity — a rate the
/// per-request path cannot sustain, so the sweep shows what the batching
/// window buys at the tail. Latency percentiles are measured from each
/// request's *scheduled* arrival (queue wait included). The wire contract
/// is asserted before anything is timed. Emits a JSON run object
/// (`BENCH_serving.json` when `--out` points there).
fn serving_sweep(args: &[String]) {
    let mut scale = 200usize;
    let mut requests = 8000usize;
    let mut conns = 128usize;
    let mut slo_ms = 50u64;
    let mut k = 10usize;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => scale = parse_num("--scale", value("--scale")),
            "--requests" => requests = parse_num("--requests", value("--requests")),
            "--conns" => conns = parse_num("--conns", value("--conns")),
            "--slo-ms" => slo_ms = parse_num("--slo-ms", value("--slo-ms")),
            "--k" => k = parse_num("--k", value("--k")),
            "--out" => out = Some(value("--out").clone()),
            other => fail(&format!(
                "unknown serving flag `{other}` (expected --scale/--requests/--conns/--slo-ms/--k/--out)"
            )),
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }
    if requests == 0 {
        fail("--requests must be at least 1");
    }
    if conns == 0 {
        fail("--conns must be at least 1");
    }
    if slo_ms == 0 {
        fail("--slo-ms must be at least 1");
    }

    heading(&format!(
        "E13 / serving front at scale {scale} ({requests} requests, {conns} connections, SLO {slo_ms}ms)"
    ));
    let exec = socialscope_exec::Exec::auto();
    let site = site_at_scale(scale);
    let engine =
        ClusteredNetworkAwareSearch::build_with(&exec, &site.graph, &NetworkBasedClustering, 0.3)
            .with_exact_fallback();

    // Contract before timing: if the serving path is wrong, a fast wrong
    // answer must not make it into the artifact.
    serving_contract(&exec, &engine, &site.users, &site.items, k);
    println!("contract: round-trip ≡ engine, apply rollback, in-band degradation — ok");

    let keyword_sets = serving_keyword_sets();
    let plan_requests: Vec<PlannedRequest> = (0..requests)
        .map(|i| PlannedRequest {
            path: "/query",
            body: QueryRequest::new(
                site.users[i % site.users.len()],
                keyword_sets[i % keyword_sets.len()].clone(),
                k,
            )
            .to_json(),
        })
        .collect();
    let slo = Duration::from_millis(slo_ms);
    let boot = |window_us: u64| {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            window: Duration::from_micros(window_us),
            slo,
            ..ServerConfig::default()
        };
        socialscope_server::spawn(config, engine.clone(), exec)
            .unwrap_or_else(|e| fail_io(&format!("cannot boot server: {e}")))
    };

    // Capacity probe: everything scheduled at t = 0 against the
    // per-request (window 0) server — the completion rate of the burst is
    // what per-request serving can actually sustain.
    let probe = boot(0);
    let burst = LoadPlan { rate_rps: f64::INFINITY, conns, requests: plan_requests.clone() };
    let capacity = run_load(probe.addr(), &burst);
    probe.shutdown();
    assert!(capacity.completed > 0, "capacity probe served nothing");
    let capacity_rps = capacity.throughput_rps();
    let offered_rps = capacity_rps * 1.5;
    println!(
        "capacity probe: {:.0} req/s per-request; offering {:.0} req/s (1.5x)",
        capacity_rps, offered_rps
    );

    let mut rows: Vec<ServingRow> = Vec::new();
    println!(
        "\n{:>10} {:>12} {:>10} {:>8} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "window", "offered", "completed", "failed", "degraded", "throughput", "p50", "p99", "p99.9"
    );
    for &window_us in &SERVING_WINDOWS_US {
        let server = boot(window_us);
        let plan = LoadPlan { rate_rps: offered_rps, conns, requests: plan_requests.clone() };
        let summary = run_load(server.addr(), &plan);
        server.shutdown();
        assert_eq!(
            summary.completed + summary.failed,
            requests,
            "every planned request must be accounted for"
        );
        let row = ServingRow {
            window_us,
            offered_rps,
            completed: summary.completed,
            failed: summary.failed,
            degraded: summary.degraded,
            throughput_rps: summary.throughput_rps(),
            p50_us: summary.percentile_us(50.0),
            p99_us: summary.percentile_us(99.0),
            p999_us: summary.percentile_us(99.9),
        };
        println!(
            "{:>8}us {:>10.0}/s {:>10} {:>8} {:>9} {:>10.0}/s {:>8}us {:>8}us {:>8}us",
            row.window_us,
            row.offered_rps,
            row.completed,
            row.failed,
            row.degraded,
            row.throughput_rps,
            row.p50_us,
            row.p99_us,
            row.p999_us
        );
        rows.push(row);
    }

    // Headline: the batched row that beats per-request serving on
    // throughput without giving up the tail. Machine noise can deny one
    // on a loaded CI box, so the flag is emitted honestly and gated only
    // on the committed artifact.
    let baseline = &rows[0];
    let winner = rows
        .iter()
        .filter(|r| r.window_us > 0)
        .filter(|r| r.throughput_rps >= baseline.throughput_rps && r.p99_us <= baseline.p99_us)
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps));
    let best_batched = winner.unwrap_or_else(|| {
        rows.iter()
            .filter(|r| r.window_us > 0)
            .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
            .expect("sweep contains batched windows")
    });
    let beats = winner.is_some();
    println!(
        "\nheadline: window {}us serves {:.0} req/s at p99 {}us vs per-request {:.0} req/s at p99 {}us ({})",
        best_batched.window_us,
        best_batched.throughput_rps,
        best_batched.p99_us,
        baseline.throughput_rps,
        baseline.p99_us,
        if beats { "micro-batching wins" } else { "no win on this run" }
    );

    let json = format!(
        "{{\"experiment\":\"E13_serving_sweep\",\"seed\":7,\"scale\":{scale},\"k\":{k},\"requests\":{requests},\"conns\":{conns},\"slo_ms\":{slo_ms},\"site_users\":{},\"contract\":{{\"roundtrip_identical\":true,\"apply_visible\":true,\"malformed_apply_typed\":true,\"degraded_in_band\":true}},\"windows_us\":[{}],\"capacity_rps\":{capacity_rps:.1},\"offered_rps\":{offered_rps:.1},\"rows\":[{}],\"headline\":{{\"window_us\":{},\"throughput_rps\":{:.1},\"p50_us\":{},\"p99_us\":{},\"baseline_throughput_rps\":{:.1},\"baseline_p50_us\":{},\"baseline_p99_us\":{},\"beats_per_request\":{}}}}}\n",
        site.users.len(),
        SERVING_WINDOWS_US.map(|w| w.to_string()).join(","),
        rows.iter().map(ServingRow::to_json).collect::<Vec<_>>().join(","),
        best_batched.window_us,
        best_batched.throughput_rps,
        best_batched.p50_us,
        best_batched.p99_us,
        baseline.throughput_rps,
        baseline.p50_us,
        baseline.p99_us,
        beats
    );
    write_json_out(out.as_deref(), &json);
}

/// The largest user scale `scale` accepts: past 10^6 the raw layout alone
/// would not fit a development machine, so anything bigger is a typo.
const SCALE_MAX_USERS: usize = 1_000_000;

/// Parse `scale`'s `--scale` comma list with upfront bounds checks:
/// `Err(reason)` on an empty list, a non-integer, a zero, or a scale past
/// [`SCALE_MAX_USERS`].
fn scale_list_error(value: &str) -> Result<Vec<usize>, String> {
    let mut scales = Vec::new();
    for part in value.split(',') {
        let scale: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("--scale takes comma-separated user counts, got `{part}`"))?;
        if scale == 0 {
            return Err("--scale user counts must be at least 1".to_string());
        }
        if scale > SCALE_MAX_USERS {
            return Err(format!(
                "--scale {scale} exceeds the supported maximum of {SCALE_MAX_USERS} users"
            ));
        }
        scales.push(scale);
    }
    if scales.is_empty() {
        return Err("--scale needs at least one user count".to_string());
    }
    Ok(scales)
}

/// Parse `scale`'s `--layout` value: `raw`, `compressed` or `both`.
fn layout_list_error(value: &str) -> Result<Vec<Layout>, String> {
    match value {
        "raw" => Ok(vec![Layout::Raw]),
        "compressed" => Ok(vec![Layout::Compressed]),
        "both" => Ok(vec![Layout::Raw, Layout::Compressed]),
        other => Err(format!("--layout takes raw|compressed|both, got `{other}`")),
    }
}

/// One measured scale × layout configuration of the E14 sweep.
struct ScaleRow {
    scale: usize,
    layout: &'static str,
    entries: usize,
    exact_build_ms: f64,
    clustered_build_ms: f64,
    exact_heap_bytes: usize,
    clustered_heap_bytes: usize,
    bytes_per_user: f64,
    exact_query_us: f64,
    clustered_query_us: f64,
    batch_qps: f64,
}

impl ScaleRow {
    /// Mean single-query latency across both engines — the gated metric.
    fn single_query_us(&self) -> f64 {
        (self.exact_query_us + self.clustered_query_us) / 2.0
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"scale\":{},\"layout\":\"{}\",\"entries\":{},\"exact_build_ms\":{:.1},\"clustered_build_ms\":{:.1},\"exact_heap_bytes\":{},\"clustered_heap_bytes\":{},\"heap_bytes\":{},\"bytes_per_user\":{:.1},\"exact_query_us\":{:.2},\"clustered_query_us\":{:.2},\"single_query_us\":{:.2},\"batch_qps\":{:.0}}}",
            self.scale,
            self.layout,
            self.entries,
            self.exact_build_ms,
            self.clustered_build_ms,
            self.exact_heap_bytes,
            self.clustered_heap_bytes,
            self.exact_heap_bytes + self.clustered_heap_bytes,
            self.bytes_per_user,
            self.exact_query_us,
            self.clustered_query_us,
            self.single_query_us(),
            self.batch_qps
        )
    }
}

/// The display name of a layout in E14 output.
const fn layout_name(layout: Layout) -> &'static str {
    match layout {
        Layout::Raw => "raw",
        Layout::Compressed => "compressed",
    }
}

/// E14 — the memory-scaling sweep: for each user scale (sites from the
/// `SiteConfig::at_scale` presets — Zipf-skewed tag popularity, tapered
/// per-user activity) and each requested posting layout, build the exact
/// and clustered indexes, record measured heap bytes per user and build
/// wall time, then serve a bursty per-class query mix through the
/// single-query and batched paths. When both layouts run, compressed
/// results are asserted identical to raw (single and batched) before
/// anything is timed, and the headline compares bytes/user, single-query
/// latency and batch throughput at the largest scale.
fn scale_sweep(args: &[String]) {
    let mut scales: Vec<usize> = vec![10_000, 100_000];
    let mut layouts: Vec<Layout> = vec![Layout::Raw, Layout::Compressed];
    let mut k = 10usize;
    let mut reps = 3usize;
    let mut probe_users = 64usize;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match flag.as_str() {
            "--scale" => {
                scales = scale_list_error(value("--scale")).unwrap_or_else(|e| fail(&e));
            }
            "--layout" => {
                layouts = layout_list_error(value("--layout")).unwrap_or_else(|e| fail(&e));
            }
            "--k" => k = parse_num("--k", value("--k")),
            "--reps" => reps = parse_num("--reps", value("--reps")),
            "--users" => probe_users = parse_num("--users", value("--users")),
            "--out" => out = Some(value("--out").clone()),
            other => fail(&format!(
                "unknown scale flag `{other}` (expected --scale/--layout/--k/--reps/--users/--out)"
            )),
        }
    }
    if let Some(path) = &out {
        validate_out_path(path);
    }

    heading(&format!(
        "E14 / §6.2 — Memory scaling at {} users ({} probes × {reps} reps, k={k})",
        scales.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("/"),
        probe_users
    ));

    let mut rows: Vec<ScaleRow> = Vec::new();
    println!(
        "{:<9} {:<11} {:>11} {:>12} {:>14} {:>13} {:>9} {:>9} {:>10}",
        "scale",
        "layout",
        "entries",
        "build (ms)",
        "heap (MiB)",
        "bytes/user",
        "exact us",
        "clust us",
        "batch qps"
    );
    for &scale in &scales {
        let site = generate_site(&SiteConfig::at_scale(scale));
        let model = SiteModel::from_graph(&site.graph);
        let clustering = NetworkBasedClustering.cluster(&model, 0.3);

        // The E14 workload: a bursty per-class query mix (40-query runs of
        // one class, the correlated traffic shape of a live site), probed
        // from users spread across the whole population.
        let mut gen = QueryLogGenerator::new(QueryLogConfig {
            queries: 512,
            burst_length: 40,
            seed: 7,
            ..Default::default()
        });
        // Keep only keyword sets that touch at least one tag the site
        // knows: all-miss queries terminate at dispatch and would let the
        // latency ratio measure function-call overhead instead of the
        // layouts' decode paths.
        let known: std::collections::HashSet<&str> = model.tags().collect();
        let queries: Vec<Vec<String>> = gen
            .generate_bursty()
            .iter()
            .map(|q| keywords_of(q))
            .filter(|kw| kw.iter().any(|w| known.contains(w.as_str())))
            .take(24)
            .collect();
        assert!(!queries.is_empty(), "E14 needs at least one index-hitting keyword set");
        let stride = (site.users.len() / probe_users).max(1);
        let probes: Vec<socialscope_graph::NodeId> =
            site.users.iter().copied().step_by(stride).take(probe_users).collect();
        let batch_size = 32.min(probes.len().max(1));

        // Build once per layout; identity across layouts is asserted below
        // before any timing, so every measured number is for an index that
        // provably answers like the raw one.
        let mut built: Vec<(Layout, ExactIndex, ClusteredIndex, f64, f64)> = Vec::new();
        for &layout in &layouts {
            let t = Instant::now();
            let exact = ExactIndex::builder(&model).layout(layout).build();
            let exact_build_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let clustered = ClusteredIndex::builder(&model)
                .clustering(clustering.clone())
                .layout(layout)
                .build();
            let clustered_build_ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(exact.layout(), layout);
            assert_eq!(clustered.layout(), layout);
            built.push((layout, exact, clustered, exact_build_ms, clustered_build_ms));
        }
        if let [(_, raw_exact, raw_clustered, ..), (_, packed_exact, packed_clustered, ..)] =
            &built[..]
        {
            for kw in &queries {
                for &u in &probes {
                    assert_eq!(
                        raw_exact.query(u, kw, k),
                        packed_exact.query(u, kw, k),
                        "compressed exact diverged from raw"
                    );
                    assert_eq!(
                        raw_clustered.query(&model, u, kw, k),
                        packed_clustered.query(&model, u, kw, k),
                        "compressed clustered diverged from raw"
                    );
                }
                let batch = &probes[..batch_size];
                assert_eq!(
                    raw_exact.query_batch_opts(batch, kw, k, BatchOptions::new()),
                    packed_exact.query_batch_opts(batch, kw, k, BatchOptions::new()),
                    "compressed exact batch diverged from raw"
                );
            }
        }

        // Interleave the timing rounds across layouts: the gated numbers
        // are Raw-vs-Compressed *ratios*, and timing one layout's full
        // sweep before the other lets a background hiccup (shared vCPU,
        // frequency drift) land entirely on one side of the ratio. One
        // round per rep touches every layout back to back; each layout
        // keeps its best (minimum) round.
        let mut best_ms = vec![[f64::INFINITY; 3]; built.len()];
        let mut scratch = socialscope_content::BatchScratch::default();
        for _ in 0..reps.max(1) {
            for (bi, (_, exact, clustered, ..)) in built.iter().enumerate() {
                let t = Instant::now();
                for kw in &queries {
                    for &u in &probes {
                        std::hint::black_box(exact.query(u, kw, k).ranked.len());
                    }
                }
                best_ms[bi][0] = best_ms[bi][0].min(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                for kw in &queries {
                    for &u in &probes {
                        std::hint::black_box(clustered.query(&model, u, kw, k).result.ranked.len());
                    }
                }
                best_ms[bi][1] = best_ms[bi][1].min(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                for kw in &queries {
                    std::hint::black_box(
                        exact
                            .query_batch_opts(
                                &probes[..batch_size],
                                kw,
                                k,
                                BatchOptions::new().scratch(&mut scratch),
                            )
                            .len(),
                    );
                }
                best_ms[bi][2] = best_ms[bi][2].min(t.elapsed().as_secs_f64() * 1e3);
            }
        }

        for (bi, (layout, exact, clustered, exact_build_ms, clustered_build_ms)) in
            built.into_iter().enumerate()
        {
            let exact_heap_bytes = exact.memory_profile().total();
            let clustered_heap_bytes = clustered.memory_profile().total();
            let entries = exact.stats().entries;
            let bytes_per_user =
                (exact_heap_bytes + clustered_heap_bytes) as f64 / site.users.len() as f64;

            let per_query = 1e3 / (queries.len() * probes.len()) as f64;
            let exact_query_us = per_query * best_ms[bi][0];
            let clustered_query_us = per_query * best_ms[bi][1];
            let batch_qps = (queries.len() * batch_size) as f64 / (best_ms[bi][2] / 1e3);

            let row = ScaleRow {
                scale,
                layout: layout_name(layout),
                entries,
                exact_build_ms,
                clustered_build_ms,
                exact_heap_bytes,
                clustered_heap_bytes,
                bytes_per_user,
                exact_query_us,
                clustered_query_us,
                batch_qps,
            };
            println!(
                "{:<9} {:<11} {:>11} {:>12.1} {:>14.1} {:>13.1} {:>9.2} {:>9.2} {:>10.0}",
                row.scale,
                row.layout,
                row.entries,
                row.exact_build_ms + row.clustered_build_ms,
                (row.exact_heap_bytes + row.clustered_heap_bytes) as f64 / (1 << 20) as f64,
                row.bytes_per_user,
                row.exact_query_us,
                row.clustered_query_us,
                row.batch_qps
            );
            rows.push(row);
        }
    }

    // Headline: Raw vs Compressed at the largest scale that ran both.
    let headline = scales
        .iter()
        .rev()
        .find_map(|&scale| {
            let raw = rows.iter().find(|r| r.scale == scale && r.layout == "raw")?;
            let packed = rows.iter().find(|r| r.scale == scale && r.layout == "compressed")?;
            let saving = raw.bytes_per_user / packed.bytes_per_user;
            let regression_pct =
                (packed.single_query_us() / raw.single_query_us() - 1.0) * 100.0;
            let batch_ratio = packed.batch_qps / raw.batch_qps;
            println!(
                "\nheadline: scale {scale} — {:.2}x bytes/user saving ({:.1} -> {:.1}), single-query {:+.1}%, batch throughput x{:.3}",
                saving, raw.bytes_per_user, packed.bytes_per_user, regression_pct, batch_ratio
            );
            Some(format!(
                "{{\"scale\":{scale},\"raw_bytes_per_user\":{:.1},\"compressed_bytes_per_user\":{:.1},\"bytes_per_user_saving\":{:.2},\"single_query_regression_pct\":{:.1},\"batch_throughput_ratio\":{:.3}}}",
                raw.bytes_per_user, packed.bytes_per_user, saving, regression_pct, batch_ratio
            ))
        })
        .unwrap_or_else(|| "null".to_string());

    let json = format!(
        "{{\"experiment\":\"E14_scale_sweep\",\"seed\":7,\"k\":{k},\"repetitions\":{reps},\"probe_users\":{probe_users},\"scales\":[{}],\"layouts\":[{}],\"identity_checked\":{},\"rows\":[{}],\"headline\":{headline}}}\n",
        scales.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
        layouts.iter().map(|&l| format!("\"{}\"", layout_name(l))).collect::<Vec<_>>().join(","),
        layouts.len() == 2,
        rows.iter().map(ScaleRow::to_json).collect::<Vec<_>>().join(",")
    );
    write_json_out(out.as_deref(), &json);
}

#[cfg(test)]
mod scale_flag_tests {
    use super::{layout_list_error, scale_list_error, Layout};

    #[test]
    fn scale_lists_parse_and_enforce_bounds() {
        assert_eq!(scale_list_error("1000").unwrap(), vec![1000]);
        assert_eq!(scale_list_error("10000,100000").unwrap(), vec![10_000, 100_000]);
        assert_eq!(scale_list_error(" 200 , 400 ").unwrap(), vec![200, 400]);
        assert_eq!(scale_list_error("1000000").unwrap(), vec![1_000_000]);
    }

    #[test]
    fn zero_garbage_and_oversized_scales_are_rejected() {
        assert!(scale_list_error("0").is_err(), "zero users is not a site");
        assert!(scale_list_error("100,0").is_err(), "zero hidden in a list");
        assert!(scale_list_error("ten").is_err(), "garbage must be rejected");
        assert!(scale_list_error("100,,200").is_err(), "empty list slot");
        assert!(scale_list_error("").is_err(), "empty value");
        assert!(scale_list_error("-5").is_err(), "negative values");
        assert!(scale_list_error("1000001").is_err(), "past the 10^6 ceiling");
    }

    #[test]
    fn layout_values_parse_and_reject_garbage() {
        assert_eq!(layout_list_error("raw").unwrap(), vec![Layout::Raw]);
        assert_eq!(layout_list_error("compressed").unwrap(), vec![Layout::Compressed]);
        assert_eq!(layout_list_error("both").unwrap(), vec![Layout::Raw, Layout::Compressed]);
        assert!(layout_list_error("packed").is_err());
        assert!(layout_list_error("").is_err());
        assert!(layout_list_error("RAW").is_err(), "values are case-sensitive like every flag");
    }
}

#[cfg(test)]
mod out_path_tests {
    use super::out_path_error;

    #[test]
    fn empty_and_whitespace_out_paths_are_rejected() {
        assert!(out_path_error("").is_some(), "empty path must be rejected");
        assert!(out_path_error("  ").is_some(), "whitespace path must be rejected");
    }

    #[test]
    fn directories_and_missing_parents_are_rejected() {
        assert!(out_path_error(".").is_some(), "a directory is not a file destination");
        assert!(out_path_error("no/such/dir/bench.json").is_some());
    }

    #[test]
    fn writable_destinations_pass() {
        assert!(out_path_error("bench.json").is_none());
        assert!(out_path_error("./bench.json").is_none());
    }
}
