//! An open-loop HTTP load generator for the serving front (E13).
//!
//! Open-loop means arrivals are *scheduled*: request `i` of a run at rate
//! `r` is due at `i / r` seconds after the start, whether or not earlier
//! requests have finished, and its latency is measured **from its
//! scheduled arrival time** — so time a request spends waiting behind a
//! slow server counts against the server, not silently against the
//! offered load. This is the discipline that exposes queueing collapse:
//! a closed-loop client slows its own arrival rate exactly when the
//! server saturates, flattering the tail.
//!
//! The generator drives a fixed pool of keep-alive connections (one
//! thread each, requests pre-dealt round-robin), which bounds client-side
//! concurrency the way a production connection pool would; scheduled
//! arrivals plus scheduled-time latency keep the open-loop semantics.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One planned request: its target path and its JSON body.
#[derive(Debug, Clone)]
pub struct PlannedRequest {
    /// Request path, e.g. `/query`.
    pub path: &'static str,
    /// JSON body to POST.
    pub body: String,
}

/// A load-generation plan: offered rate, connection pool size, and the
/// request sequence (dealt round-robin over the pool in order).
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Offered arrival rate in requests/second; `f64::INFINITY` schedules
    /// every request at t = 0 (a burst — the capacity probe).
    pub rate_rps: f64,
    /// Keep-alive connections (one client thread each).
    pub conns: usize,
    /// The request sequence.
    pub requests: Vec<PlannedRequest>,
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Requests answered with HTTP 200.
    pub completed: usize,
    /// Requests that failed (non-200 status, I/O error, or a connection
    /// that died mid-run; every planned request counts exactly once).
    pub failed: usize,
    /// 200s whose body carried `"degraded":true` — the in-band
    /// deadline-expiry marker.
    pub degraded: usize,
    /// Per-completed-request latency in microseconds, **measured from the
    /// scheduled arrival time**, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Wall clock from run start to the last completion, in seconds.
    pub wall_s: f64,
}

impl LoadSummary {
    /// The `p`-th latency percentile in microseconds (`p` in 0..=100),
    /// by the nearest-rank method; 0 when nothing completed.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil().max(1.0) as usize;
        self.latencies_us[rank.min(self.latencies_us.len()) - 1]
    }

    /// Completions per second over the run's wall clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.wall_s
    }
}

/// Run a plan against a serving front and collect the summary. Blocks
/// until every planned request has been answered or failed.
pub fn run_load(addr: SocketAddr, plan: &LoadPlan) -> LoadSummary {
    let conns = plan.conns.max(1);
    // Deal requests round-robin with their scheduled offsets attached.
    let mut per_conn: Vec<Vec<(Duration, &PlannedRequest)>> = vec![Vec::new(); conns];
    for (i, request) in plan.requests.iter().enumerate() {
        let offset = if plan.rate_rps.is_finite() {
            Duration::from_secs_f64(i as f64 / plan.rate_rps)
        } else {
            Duration::ZERO
        };
        per_conn[i % conns].push((offset, request));
    }

    let start = Instant::now();
    // lint: allow(thread_confined, reason = "the load generator is the open-loop client itself: per-connection threads are its measurement model, not servable work for the executor")
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|schedule| scope.spawn(move || drive_connection(addr, start, schedule)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("load worker panicked")).collect()
    });

    let mut summary = LoadSummary {
        completed: 0,
        failed: 0,
        degraded: 0,
        latencies_us: Vec::with_capacity(plan.requests.len()),
        wall_s: 0.0,
    };
    for result in results {
        summary.completed += result.completed;
        summary.failed += result.failed;
        summary.degraded += result.degraded;
        summary.latencies_us.extend(result.latencies_us);
        summary.wall_s = summary.wall_s.max(result.last_completion_s);
    }
    summary.latencies_us.sort_unstable();
    summary
}

/// One-shot POST for contract checks: open a connection, send the body,
/// return `(status, body)`. Not for load generation — every call pays a
/// fresh TCP handshake.
pub fn post(addr: SocketAddr, path: &'static str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    send_request(&mut stream, &PlannedRequest { path, body: body.to_string() })?;
    let mut buf = Vec::new();
    let (status, body) = read_response(&mut stream, &mut buf)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

struct ConnResult {
    completed: usize,
    failed: usize,
    degraded: usize,
    latencies_us: Vec<u64>,
    last_completion_s: f64,
}

/// One client thread: open a keep-alive connection, fire each assigned
/// request no earlier than its scheduled time, measure from that schedule.
fn drive_connection(
    addr: SocketAddr,
    start: Instant,
    schedule: &[(Duration, &PlannedRequest)],
) -> ConnResult {
    let mut result = ConnResult {
        completed: 0,
        failed: 0,
        degraded: 0,
        latencies_us: Vec::with_capacity(schedule.len()),
        last_completion_s: 0.0,
    };
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => {
            result.failed = schedule.len();
            return result;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    for &(offset, request) in schedule {
        // Wait for the scheduled arrival (never send early; sending late
        // because the previous response was slow is exactly the queueing
        // the scheduled-time latency must capture).
        let due = start + offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let ok = send_request(&mut stream, request)
            .and_then(|()| read_response(&mut stream, &mut buf))
            .ok();
        match ok {
            Some((200, body)) => {
                result.completed += 1;
                result.degraded += usize::from(contains(&body, b"\"degraded\":true"));
                let done = Instant::now();
                result.latencies_us.push(done.saturating_duration_since(due).as_micros() as u64);
                result.last_completion_s = done.duration_since(start).as_secs_f64();
            }
            Some(_) | None => result.failed += 1,
        }
    }
    result
}

fn send_request(stream: &mut TcpStream, request: &PlannedRequest) -> std::io::Result<()> {
    let head = format!(
        "POST {} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        request.path,
        request.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(request.body.as_bytes())
}

/// Minimal HTTP/1.1 response reader: status line, headers to find
/// Content-Length, then exactly that many body bytes. Returns the status
/// code and the body.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<(u16, Vec<u8>)> {
    // `buf` may already hold (part of) this response, read together with
    // the previous one off the keep-alive stream — never discard it.
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing Content-Length")
        })?;
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    // Drop the consumed response; keep-alive reuses the buffer.
    buf.drain(..body_start + content_length);
    Ok((status, body))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let summary = LoadSummary {
            completed: 4,
            failed: 0,
            degraded: 0,
            latencies_us: vec![10, 20, 30, 40],
            wall_s: 2.0,
        };
        assert_eq!(summary.percentile_us(50.0), 20);
        assert_eq!(summary.percentile_us(99.0), 40);
        assert_eq!(summary.percentile_us(0.0), 10);
        assert_eq!(summary.throughput_rps(), 2.0);
        let empty = LoadSummary {
            completed: 0,
            failed: 0,
            degraded: 0,
            latencies_us: Vec::new(),
            wall_s: 0.0,
        };
        assert_eq!(empty.percentile_us(99.0), 0);
        assert_eq!(empty.throughput_rps(), 0.0);
    }

    #[test]
    fn response_parsing_handles_keep_alive_and_statuses() {
        // Serve two canned responses over a real socket pair.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut sink = [0u8; 1024];
            let _ = sock.read(&mut sink).unwrap();
            let body1 = "{\"ok\":true,\"degraded\":true}";
            let body2 = "{\"error\":\"apply_rejected\"}";
            let reply = format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{}HTTP/1.1 409 Conflict\r\nContent-Length: {}\r\n\r\n{}",
                body1.len(), body1, body2.len(), body2
            );
            sock.write_all(reply.as_bytes()).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = PlannedRequest { path: "/query", body: "{}".to_string() };
        send_request(&mut stream, &request).unwrap();
        let mut buf = Vec::new();
        // Both pipelined responses arrive; the reader must consume exactly
        // one at a time and leave the second intact in the buffer.
        let (status, body) = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(status, 200);
        assert!(contains(&body, b"\"degraded\":true"));
        let (status, body) = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(status, 409);
        assert!(contains(&body, b"apply_rejected"));
        server.join().unwrap();
    }
}
