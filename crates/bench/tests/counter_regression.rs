//! Fixed-seed counter regression: pins the `sorted_accesses` /
//! `exact_computations` totals of the canonical E8 workload (scale 200,
//! 20 probe users, the standard keywords, k ∈ {5, 20}) so a future change
//! to the query path cannot silently degrade pruning. The pinned values
//! are the current engine's — already below the seed implementation's
//! (286/252 and 315/280 exact-index; 513/444 and 558/477 clustered) —
//! so any regression past the seed, or any loss of the tightened-threshold
//! gains, fails loudly.
//!
//! The pins are also the proof that the clustered refinement-index
//! refactor (keyword-first `tag → item → taggers` exact-score
//! recomputation) changed only the *cost per exact computation*, never the
//! number of computations: the clustered counters here are byte-identical
//! to the pre-refactor values, i.e. they never exceed them.

use socialscope_bench::{site_at_scale, standard_keywords};
use socialscope_content::{
    BatchOptions, BatchScratch, BatchScratchPool, ClusteredIndex, ClusteringStrategy, ExactIndex,
    NetworkBasedClustering, SiteModel,
};
use socialscope_exec::Exec;
use socialscope_graph::NodeId;

/// The pinned E8 counters of the canonical scale-200 workload (20 probe
/// users, standard keywords): `(engine, k, sorted_accesses,
/// exact_computations)`. Shared by the sequential pin and the 4-thread pin
/// — the execution layer must not move a single counter.
const PINNED_E8: [(&str, usize, usize, usize); 4] = [
    ("exact_index_ta", 5, 271, 237),
    ("clustered_index_ta", 5, 492, 423),
    ("exact_index_ta", 20, 315, 280),
    ("clustered_index_ta", 20, 558, 477),
];

/// Run the canonical E8 probe workload against a pair of indexes and
/// collect the counter rows in pin order.
fn observe_counters(
    model: &SiteModel,
    exact: &ExactIndex,
    clustered: &ClusteredIndex,
    users: &[NodeId],
    keywords: &[String],
) -> Vec<(&'static str, usize, usize, usize)> {
    let mut observed = Vec::new();
    for &k in &[5usize, 20] {
        let (mut sa, mut ec) = (0usize, 0usize);
        for &u in users {
            let r = exact.query(u, keywords, k);
            sa += r.sorted_accesses;
            ec += r.exact_computations;
        }
        observed.push(("exact_index_ta", k, sa, ec));
        let (mut sa, mut ec) = (0usize, 0usize);
        for &u in users {
            let r = clustered.query(model, u, keywords, k).result;
            sa += r.sorted_accesses;
            ec += r.exact_computations;
        }
        observed.push(("clustered_index_ta", k, sa, ec));
    }
    observed
}

#[test]
fn e8_counters_are_pinned_at_scale_200() {
    let site = site_at_scale(200);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));
    let users: Vec<_> = site.users.iter().copied().take(20).collect();

    let observed = observe_counters(&model, &exact, &clustered, &users, &keywords);
    assert_eq!(
        observed,
        PINNED_E8.to_vec(),
        "E8 counters moved; if pruning genuinely improved, update the pins \
         (and BENCH_topk.json) — never past the seed values in the module doc"
    );
}

/// The execution layer must be invisible in the counters: indexes *built
/// at 4 threads* serve the pinned E8 workload with byte-identical
/// `sorted_accesses` / `exact_computations`, and the 4-thread parallel
/// batch path reproduces the single-query results element-wise (counters
/// included) on a batch big enough to really fan out.
#[test]
fn e8_counters_are_unchanged_under_four_threads() {
    let site = site_at_scale(200);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let exec = Exec::new(4).expect("positive thread count");
    let exact = ExactIndex::build_with(&exec, &model);
    let clustered =
        ClusteredIndex::build_with(&exec, &model, NetworkBasedClustering.cluster(&model, 0.3));
    let users: Vec<_> = site.users.iter().copied().take(20).collect();

    let observed = observe_counters(&model, &exact, &clustered, &users, &keywords);
    assert_eq!(
        observed,
        PINNED_E8.to_vec(),
        "a 4-thread build changed the E8 counters; parallel builds must be \
         indistinguishable from sequential ones"
    );

    // The 4-thread batch path: cycle the probe users out to 256 seekers so
    // the batch crosses the fan-out floor, and require element-wise
    // identity with single queries.
    let batch: Vec<NodeId> = (0..256).map(|i| users[i % users.len()]).collect();
    let mut pool = BatchScratchPool::default();
    for &k in &[5usize, 20] {
        let served = exact.query_batch_opts(
            &batch,
            &keywords,
            k,
            BatchOptions::new().exec(&exec).scratch_pool(&mut pool),
        );
        for (got, &u) in served.iter().zip(&batch) {
            assert_eq!(got, &exact.query(u, &keywords, k), "exact user {u} k {k}");
        }
        let served = clustered.query_batch_opts(
            &model,
            &batch,
            &keywords,
            k,
            BatchOptions::new().exec(&exec).scratch_pool(&mut pool),
        );
        for (got, &u) in served.iter().zip(&batch) {
            assert_eq!(got, &clustered.query(&model, u, &keywords, k), "clustered user {u} k {k}");
        }
    }
}

/// At a realistic scale, the batch query paths must stay element-wise
/// identical to per-user loops — ranking, scores and cost counters — on a
/// batch that repeats users and contains ids the site never saw. The
/// property suite proves this on small random sites; this pins it on the
/// canonical generated workload where the counters actually prune.
#[test]
fn batch_queries_match_single_queries_at_scale_100() {
    let site = site_at_scale(100);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));

    // 48 seekers: the first 40 users cycled with repeats plus unknown ids.
    let mut batch: Vec<NodeId> = (0..44).map(|i| site.users[i % 40]).collect();
    batch.extend([NodeId(u64::MAX), NodeId(999_999), site.users[0], site.users[0]]);

    let mut scratch = BatchScratch::default();
    for k in [1usize, 5, 20] {
        let results =
            exact.query_batch_opts(&batch, &keywords, k, BatchOptions::new().scratch(&mut scratch));
        assert_eq!(results.len(), batch.len());
        for (got, &u) in results.iter().zip(&batch) {
            assert_eq!(got, &exact.query(u, &keywords, k), "exact user {u} k {k}");
        }
        let reports = clustered.query_batch_opts(
            &model,
            &batch,
            &keywords,
            k,
            BatchOptions::new().scratch(&mut scratch),
        );
        assert_eq!(reports.len(), batch.len());
        for (got, &u) in reports.iter().zip(&batch) {
            assert_eq!(got, &clustered.query(&model, u, &keywords, k), "clustered user {u} k {k}");
        }
    }

    // Unknown ids are unclustered seekers: the documented empty-with-flag
    // semantic must hold through the batch path at scale too.
    let reports = clustered.query_batch_opts(
        &model,
        &batch,
        &keywords,
        5,
        BatchOptions::new().scratch(&mut scratch),
    );
    for (got, &u) in reports.iter().zip(&batch) {
        assert_eq!(got.unclustered, !site.users.contains(&u));
        if got.unclustered {
            assert!(got.result.ranked.is_empty());
        }
    }

    // An all-stopword query tokenizes to an empty keyword set; both engines
    // must serve the defined empty result through the batch path, not skew
    // any counter.
    let empty = socialscope_workload::keywords_of("things to do");
    assert!(empty.is_empty());
    for res in exact.query_batch_opts(&batch, &empty, 5, BatchOptions::new().scratch(&mut scratch))
    {
        assert!(res.ranked.is_empty());
        assert_eq!((res.sorted_accesses, res.exact_computations), (0, 0));
    }
    for (got, &u) in clustered
        .query_batch_opts(&model, &batch, &empty, 5, BatchOptions::new().scratch(&mut scratch))
        .iter()
        .zip(&batch)
    {
        assert_eq!(got, &clustered.query(&model, u, &empty, 5));
        assert!(got.result.ranked.is_empty());
    }
}
