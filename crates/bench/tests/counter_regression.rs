//! Fixed-seed counter regression: pins the `sorted_accesses` /
//! `exact_computations` totals of the canonical E8 workload (scale 200,
//! 20 probe users, the standard keywords, k ∈ {5, 20}) so a future change
//! to the query path cannot silently degrade pruning. The pinned values
//! are the current engine's — already below the seed implementation's
//! (286/252 and 315/280 exact-index; 513/444 and 558/477 clustered) —
//! so any regression past the seed, or any loss of the tightened-threshold
//! gains, fails loudly.
//!
//! The pins are also the proof that the clustered refinement-index
//! refactor (keyword-first `tag → item → taggers` exact-score
//! recomputation) changed only the *cost per exact computation*, never the
//! number of computations: the clustered counters here are byte-identical
//! to the pre-refactor values, i.e. they never exceed them.

use socialscope_bench::{site_at_scale, standard_keywords};
use socialscope_content::{
    BatchScratch, ClusteredIndex, ClusteringStrategy, ExactIndex, NetworkBasedClustering, SiteModel,
};
use socialscope_graph::NodeId;

#[test]
fn e8_counters_are_pinned_at_scale_200() {
    let site = site_at_scale(200);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));
    let users: Vec<_> = site.users.iter().copied().take(20).collect();

    let mut observed: Vec<(&str, usize, usize, usize)> = Vec::new();
    for &k in &[5usize, 20] {
        let (mut sa, mut ec) = (0usize, 0usize);
        for &u in &users {
            let r = exact.query(u, &keywords, k);
            sa += r.sorted_accesses;
            ec += r.exact_computations;
        }
        observed.push(("exact_index_ta", k, sa, ec));
        let (mut sa, mut ec) = (0usize, 0usize);
        for &u in &users {
            let r = clustered.query(&model, u, &keywords, k).result;
            sa += r.sorted_accesses;
            ec += r.exact_computations;
        }
        observed.push(("clustered_index_ta", k, sa, ec));
    }

    let pinned: Vec<(&str, usize, usize, usize)> = vec![
        ("exact_index_ta", 5, 271, 237),
        ("clustered_index_ta", 5, 492, 423),
        ("exact_index_ta", 20, 315, 280),
        ("clustered_index_ta", 20, 558, 477),
    ];
    assert_eq!(
        observed, pinned,
        "E8 counters moved; if pruning genuinely improved, update the pins \
         (and BENCH_topk.json) — never past the seed values in the module doc"
    );
}

/// At a realistic scale, the batch query paths must stay element-wise
/// identical to per-user loops — ranking, scores and cost counters — on a
/// batch that repeats users and contains ids the site never saw. The
/// property suite proves this on small random sites; this pins it on the
/// canonical generated workload where the counters actually prune.
#[test]
fn batch_queries_match_single_queries_at_scale_100() {
    let site = site_at_scale(100);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));

    // 48 seekers: the first 40 users cycled with repeats plus unknown ids.
    let mut batch: Vec<NodeId> = (0..44).map(|i| site.users[i % 40]).collect();
    batch.extend([NodeId(u64::MAX), NodeId(999_999), site.users[0], site.users[0]]);

    let mut scratch = BatchScratch::default();
    for k in [1usize, 5, 20] {
        let results = exact.query_batch_with(&mut scratch, &batch, &keywords, k);
        assert_eq!(results.len(), batch.len());
        for (got, &u) in results.iter().zip(&batch) {
            assert_eq!(got, &exact.query(u, &keywords, k), "exact user {u} k {k}");
        }
        let reports = clustered.query_batch_with(&mut scratch, &model, &batch, &keywords, k);
        assert_eq!(reports.len(), batch.len());
        for (got, &u) in reports.iter().zip(&batch) {
            assert_eq!(got, &clustered.query(&model, u, &keywords, k), "clustered user {u} k {k}");
        }
    }

    // Unknown ids are unclustered seekers: the documented empty-with-flag
    // semantic must hold through the batch path at scale too.
    let reports = clustered.query_batch_with(&mut scratch, &model, &batch, &keywords, 5);
    for (got, &u) in reports.iter().zip(&batch) {
        assert_eq!(got.unclustered, !site.users.contains(&u));
        if got.unclustered {
            assert!(got.result.ranked.is_empty());
        }
    }

    // An all-stopword query tokenizes to an empty keyword set; both engines
    // must serve the defined empty result through the batch path, not skew
    // any counter.
    let empty = socialscope_workload::keywords_of("things to do");
    assert!(empty.is_empty());
    for res in exact.query_batch_with(&mut scratch, &batch, &empty, 5) {
        assert!(res.ranked.is_empty());
        assert_eq!((res.sorted_accesses, res.exact_computations), (0, 0));
    }
    for (got, &u) in
        clustered.query_batch_with(&mut scratch, &model, &batch, &empty, 5).iter().zip(&batch)
    {
        assert_eq!(got, &clustered.query(&model, u, &empty, 5));
        assert!(got.result.ranked.is_empty());
    }
}
