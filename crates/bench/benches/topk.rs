//! E8 — top-k pruning effectiveness: threshold-style processing over exact
//! and upper-bound (clustered) lists vs. the exhaustive baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialscope_bench::{site_at_scale, standard_keywords};
use socialscope_content::topk::top_k_exhaustive;
use socialscope_content::{
    distinct_keywords, ClusteredIndex, ClusteringStrategy, ExactIndex, NetworkBasedClustering,
    SiteModel,
};

fn bench_topk(c: &mut Criterion) {
    let site = site_at_scale(200);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let exact = ExactIndex::build(&model);
    let clustered = ClusteredIndex::build(&model, NetworkBasedClustering.cluster(&model, 0.3));
    let users: Vec<_> = site.users.iter().copied().take(20).collect();

    let mut group = c.benchmark_group("topk_processing");
    group.sample_size(10);
    for &k in &[5usize, 20] {
        group.bench_with_input(BenchmarkId::new("exhaustive_baseline", k), &k, |b, &k| {
            // Dedup the keyword set once per query, as a real exhaustive
            // scorer would — the per-item loop must not absorb it.
            let distinct = distinct_keywords(&keywords);
            b.iter(|| {
                users
                    .iter()
                    .map(|&u| {
                        top_k_exhaustive(model.items(), k, |i| {
                            model.query_score_distinct(i, u, &distinct)
                        })
                        .ranked
                        .len()
                    })
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_index_ta", k), &k, |b, &k| {
            b.iter(|| {
                users.iter().map(|&u| exact.query(u, &keywords, k).ranked.len()).sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("clustered_index_ta", k), &k, |b, &k| {
            b.iter(|| {
                users
                    .iter()
                    .map(|&u| clustered.query(&model, u, &keywords, k).result.ranked.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
