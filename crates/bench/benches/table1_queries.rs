//! E1 — Table 1: throughput of the query-log generation + classification
//! pipeline that regenerates the class × location breakdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialscope_workload::{ClassCounts, QueryLogConfig, QueryLogGenerator};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_query_classification");
    group.sample_size(10);
    for &queries in &[10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(queries), &queries, |b, &queries| {
            b.iter(|| {
                let mut gen =
                    QueryLogGenerator::new(QueryLogConfig { queries, ..Default::default() });
                let log = gen.generate();
                let counts = ClassCounts::from_queries(log.iter().map(String::as_str));
                assert_eq!(counts.total(), queries);
                counts
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
