//! E3 — Figure 2: the multi-step Example 5 formulation of collaborative
//! filtering vs. the single graph-pattern aggregation, across site scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialscope_algebra::prelude::*;
use socialscope_bench::site_with_matches;
use socialscope_discovery::recommend::algebra_cf::{example5_pipeline, CfConfig};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_cf_formulations");
    group.sample_size(10);
    for &users in &[100usize, 300] {
        let (graph, user_ids) = site_with_matches(users, 0.15);
        let user = user_ids[0];

        group.bench_with_input(
            BenchmarkId::new("multi_step_example5", users),
            &graph,
            |b, graph| {
                b.iter(|| example5_pipeline(graph, user, &CfConfig::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pattern_aggregation", users),
            &graph,
            |b, graph| {
                let pattern = GraphPattern::fig2_collaborative_filtering(user);
                b.iter(|| {
                    pattern_aggregate(
                        graph,
                        &pattern,
                        "score",
                        &PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
