//! E6 — §5: per-operator costs of the algebra and the effect of the plan
//! optimizer on the Example 4 / Example 5 plan shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use socialscope_algebra::prelude::*;
use socialscope_bench::site_with_matches;

fn bench_operators(c: &mut Criterion) {
    let (graph, users) = site_with_matches(300, 0.15);
    let user = users[0];

    let mut group = c.benchmark_group("algebra_operators");
    group.sample_size(10);
    group.bench_function("node_select_by_type", |b| {
        b.iter(|| node_select(&graph, &Condition::on_attr("type", "destination"), None))
    });
    group.bench_function("link_select_by_type", |b| {
        b.iter(|| link_select(&graph, &Condition::on_attr("type", "visit"), None))
    });
    let friends = link_select(&graph, &Condition::on_attr("type", "friend"), None);
    let visits = link_select(&graph, &Condition::on_attr("type", "visit"), None);
    group.bench_function("semi_join", |b| {
        b.iter(|| semi_join(&friends, &visits, DirectionalCondition::tgt_src()))
    });
    group.bench_function("union", |b| b.iter(|| union(&friends, &visits)));
    group.bench_function("minus_node_driven", |b| b.iter(|| minus(&visits, &friends)));
    group.bench_function("minus_link_driven", |b| b.iter(|| minus_link_driven(&visits, &friends)));
    group.bench_function("node_aggregate_count", |b| {
        b.iter(|| {
            node_aggregate(
                &graph,
                &Condition::on_attr("type", "friend"),
                Direction::Src,
                "fnd_cnt",
                &AggregateFn::Count,
            )
        })
    });
    group.bench_function("link_aggregate_count", |b| {
        b.iter(|| {
            link_aggregate(
                &graph,
                &Condition::on_attr("type", "tag"),
                "tag_cnt",
                &AggregateFn::Count,
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("algebra_plans");
    group.sample_size(10);
    let plan = socialscope_discovery::collaborative_filtering_plan(user);
    let (optimized, _) = Optimizer::new().optimize(&plan);
    group.bench_function("example5_plan_unoptimized", |b| {
        b.iter(|| Evaluator::new(&graph).evaluate(&plan).unwrap())
    });
    group.bench_function("example5_plan_optimized", |b| {
        b.iter(|| Evaluator::new(&graph).evaluate(&optimized).unwrap())
    });
    group.bench_function("optimizer_rewrite_cost", |b| b.iter(|| Optimizer::new().optimize(&plan)));
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
