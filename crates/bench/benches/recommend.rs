//! E6 (recommendation side): the end-to-end discovery path and the
//! recommendation strategies across site scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialscope_bench::site_at_scale;
use socialscope_discovery::recommend::algebra_cf::{collaborative_filtering, CfConfig};
use socialscope_discovery::{
    expert_recommendations, item_based_recommendations, InformationDiscoverer, UserQuery,
};

fn bench_recommend(c: &mut Criterion) {
    let mut group = c.benchmark_group("recommendation_strategies");
    group.sample_size(10);
    for &users in &[100usize, 300] {
        let site = site_at_scale(users);
        let graph = &site.graph;
        let user = site.users[0];

        group.bench_with_input(BenchmarkId::new("algebra_cf", users), graph, |b, graph| {
            b.iter(|| collaborative_filtering(graph, user, &CfConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("item_cf", users), graph, |b, graph| {
            b.iter(|| item_based_recommendations(graph, user, 10))
        });
        group.bench_with_input(BenchmarkId::new("expert", users), graph, |b, graph| {
            b.iter(|| expert_recommendations(graph, &["museum".to_string()], 10))
        });
        group.bench_with_input(
            BenchmarkId::new("discovery_end_to_end", users),
            graph,
            |b, graph| {
                let discoverer = InformationDiscoverer::default();
                b.iter(|| {
                    discoverer.discover(graph, &UserQuery::keywords_for(user, "baseball museum"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recommend);
criterion_main!(benches);
