//! E2 — Table 2: cost of simulating the user journey under each of the three
//! content-management models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialscope_content::models::all_models;
use socialscope_content::UserJourney;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_deployment_models");
    group.sample_size(10);
    let journey = UserJourney { users: 10_000, content_sites: 3, ..UserJourney::default() };
    for model in all_models() {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &journey,
            |b, journey| {
                b.iter(|| {
                    let metrics = model.simulate(journey);
                    let matrix = model.control_matrix();
                    (metrics, matrix)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
