//! E5 — §6.2: index build cost and clustered query cost for the three user
//! clustering strategies, against the exact per-(tag, user) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialscope_bench::{site_at_scale, standard_keywords};
use socialscope_content::{
    BehaviorBasedClustering, ClusteredIndex, ClusteringStrategy, ExactIndex, HybridClustering,
    NetworkBasedClustering, SiteModel,
};

fn bench_clustering(c: &mut Criterion) {
    let site = site_at_scale(200);
    let model = SiteModel::from_graph(&site.graph);
    let keywords = standard_keywords();
    let users: Vec<_> = site.users.iter().copied().take(20).collect();

    let mut group = c.benchmark_group("clustering_index_build");
    group.sample_size(10);
    group.bench_function("exact", |b| b.iter(|| ExactIndex::build(&model)));
    let strategies: Vec<(&str, &dyn ClusteringStrategy)> = vec![
        ("network", &NetworkBasedClustering),
        ("behavior", &BehaviorBasedClustering),
        ("hybrid", &HybridClustering),
    ];
    for (name, strategy) in &strategies {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| ClusteredIndex::build(&model, strategy.cluster(&model, 0.3)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("clustering_query_topk");
    group.sample_size(10);
    let exact = ExactIndex::build(&model);
    group.bench_function("exact", |b| {
        b.iter(|| users.iter().map(|&u| exact.query(u, &keywords, 10).ranked.len()).sum::<usize>())
    });
    for (name, strategy) in &strategies {
        let index = ClusteredIndex::build(&model, strategy.cluster(&model, 0.3));
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                users
                    .iter()
                    .map(|&u| index.query(&model, u, &keywords, 10).result.ranked.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
