//! A small rule-based plan optimizer.
//!
//! The paper motivates the algebra partly by optimizability: because
//! discovery tasks are expressed as operator trees rather than ad-hoc code,
//! the system can rewrite them. This module implements the classic rewrites
//! that apply to the SocialScope operators:
//!
//! * **Selection fusion** — `σ_C1(σ_C2(X)) → σ_{C1 ∧ C2}(X)` for node and
//!   link selections (the outer scoring specification is kept).
//! * **Selection pushdown** — node selection distributes over Union,
//!   Intersection and (on the left input) Node-Driven Minus.
//! * **Set-operation simplification** — `X ∪ X → X`, `X ∩ X → X` when both
//!   sides are the *same shared sub-plan or structurally equal pure plans*.
//! * **Common-subexpression elimination (CSE)** — structurally equal
//!   sub-plans are rewritten to share one `Arc`, which the evaluator then
//!   evaluates only once.
//!
//! Rewrites never touch sub-plans containing `Custom` composition,
//! aggregation or path-aggregate functions: their behaviour cannot be
//! inspected, so merging or reordering them would be unsound.

use crate::plan::Plan;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the optimizer did to a plan.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct OptimizationReport {
    /// Human-readable names of rules that fired, in application order.
    pub rules_applied: Vec<String>,
    /// Operator count before optimization.
    pub size_before: usize,
    /// Operator count after optimization (counting shared subtrees once per
    /// occurrence, so CSE does not change this number — see `shared_after`).
    pub size_after: usize,
    /// Number of distinct operator nodes after CSE (shared subtrees counted
    /// once).
    pub distinct_after: usize,
}

/// The rule-based optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    max_passes: usize,
}

impl Optimizer {
    /// An optimizer with the default pass limit.
    pub fn new() -> Self {
        Optimizer { max_passes: 8 }
    }

    /// Optimize a plan, returning the rewritten plan and a report.
    pub fn optimize(&self, plan: &Arc<Plan>) -> (Arc<Plan>, OptimizationReport) {
        let max_passes = if self.max_passes == 0 { 8 } else { self.max_passes };
        let mut report =
            OptimizationReport { size_before: plan.size(), ..OptimizationReport::default() };
        let mut current = plan.clone();
        for _ in 0..max_passes {
            let mut changed = false;
            let fused = rewrite_bottom_up(&current, &mut |p| fuse_selections(p));
            if !Arc::ptr_eq(&fused, &current) && *fused != *current {
                report.rules_applied.push("fuse_selections".into());
                changed = true;
            }
            let pushed = rewrite_bottom_up(&fused, &mut |p| push_node_select(p));
            if *pushed != *fused {
                report.rules_applied.push("push_node_select".into());
                changed = true;
            }
            let simplified = rewrite_bottom_up(&pushed, &mut |p| simplify_setops(p));
            if *simplified != *pushed {
                report.rules_applied.push("simplify_setops".into());
                changed = true;
            }
            current = simplified;
            if !changed {
                break;
            }
        }
        // CSE as a final pass.
        let mut pool: Vec<Arc<Plan>> = Vec::new();
        let shared = cse(&current, &mut pool);
        if count_distinct(&shared) < count_distinct(&current) {
            report.rules_applied.push("cse".into());
        }
        current = shared;
        report.size_after = current.size();
        report.distinct_after = count_distinct(&current);
        (current, report)
    }
}

/// Apply a local rewrite bottom-up across the whole tree.
fn rewrite_bottom_up(
    plan: &Arc<Plan>,
    rule: &mut dyn FnMut(&Arc<Plan>) -> Option<Arc<Plan>>,
) -> Arc<Plan> {
    // First rebuild children.
    let rebuilt = match &**plan {
        Plan::Base => plan.clone(),
        Plan::NodeSelect { input, condition, scoring } => Arc::new(Plan::NodeSelect {
            input: rewrite_bottom_up(input, rule),
            condition: condition.clone(),
            scoring: scoring.clone(),
        }),
        Plan::LinkSelect { input, condition, scoring } => Arc::new(Plan::LinkSelect {
            input: rewrite_bottom_up(input, rule),
            condition: condition.clone(),
            scoring: scoring.clone(),
        }),
        Plan::Union { left, right } => Arc::new(Plan::Union {
            left: rewrite_bottom_up(left, rule),
            right: rewrite_bottom_up(right, rule),
        }),
        Plan::Intersect { left, right } => Arc::new(Plan::Intersect {
            left: rewrite_bottom_up(left, rule),
            right: rewrite_bottom_up(right, rule),
        }),
        Plan::Minus { left, right } => Arc::new(Plan::Minus {
            left: rewrite_bottom_up(left, rule),
            right: rewrite_bottom_up(right, rule),
        }),
        Plan::MinusLinkDriven { left, right } => Arc::new(Plan::MinusLinkDriven {
            left: rewrite_bottom_up(left, rule),
            right: rewrite_bottom_up(right, rule),
        }),
        Plan::Compose { left, right, delta, f } => Arc::new(Plan::Compose {
            left: rewrite_bottom_up(left, rule),
            right: rewrite_bottom_up(right, rule),
            delta: *delta,
            f: f.clone(),
        }),
        Plan::SemiJoin { left, right, delta } => Arc::new(Plan::SemiJoin {
            left: rewrite_bottom_up(left, rule),
            right: rewrite_bottom_up(right, rule),
            delta: *delta,
        }),
        Plan::NodeAgg { input, condition, direction, attr, agg } => Arc::new(Plan::NodeAgg {
            input: rewrite_bottom_up(input, rule),
            condition: condition.clone(),
            direction: *direction,
            attr: attr.clone(),
            agg: agg.clone(),
        }),
        Plan::LinkAgg { input, condition, aggs } => Arc::new(Plan::LinkAgg {
            input: rewrite_bottom_up(input, rule),
            condition: condition.clone(),
            aggs: aggs.clone(),
        }),
        Plan::PatternAgg { input, pattern, attr, agg } => Arc::new(Plan::PatternAgg {
            input: rewrite_bottom_up(input, rule),
            pattern: pattern.clone(),
            attr: attr.clone(),
            agg: agg.clone(),
        }),
    };
    // Then apply the rule at this node (repeatedly, in case it cascades).
    let mut node = rebuilt;
    while let Some(next) = rule(&node) {
        node = next;
    }
    node
}

/// `σ_C1(σ_C2(X)) → σ_{C2 ∧ C1}(X)` for selections of the same kind. The
/// outer scoring wins; fusion is skipped when the inner selection carries a
/// scoring spec the outer one would discard.
fn fuse_selections(plan: &Arc<Plan>) -> Option<Arc<Plan>> {
    match &**plan {
        Plan::NodeSelect { input, condition, scoring } => match &**input {
            Plan::NodeSelect {
                input: inner_input,
                condition: inner_cond,
                scoring: inner_scoring,
            } if inner_scoring.is_none() || scoring.is_none() => Some(Arc::new(Plan::NodeSelect {
                input: inner_input.clone(),
                condition: inner_cond.clone().and(condition),
                scoring: scoring.clone().or_else(|| inner_scoring.clone()),
            })),
            _ => None,
        },
        Plan::LinkSelect { input, condition, scoring } => match &**input {
            Plan::LinkSelect {
                input: inner_input,
                condition: inner_cond,
                scoring: inner_scoring,
            } if inner_scoring.is_none() || scoring.is_none() => Some(Arc::new(Plan::LinkSelect {
                input: inner_input.clone(),
                condition: inner_cond.clone().and(condition),
                scoring: scoring.clone().or_else(|| inner_scoring.clone()),
            })),
            _ => None,
        },
        _ => None,
    }
}

/// Push node selection through Union / Intersection / the left input of
/// Node-Driven Minus.
fn push_node_select(plan: &Arc<Plan>) -> Option<Arc<Plan>> {
    let Plan::NodeSelect { input, condition, scoring } = &**plan else {
        return None;
    };
    match &**input {
        Plan::Union { left, right } => Some(Arc::new(Plan::Union {
            left: Arc::new(Plan::NodeSelect {
                input: left.clone(),
                condition: condition.clone(),
                scoring: scoring.clone(),
            }),
            right: Arc::new(Plan::NodeSelect {
                input: right.clone(),
                condition: condition.clone(),
                scoring: scoring.clone(),
            }),
        })),
        Plan::Intersect { left, right } => Some(Arc::new(Plan::Intersect {
            left: Arc::new(Plan::NodeSelect {
                input: left.clone(),
                condition: condition.clone(),
                scoring: scoring.clone(),
            }),
            right: Arc::new(Plan::NodeSelect {
                input: right.clone(),
                condition: condition.clone(),
                scoring: scoring.clone(),
            }),
        })),
        Plan::Minus { left, right } => Some(Arc::new(Plan::Minus {
            left: Arc::new(Plan::NodeSelect {
                input: left.clone(),
                condition: condition.clone(),
                scoring: scoring.clone(),
            }),
            right: right.clone(),
        })),
        _ => None,
    }
}

/// `X ∪ X → X` and `X ∩ X → X` for identical (shared or structurally equal)
/// inputs.
fn simplify_setops(plan: &Arc<Plan>) -> Option<Arc<Plan>> {
    match &**plan {
        Plan::Union { left, right } | Plan::Intersect { left, right } => {
            if Arc::ptr_eq(left, right) || **left == **right {
                Some(left.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Common-subexpression elimination: rewrite the tree so structurally equal
/// sub-plans share a single `Arc`.
fn cse(plan: &Arc<Plan>, pool: &mut Vec<Arc<Plan>>) -> Arc<Plan> {
    // Rebuild children first so nested duplicates collapse.
    let rebuilt: Arc<Plan> = match &**plan {
        Plan::Base => plan.clone(),
        Plan::NodeSelect { input, condition, scoring } => Arc::new(Plan::NodeSelect {
            input: cse(input, pool),
            condition: condition.clone(),
            scoring: scoring.clone(),
        }),
        Plan::LinkSelect { input, condition, scoring } => Arc::new(Plan::LinkSelect {
            input: cse(input, pool),
            condition: condition.clone(),
            scoring: scoring.clone(),
        }),
        Plan::Union { left, right } => {
            Arc::new(Plan::Union { left: cse(left, pool), right: cse(right, pool) })
        }
        Plan::Intersect { left, right } => {
            Arc::new(Plan::Intersect { left: cse(left, pool), right: cse(right, pool) })
        }
        Plan::Minus { left, right } => {
            Arc::new(Plan::Minus { left: cse(left, pool), right: cse(right, pool) })
        }
        Plan::MinusLinkDriven { left, right } => {
            Arc::new(Plan::MinusLinkDriven { left: cse(left, pool), right: cse(right, pool) })
        }
        Plan::Compose { left, right, delta, f } => Arc::new(Plan::Compose {
            left: cse(left, pool),
            right: cse(right, pool),
            delta: *delta,
            f: f.clone(),
        }),
        Plan::SemiJoin { left, right, delta } => Arc::new(Plan::SemiJoin {
            left: cse(left, pool),
            right: cse(right, pool),
            delta: *delta,
        }),
        Plan::NodeAgg { input, condition, direction, attr, agg } => Arc::new(Plan::NodeAgg {
            input: cse(input, pool),
            condition: condition.clone(),
            direction: *direction,
            attr: attr.clone(),
            agg: agg.clone(),
        }),
        Plan::LinkAgg { input, condition, aggs } => Arc::new(Plan::LinkAgg {
            input: cse(input, pool),
            condition: condition.clone(),
            aggs: aggs.clone(),
        }),
        Plan::PatternAgg { input, pattern, attr, agg } => Arc::new(Plan::PatternAgg {
            input: cse(input, pool),
            pattern: pattern.clone(),
            attr: attr.clone(),
            agg: agg.clone(),
        }),
    };
    // Structural-equality lookup. PartialEq treats Custom functions as never
    // equal, so plans containing them are never merged.
    if let Some(existing) = pool.iter().find(|p| ***p == *rebuilt) {
        existing.clone()
    } else {
        pool.push(rebuilt.clone());
        rebuilt
    }
}

/// Number of distinct operator nodes (shared subtrees counted once).
pub fn count_distinct(plan: &Arc<Plan>) -> usize {
    fn walk(plan: &Arc<Plan>, seen: &mut Vec<*const Plan>) {
        let ptr = Arc::as_ptr(plan);
        if seen.contains(&ptr) {
            return;
        }
        seen.push(ptr);
        for c in plan.children() {
            walk(c, seen);
        }
    }
    let mut seen = Vec::new();
    walk(plan, &mut seen);
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::eval::Evaluator;
    use crate::plan::{PlanBuilder, ScoringSpec};
    use socialscope_graph::GraphBuilder;

    fn site() -> socialscope_graph::SocialGraph {
        let mut b = GraphBuilder::new();
        let u1 = b.add_user("a");
        let u2 = b.add_user("b");
        let i1 = b.add_item_with_keywords("Coors Field", &["destination"], &["baseball"]);
        let i2 = b.add_item_with_keywords("Denver Zoo", &["destination"], &["animals"]);
        b.befriend(u1, u2);
        b.visit(u1, i1);
        b.visit(u2, i2);
        b.build()
    }

    #[test]
    fn selection_fusion_preserves_semantics() {
        let g = site();
        let plan = PlanBuilder::base()
            .node_select(Condition::on_attr("type", "destination"))
            .node_select(Condition::keywords(["baseball"]))
            .build();
        let (optimized, report) = Optimizer::new().optimize(&plan);
        assert!(report.rules_applied.contains(&"fuse_selections".to_string()));
        assert!(optimized.size() < plan.size());

        let mut ev = Evaluator::new(&g);
        let a = ev.evaluate(&plan).unwrap();
        let b = ev.evaluate(&optimized).unwrap();
        assert_eq!(a.node_id_set(), b.node_id_set());
    }

    #[test]
    fn fusion_does_not_drop_inner_scoring() {
        let plan = PlanBuilder::base()
            .node_select_scored(Condition::keywords(["baseball"]), ScoringSpec::TfIdf)
            .node_select_scored(
                Condition::on_attr("type", "destination"),
                ScoringSpec::Constant(0.5),
            )
            .build();
        let (optimized, _) = Optimizer::new().optimize(&plan);
        // Both selections carry scoring specs: fusion must not apply.
        assert_eq!(optimized.size(), plan.size());
    }

    #[test]
    fn pushdown_through_union() {
        let g = site();
        let left = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let right = PlanBuilder::base().link_select(Condition::on_attr("type", "friend"));
        let plan = left.union(&right).node_select(Condition::on_attr("type", "user")).build();
        let (optimized, report) = Optimizer::new().optimize(&plan);
        assert!(report.rules_applied.contains(&"push_node_select".to_string()));
        let mut ev = Evaluator::new(&g);
        let a = ev.evaluate(&plan).unwrap();
        let b = ev.evaluate(&optimized).unwrap();
        assert_eq!(a.node_id_set(), b.node_id_set());
        assert_eq!(a.link_id_set(), b.link_id_set());
    }

    #[test]
    fn idempotent_union_simplifies() {
        let sub = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let plan = sub.clone().union(&sub).build();
        let (optimized, report) = Optimizer::new().optimize(&plan);
        assert!(report.rules_applied.contains(&"simplify_setops".to_string()));
        assert!(optimized.size() < plan.size());
        assert_eq!(optimized.op_name(), "link_select");
    }

    #[test]
    fn cse_shares_structurally_equal_subplans() {
        let a = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let b = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        // Different Arcs, same structure, combined under a semi-join (which
        // the set-op simplifier leaves alone).
        let plan = a.semi_join(&b, crate::compose::DirectionalCondition::tgt_src()).build();
        let before = count_distinct(&plan);
        let (optimized, report) = Optimizer::new().optimize(&plan);
        let after = count_distinct(&optimized);
        assert!(after < before, "CSE should share equal subtrees");
        assert!(report.rules_applied.contains(&"cse".to_string()));

        let g = site();
        let mut ev = Evaluator::new(&g);
        let (_, stats) = ev.evaluate_with_stats(&optimized).unwrap();
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn optimizing_base_is_identity() {
        let plan = PlanBuilder::base().build();
        let (optimized, report) = Optimizer::new().optimize(&plan);
        assert_eq!(*optimized, *plan);
        assert_eq!(report.size_before, 1);
        assert_eq!(report.size_after, 1);
    }
}
