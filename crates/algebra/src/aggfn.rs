//! Aggregation functions: the classes SAF and NAF (paper Defs. 7 and 8).
//!
//! * **SAF** (set aggregate functions) map a set of links to a *set of
//!   scalars* by extracting an attribute from every link — e.g. the set of
//!   all distinct tags a user has assigned.
//! * **NAF** (numerical aggregate functions) are built from arithmetic, the
//!   constants 0 and 1, summation and product over a collection, and
//!   composition — `COUNT(X) = Σ_{x∈X} 1(x)` is the paper's own example.
//!
//! [`NafExpr`] implements the NAF grammar literally as an expression tree;
//! [`AggregateFn`] packages both classes (plus convenience built-ins such as
//! `Min`/`Max`/`Avg`, the constant-string assignment used by Example 5
//! step 6, and escape hatches for custom functions) behind a single type
//! used by the aggregation operators.
//!
//! Both classes may refer to the pseudo-attributes `src` and `tgt`, which
//! evaluate to the numeric id of the link's endpoint. That is how
//! Example 5's "collect the set of destinations a user has visited" is
//! expressed: a SAF over the `tgt` pseudo-attribute of `visit` links.

use serde::{Deserialize, Serialize};
use socialscope_graph::{Link, Scalar, Value};
use std::sync::Arc;

/// Read an attribute (or the `src`/`tgt` pseudo-attributes) of a link as a
/// numeric value, defaulting to 0 when absent or non-numeric.
fn link_attr_f64(link: &Link, attr: &str) -> f64 {
    match attr {
        "src" => link.src.raw() as f64,
        "tgt" => link.tgt.raw() as f64,
        _ => link.attrs.get_f64(attr).unwrap_or(0.0),
    }
}

/// Read an attribute (or pseudo-attribute) of a link as a full value.
fn link_attr_value(link: &Link, attr: &str) -> Option<Value> {
    match attr {
        "src" => Some(Value::single(link.src.raw() as i64)),
        "tgt" => Some(Value::single(link.tgt.raw() as i64)),
        _ => link.attrs.get(attr).cloned(),
    }
}

/// A numerical aggregate function in the class NAF (Def. 8), expressed as a
/// small expression tree evaluated over a collection of links.
///
/// `SumOver` and `ProdOver` iterate the collection and evaluate their body
/// once per link; inside the body, [`NafExpr::Attr`] refers to the current
/// link's attribute. At the top level, `Attr` refers to the first link of
/// the collection (the "retain the value from any of the input links"
/// convention of Example 5 step 6 — well defined because all links in the
/// group carry the same value in that use).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NafExpr {
    /// A constant.
    Const(f64),
    /// The constant function 1 (maps every element to 1).
    One,
    /// The constant function 0.
    Zero,
    /// The value of a link attribute (`src`/`tgt` are pseudo-attributes).
    Attr(String),
    /// Addition.
    Add(Box<NafExpr>, Box<NafExpr>),
    /// Subtraction.
    Sub(Box<NafExpr>, Box<NafExpr>),
    /// Multiplication.
    Mul(Box<NafExpr>, Box<NafExpr>),
    /// Division (yields 0 when the divisor is 0, keeping evaluation total).
    Div(Box<NafExpr>, Box<NafExpr>),
    /// Summation over the collection of the per-link body.
    SumOver(Box<NafExpr>),
    /// Product over the collection of the per-link body.
    ProdOver(Box<NafExpr>),
}

impl NafExpr {
    /// `COUNT(X) = Σ_{x∈X} 1(x)` — the paper's construction.
    pub fn count() -> Self {
        NafExpr::SumOver(Box::new(NafExpr::One))
    }

    /// Sum of an attribute over the collection.
    pub fn sum(attr: impl Into<String>) -> Self {
        NafExpr::SumOver(Box::new(NafExpr::Attr(attr.into())))
    }

    /// Average of an attribute over the collection (`Σ attr / Σ 1`).
    pub fn avg(attr: impl Into<String>) -> Self {
        NafExpr::Div(Box::new(NafExpr::sum(attr)), Box::new(NafExpr::count()))
    }

    /// Evaluate the expression for a single link (per-element context).
    pub fn eval_link(&self, link: &Link) -> f64 {
        match self {
            NafExpr::Const(c) => *c,
            NafExpr::One => 1.0,
            NafExpr::Zero => 0.0,
            NafExpr::Attr(a) => link_attr_f64(link, a),
            NafExpr::Add(a, b) => a.eval_link(link) + b.eval_link(link),
            NafExpr::Sub(a, b) => a.eval_link(link) - b.eval_link(link),
            NafExpr::Mul(a, b) => a.eval_link(link) * b.eval_link(link),
            NafExpr::Div(a, b) => {
                let d = b.eval_link(link);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval_link(link) / d
                }
            }
            // A nested SumOver/ProdOver in per-element context degenerates to
            // its body evaluated on the single element.
            NafExpr::SumOver(body) | NafExpr::ProdOver(body) => body.eval_link(link),
        }
    }

    /// Evaluate the expression over a collection of links.
    pub fn eval(&self, links: &[&Link]) -> f64 {
        match self {
            NafExpr::Const(c) => *c,
            NafExpr::One => 1.0,
            NafExpr::Zero => 0.0,
            NafExpr::Attr(a) => links.first().map(|l| link_attr_f64(l, a)).unwrap_or(0.0),
            NafExpr::Add(a, b) => a.eval(links) + b.eval(links),
            NafExpr::Sub(a, b) => a.eval(links) - b.eval(links),
            NafExpr::Mul(a, b) => a.eval(links) * b.eval(links),
            NafExpr::Div(a, b) => {
                let d = b.eval(links);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(links) / d
                }
            }
            NafExpr::SumOver(body) => links.iter().map(|l| body.eval_link(l)).sum(),
            NafExpr::ProdOver(body) => links.iter().map(|l| body.eval_link(l)).product(),
        }
    }
}

/// A user-supplied aggregation over a group of links, for
/// [`AggregateFn::Custom`].
pub type CustomAggFn = Arc<dyn Fn(&[&Link]) -> Value + Send + Sync>;

/// An aggregation function usable by Node and Link Aggregation: a member of
/// `AF = SAF ∪ NAF`, plus pragmatic built-ins.
#[derive(Clone)]
pub enum AggregateFn {
    /// SAF: collect the distinct values of `attr` across all links of the
    /// group into a set-valued attribute. `src`/`tgt` pseudo-attributes
    /// collect endpoint ids.
    CollectSet(String),
    /// NAF `COUNT`.
    Count,
    /// NAF sum of a numeric attribute.
    Sum(String),
    /// NAF average of a numeric attribute.
    Avg(String),
    /// Minimum of a numeric attribute (expressible in NAF per the paper; a
    /// direct built-in here).
    Min(String),
    /// Maximum of a numeric attribute.
    Max(String),
    /// Assign a constant string (Example 5 step 6 assigns `'match'`).
    ConstStr(String),
    /// Retain the value of `attr` from the first link of the group
    /// ("from any of the input links" — well defined when all agree).
    First(String),
    /// An arbitrary NAF expression.
    Naf(NafExpr),
    /// A custom aggregation over the group of links.
    Custom(CustomAggFn),
}

impl std::fmt::Debug for AggregateFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateFn::CollectSet(a) => write!(f, "CollectSet({a})"),
            AggregateFn::Count => write!(f, "Count"),
            AggregateFn::Sum(a) => write!(f, "Sum({a})"),
            AggregateFn::Avg(a) => write!(f, "Avg({a})"),
            AggregateFn::Min(a) => write!(f, "Min({a})"),
            AggregateFn::Max(a) => write!(f, "Max({a})"),
            AggregateFn::ConstStr(s) => write!(f, "ConstStr({s})"),
            AggregateFn::First(a) => write!(f, "First({a})"),
            AggregateFn::Naf(e) => write!(f, "Naf({e:?})"),
            AggregateFn::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl PartialEq for AggregateFn {
    fn eq(&self, other: &Self) -> bool {
        use AggregateFn::*;
        match (self, other) {
            (CollectSet(a), CollectSet(b))
            | (Sum(a), Sum(b))
            | (Avg(a), Avg(b))
            | (Min(a), Min(b))
            | (Max(a), Max(b))
            | (ConstStr(a), ConstStr(b))
            | (First(a), First(b)) => a == b,
            (Count, Count) => true,
            (Naf(a), Naf(b)) => a == b,
            // Custom functions are never considered equal: the optimizer must
            // not merge subtrees whose behaviour it cannot inspect.
            _ => false,
        }
    }
}

impl AggregateFn {
    /// Evaluate the aggregation over a group of links.
    pub fn eval(&self, links: &[&Link]) -> Value {
        match self {
            AggregateFn::CollectSet(attr) => {
                let mut out = Value::empty();
                for l in links {
                    if let Some(v) = link_attr_value(l, attr) {
                        for s in v.iter() {
                            out.push(s.clone());
                        }
                    }
                }
                out
            }
            AggregateFn::Count => Value::single(links.len() as i64),
            AggregateFn::Sum(attr) => {
                Value::single(links.iter().map(|l| link_attr_f64(l, attr)).sum::<f64>())
            }
            AggregateFn::Avg(attr) => {
                if links.is_empty() {
                    Value::single(0.0)
                } else {
                    let sum: f64 = links.iter().map(|l| link_attr_f64(l, attr)).sum();
                    Value::single(sum / links.len() as f64)
                }
            }
            AggregateFn::Min(attr) => Value::single(
                links.iter().map(|l| link_attr_f64(l, attr)).fold(f64::INFINITY, f64::min),
            ),
            AggregateFn::Max(attr) => Value::single(
                links.iter().map(|l| link_attr_f64(l, attr)).fold(f64::NEG_INFINITY, f64::max),
            ),
            AggregateFn::ConstStr(s) => Value::single(s.as_str()),
            AggregateFn::First(attr) => {
                links.first().and_then(|l| link_attr_value(l, attr)).unwrap_or_else(Value::empty)
            }
            AggregateFn::Naf(expr) => Value::single(expr.eval(links)),
            AggregateFn::Custom(f) => f(links),
        }
    }
}

/// Convert a collected set value into sorted scalar text tokens (testing and
/// explanation helper).
pub fn value_as_sorted_texts(v: &Value) -> Vec<String> {
    let mut out: Vec<String> = v.iter().map(Scalar::as_text).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::{LinkId, NodeId};

    fn tag_link(id: u64, src: u64, tgt: u64, tags: &[&str], weight: f64) -> Link {
        Link::new(LinkId(id), NodeId(src), NodeId(tgt), ["act", "tag"])
            .with_attr("tags", Value::multi(tags.iter().copied()))
            .with_attr("weight", weight)
    }

    fn group() -> Vec<Link> {
        vec![
            tag_link(1, 10, 100, &["baseball", "rockies"], 0.5),
            tag_link(2, 10, 101, &["baseball"], 1.5),
            tag_link(3, 10, 102, &["museum"], 2.0),
        ]
    }

    #[test]
    fn collect_set_gathers_distinct_values() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        let v = AggregateFn::CollectSet("tags".into()).eval(&refs);
        assert_eq!(value_as_sorted_texts(&v), vec!["baseball", "museum", "rockies"]);
    }

    #[test]
    fn collect_set_of_targets_pseudo_attribute() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        let v = AggregateFn::CollectSet("tgt".into()).eval(&refs);
        assert_eq!(v.len(), 3);
        assert!(v.contains(&Scalar::Int(100)));
    }

    #[test]
    fn count_sum_avg_min_max() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        assert_eq!(AggregateFn::Count.eval(&refs).as_f64(), Some(3.0));
        assert_eq!(AggregateFn::Sum("weight".into()).eval(&refs).as_f64(), Some(4.0));
        assert!(
            (AggregateFn::Avg("weight".into()).eval(&refs).as_f64().unwrap() - 4.0 / 3.0).abs()
                < 1e-9
        );
        assert_eq!(AggregateFn::Min("weight".into()).eval(&refs).as_f64(), Some(0.5));
        assert_eq!(AggregateFn::Max("weight".into()).eval(&refs).as_f64(), Some(2.0));
    }

    #[test]
    fn const_str_and_first() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        assert_eq!(AggregateFn::ConstStr("match".into()).eval(&refs).as_str(), Some("match"));
        assert_eq!(AggregateFn::First("weight".into()).eval(&refs).as_f64(), Some(0.5));
        assert!(AggregateFn::First("missing".into()).eval(&refs).is_empty());
    }

    #[test]
    fn naf_count_matches_paper_construction() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        assert_eq!(NafExpr::count().eval(&refs), 3.0);
        assert_eq!(NafExpr::sum("weight").eval(&refs), 4.0);
        assert!((NafExpr::avg("weight").eval(&refs) - 4.0 / 3.0).abs() < 1e-9);
        // Product over the collection.
        assert_eq!(
            NafExpr::ProdOver(Box::new(NafExpr::Attr("weight".into()))).eval(&refs),
            0.5 * 1.5 * 2.0
        );
    }

    #[test]
    fn naf_is_closed_under_composition() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        // (sum(weight) - count) * 2  — arbitrary composition of NAF parts.
        let expr = NafExpr::Mul(
            Box::new(NafExpr::Sub(Box::new(NafExpr::sum("weight")), Box::new(NafExpr::count()))),
            Box::new(NafExpr::Const(2.0)),
        );
        assert_eq!(expr.eval(&refs), (4.0 - 3.0) * 2.0);
    }

    #[test]
    fn naf_division_by_zero_is_total() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        let expr = NafExpr::Div(Box::new(NafExpr::One), Box::new(NafExpr::Zero));
        assert_eq!(expr.eval(&refs), 0.0);
        assert_eq!(NafExpr::avg("weight").eval(&[]), 0.0);
    }

    #[test]
    fn custom_aggregate() {
        let links = group();
        let refs: Vec<&Link> = links.iter().collect();
        let f = AggregateFn::Custom(Arc::new(|ls: &[&Link]| {
            Value::single(ls.iter().filter(|l| l.attrs.get("tags").is_some()).count() as i64)
        }));
        assert_eq!(f.eval(&refs).as_f64(), Some(3.0));
    }

    #[test]
    fn aggregate_fn_equality_never_merges_custom() {
        assert_eq!(AggregateFn::Count, AggregateFn::Count);
        assert_eq!(AggregateFn::Sum("w".into()), AggregateFn::Sum("w".into()));
        assert_ne!(AggregateFn::Sum("w".into()), AggregateFn::Sum("x".into()));
        let c1 = AggregateFn::Custom(Arc::new(|_| Value::empty()));
        let c2 = AggregateFn::Custom(Arc::new(|_| Value::empty()));
        assert_ne!(c1, c2);
    }
}
