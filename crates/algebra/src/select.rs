//! The unary selection operators (paper Defs. 1 and 2).

use crate::condition::Condition;
use crate::scoring::{DefaultScoring, Scoring};
use socialscope_graph::SocialGraph;

/// Node Selection `σN⟨C,S⟩(G)` (Def. 1).
///
/// Returns the *null graph* consisting of the nodes of `G` that satisfy the
/// condition `C` (and none of `G`'s links). When keywords are present, each
/// selected node is annotated with a relevance score computed by `scoring`
/// (or by the default scoring function when `None`).
pub fn node_select(
    graph: &SocialGraph,
    condition: &Condition,
    scoring: Option<&dyn Scoring>,
) -> SocialGraph {
    let default = DefaultScoring;
    let scorer: &dyn Scoring = scoring.unwrap_or(&default);
    let mut out = SocialGraph::new();
    for node in graph.nodes() {
        if condition.satisfied_by_node(node) {
            let mut selected = node.clone();
            if !condition.keywords.is_empty() || scoring.is_some() {
                selected.score = Some(scorer.score(&node.attrs, condition));
            }
            out.add_node(selected);
        }
    }
    out
}

/// Link Selection `σL⟨C,S⟩(G)` (Def. 2).
///
/// Returns the sub-graph of `G` *induced by* the links satisfying `C`: the
/// matching links plus their endpoint nodes. Each selected link is annotated
/// with a score when keywords are present or a scoring function is supplied.
pub fn link_select(
    graph: &SocialGraph,
    condition: &Condition,
    scoring: Option<&dyn Scoring>,
) -> SocialGraph {
    let default = DefaultScoring;
    let scorer: &dyn Scoring = scoring.unwrap_or(&default);
    let matching: Vec<_> =
        graph.links().filter(|l| condition.satisfied_by_link(l)).map(|l| l.id).collect();
    let mut out = graph.induced_by_links(matching);
    if !condition.keywords.is_empty() || scoring.is_some() {
        for link in out.links_mut() {
            link.score = Some(scorer.score(&link.attrs, condition));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Comparison;
    use crate::scoring::AttributeScoring;
    use socialscope_graph::{GraphBuilder, HasAttrs, NodeId};

    fn site() -> (SocialGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user_with_interests("John", &["baseball"]);
        let mary = b.add_user("Mary");
        let denver = b.add_item_with_keywords("Denver", &["city"], &["skiing", "baseball"]);
        let coors = b.add_item_with_keywords("Coors Field", &["destination"], &["baseball"]);
        b.befriend(john, mary);
        b.tag(john, denver, &["rockies", "baseball"]);
        b.visit(mary, coors);
        b.rate(mary, coors, 4.5);
        (b.build(), john, denver, coors)
    }

    #[test]
    fn node_select_produces_null_graph() {
        let (g, ..) = site();
        let users = node_select(&g, &Condition::on_attr("type", "user"), None);
        assert_eq!(users.node_count(), 2);
        assert!(users.is_null_graph());
        // Without keywords and without an explicit scorer, no score is set.
        assert!(users.nodes().all(|n| n.score.is_none()));
    }

    #[test]
    fn node_select_with_keywords_scores_nodes() {
        let (g, ..) = site();
        let cond = Condition::on_attr("type", "item").and_keywords(["baseball"]);
        let items = node_select(&g, &cond, None);
        assert_eq!(items.node_count(), 2);
        assert!(items.nodes().all(|n| n.score == Some(1.0)));

        let cond2 = Condition::on_attr("type", "item").and_keywords(["skiing", "baseball"]);
        let items2 = node_select(&g, &cond2, None);
        let denver_score =
            items2.nodes().find(|n| n.name() == Some("Denver")).unwrap().score.unwrap();
        let coors_score =
            items2.nodes().find(|n| n.name() == Some("Coors Field")).unwrap().score.unwrap();
        assert!(denver_score > coors_score);
    }

    #[test]
    fn node_select_by_id_matches_paper_examples() {
        let (g, john, ..) = site();
        let sel = node_select(&g, &Condition::on_attr("id", john.raw() as i64), None);
        assert_eq!(sel.node_count(), 1);
        assert!(sel.has_node(john));
        let not_john = node_select(
            &g,
            &Condition::any().and_compare("id", Comparison::NotEquals, john.raw() as i64),
            None,
        );
        assert_eq!(not_john.node_count(), g.node_count() - 1);
    }

    #[test]
    fn link_select_induces_endpoints() {
        let (g, ..) = site();
        let acts = link_select(&g, &Condition::on_attr("type", "act"), None);
        assert_eq!(acts.link_count(), 3);
        assert!(acts.links().all(|l| l.has_type("act")));
        for l in acts.links() {
            assert!(acts.has_node(l.src));
            assert!(acts.has_node(l.tgt));
        }
        // Mary appears because of her visit, John because of his tag.
        assert_eq!(acts.node_count(), 4);
    }

    #[test]
    fn link_select_with_attribute_scoring() {
        let (g, ..) = site();
        let ratings = link_select(
            &g,
            &Condition::on_attr("type", "rating"),
            Some(&AttributeScoring::new("rating")),
        );
        assert_eq!(ratings.link_count(), 1);
        assert_eq!(ratings.links().next().unwrap().score, Some(4.5));
    }

    #[test]
    fn empty_condition_selects_all() {
        let (g, ..) = site();
        assert_eq!(node_select(&g, &Condition::any(), None).node_count(), g.node_count());
        assert_eq!(link_select(&g, &Condition::any(), None).link_count(), g.link_count());
    }

    #[test]
    fn selection_on_empty_graph_is_empty() {
        let g = SocialGraph::new();
        assert!(node_select(&g, &Condition::any(), None).is_empty());
        assert!(link_select(&g, &Condition::any(), None).is_empty());
    }
}
