//! Selection conditions (paper §5.1).
//!
//! A condition `C` consists of a list of *structural conditions* (e.g.
//! `{type='city', rating ≥ 0.5}`) and a set of *keywords* (e.g.
//! `"Denver attraction"`). A node (or link) satisfies a structural condition
//! `att = v1,…,vk` when its value set for `att` is a superset of
//! `{v1,…,vk}`; numeric comparisons (`≥`, `≤`, `>`, `<`, `≠`) are also
//! supported, as used in the paper's examples (`rating ≥ 0.5`, `id ≠ 101`,
//! `sim > 0.5`).

use serde::{Deserialize, Serialize};
use socialscope_graph::{AttrMap, HasAttrs, Link, Node, Value};

/// Comparison operator of a structural condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Comparison {
    /// Multi-valued superset equality (the paper's default `att = v1,…,vk`).
    Equals,
    /// Numeric inequality `att ≠ v` (e.g. `id ≠ 101`).
    NotEquals,
    /// Numeric `att ≥ v`.
    GreaterOrEqual,
    /// Numeric `att > v`.
    Greater,
    /// Numeric `att ≤ v`.
    LessOrEqual,
    /// Numeric `att < v`.
    Less,
}

/// A single structural condition over an attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralCondition {
    /// Attribute name; the pseudo-attribute `id` refers to the element id.
    pub attr: String,
    /// Comparison operator.
    pub cmp: Comparison,
    /// Required value(s).
    pub value: Value,
}

impl StructuralCondition {
    /// Superset-equality condition `attr = value(s)`.
    pub fn equals(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        StructuralCondition { attr: attr.into(), cmp: Comparison::Equals, value: value.into() }
    }

    /// Numeric comparison condition.
    pub fn compare(attr: impl Into<String>, cmp: Comparison, value: impl Into<Value>) -> Self {
        StructuralCondition { attr: attr.into(), cmp, value: value.into() }
    }

    /// Evaluate the condition against an attribute map, with the element id
    /// supplied separately so that conditions such as `id = 101` and
    /// `id ≠ 101` from the paper's examples work even though `id` is not a
    /// stored attribute.
    pub fn eval(&self, attrs: &AttrMap, element_id: u64) -> bool {
        if self.attr == "id" {
            let required = match self.value.as_f64() {
                Some(v) => v,
                None => return false,
            };
            return compare_f64(element_id as f64, self.cmp, required);
        }
        match self.cmp {
            Comparison::Equals => attrs.satisfies_equals(&self.attr, &self.value),
            _ => {
                let actual = match attrs.get_f64(&self.attr) {
                    Some(v) => v,
                    None => return false,
                };
                let required = match self.value.as_f64() {
                    Some(v) => v,
                    None => return false,
                };
                compare_f64(actual, self.cmp, required)
            }
        }
    }
}

fn compare_f64(actual: f64, cmp: Comparison, required: f64) -> bool {
    match cmp {
        Comparison::Equals => actual == required,
        Comparison::NotEquals => actual != required,
        Comparison::GreaterOrEqual => actual >= required,
        Comparison::Greater => actual > required,
        Comparison::LessOrEqual => actual <= required,
        Comparison::Less => actual < required,
    }
}

/// A full selection condition: structural conditions plus keywords.
///
/// * All structural conditions must be satisfied (Boolean semantics,
///   paper §4).
/// * When keywords are present, the element must match at least one keyword
///   in its attribute text; the *degree* of the match is what the scoring
///   function turns into a relevance score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Condition {
    /// Structural predicates, all of which must hold.
    pub structural: Vec<StructuralCondition>,
    /// Free-text keywords used for semantic relevance.
    pub keywords: Vec<String>,
}

impl Condition {
    /// The empty condition (matches everything).
    pub fn any() -> Self {
        Condition::default()
    }

    /// A condition with a single superset-equality structural predicate.
    pub fn on_attr(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition {
            structural: vec![StructuralCondition::equals(attr, value)],
            keywords: Vec::new(),
        }
    }

    /// A condition with the given keywords only.
    pub fn keywords<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Condition {
            structural: Vec::new(),
            keywords: words.into_iter().map(|w| w.into().to_lowercase()).collect(),
        }
    }

    /// Builder: add a superset-equality structural predicate.
    pub fn and_attr(mut self, attr: impl Into<String>, value: impl Into<Value>) -> Self {
        self.structural.push(StructuralCondition::equals(attr, value));
        self
    }

    /// Builder: add a comparison structural predicate.
    pub fn and_compare(
        mut self,
        attr: impl Into<String>,
        cmp: Comparison,
        value: impl Into<Value>,
    ) -> Self {
        self.structural.push(StructuralCondition::compare(attr, cmp, value));
        self
    }

    /// Builder: add keywords.
    pub fn and_keywords<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.keywords.extend(words.into_iter().map(|w| w.into().to_lowercase()));
        self
    }

    /// Conjunction of two conditions (used by the optimizer's
    /// selection-fusion rule).
    pub fn and(mut self, other: &Condition) -> Condition {
        self.structural.extend(other.structural.iter().cloned());
        for k in &other.keywords {
            if !self.keywords.contains(k) {
                self.keywords.push(k.clone());
            }
        }
        self
    }

    /// Whether the condition has neither structural predicates nor keywords.
    pub fn is_empty(&self) -> bool {
        self.structural.is_empty() && self.keywords.is_empty()
    }

    /// Core satisfaction check against an attribute map + element id.
    pub fn satisfied_by_attrs(&self, attrs: &AttrMap, element_id: u64) -> bool {
        if !self.structural.iter().all(|c| c.eval(attrs, element_id)) {
            return false;
        }
        if self.keywords.is_empty() {
            return true;
        }
        let tokens = attrs.all_tokens();
        self.keywords.iter().any(|k| tokens.iter().any(|t| t == k || t.contains(k.as_str())))
    }

    /// Number of keywords present in the element's attribute text (used by
    /// the default scoring function).
    pub fn keyword_matches(&self, attrs: &AttrMap) -> usize {
        if self.keywords.is_empty() {
            return 0;
        }
        let tokens = attrs.all_tokens();
        self.keywords
            .iter()
            .filter(|k| tokens.iter().any(|t| t == *k || t.contains(k.as_str())))
            .count()
    }

    /// Satisfaction for a node.
    pub fn satisfied_by_node(&self, node: &Node) -> bool {
        self.satisfied_by_attrs(node.attrs(), node.id.raw())
    }

    /// Satisfaction for a link.
    pub fn satisfied_by_link(&self, link: &Link) -> bool {
        self.satisfied_by_attrs(link.attrs(), link.id.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::{LinkId, NodeId};

    fn denver() -> Node {
        Node::new(NodeId(2), ["item", "city"])
            .with_attr("name", "Denver")
            .with_attr("keywords", Value::multi(["skiing", "baseball"]))
            .with_attr("rating", 0.8)
    }

    #[test]
    fn structural_equality_superset() {
        let n = denver();
        assert!(Condition::on_attr("type", "city").satisfied_by_node(&n));
        assert!(Condition::on_attr("type", Value::multi(["item", "city"])).satisfied_by_node(&n));
        assert!(!Condition::on_attr("type", "user").satisfied_by_node(&n));
    }

    #[test]
    fn numeric_comparisons() {
        let n = denver();
        let c = Condition::any().and_compare("rating", Comparison::GreaterOrEqual, 0.5);
        assert!(c.satisfied_by_node(&n));
        let c = Condition::any().and_compare("rating", Comparison::Greater, 0.9);
        assert!(!c.satisfied_by_node(&n));
        let c = Condition::any().and_compare("missing", Comparison::Greater, 0.0);
        assert!(!c.satisfied_by_node(&n));
    }

    #[test]
    fn id_pseudo_attribute() {
        let n = denver();
        assert!(Condition::on_attr("id", 2i64).satisfied_by_node(&n));
        assert!(!Condition::on_attr("id", 3i64).satisfied_by_node(&n));
        let ne = Condition::any().and_compare("id", Comparison::NotEquals, 2i64);
        assert!(!ne.satisfied_by_node(&n));
        let ne = Condition::any().and_compare("id", Comparison::NotEquals, 7i64);
        assert!(ne.satisfied_by_node(&n));
    }

    #[test]
    fn keyword_soft_matching() {
        let n = denver();
        let c = Condition::keywords(["denver", "attraction"]);
        assert!(c.satisfied_by_node(&n));
        assert_eq!(c.keyword_matches(n.attrs()), 1);
        let c = Condition::keywords(["paris"]);
        assert!(!c.satisfied_by_node(&n));
    }

    #[test]
    fn combined_structural_and_keywords() {
        let n = denver();
        let c = Condition::on_attr("type", "city").and_keywords(["baseball"]);
        assert!(c.satisfied_by_node(&n));
        let c = Condition::on_attr("type", "user").and_keywords(["baseball"]);
        assert!(!c.satisfied_by_node(&n));
    }

    #[test]
    fn conjunction_of_conditions() {
        let a = Condition::on_attr("type", "city");
        let b = Condition::keywords(["skiing"]).and_attr("rating", 0.8);
        let c = a.and(&b);
        assert_eq!(c.structural.len(), 2);
        assert_eq!(c.keywords.len(), 1);
        assert!(c.satisfied_by_node(&denver()));
    }

    #[test]
    fn link_conditions() {
        let l = Link::new(LinkId(12), NodeId(1), NodeId(2), ["act", "tag"])
            .with_attr("tags", Value::parse_list("rockies baseball"));
        assert!(Condition::on_attr("type", "tag").satisfied_by_link(&l));
        assert!(Condition::on_attr("tags", "rockies").satisfied_by_link(&l));
        assert!(!Condition::on_attr("type", "friend").satisfied_by_link(&l));
        assert!(Condition::on_attr("id", 12i64).satisfied_by_link(&l));
    }

    #[test]
    fn empty_condition_matches_everything() {
        assert!(Condition::any().satisfied_by_node(&denver()));
        assert!(Condition::any().is_empty());
    }
}
