//! Scoring functions for the selection operators (paper §5.1).
//!
//! Node and Link Selection take an optional scoring function `S`; when
//! keywords are present but no function is supplied, a *default* scoring
//! function is used. Scores express semantic relevance and are attached to
//! the selected nodes/links; the discovery layer later combines them with
//! social relevance.

use crate::condition::Condition;
use socialscope_graph::{AttrMap, SocialGraph};
use std::collections::HashMap;

/// A scoring function: maps an element's attributes and the query keywords
/// to a relevance score in `[0, 1]` (by convention; nothing enforces the
/// range for custom functions).
pub trait Scoring: Send + Sync {
    /// Score the element described by `attrs` against the keywords of
    /// `condition`.
    fn score(&self, attrs: &AttrMap, condition: &Condition) -> f64;

    /// A short human-readable name used in plan explanations.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The default scoring function: the fraction of query keywords that appear
/// in the element's attribute text. With no keywords the score is `1.0`
/// (pure structural selection).
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultScoring;

impl Scoring for DefaultScoring {
    fn score(&self, attrs: &AttrMap, condition: &Condition) -> f64 {
        if condition.keywords.is_empty() {
            return 1.0;
        }
        condition.keyword_matches(attrs) as f64 / condition.keywords.len() as f64
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

/// A constant scoring function (useful for tests and for selections whose
/// score should not matter downstream).
#[derive(Debug, Clone, Copy)]
pub struct ConstantScoring(pub f64);

impl Scoring for ConstantScoring {
    fn score(&self, _attrs: &AttrMap, _condition: &Condition) -> f64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "constant"
    }
}

/// A scoring function that reads the score from a numeric attribute of the
/// element (e.g. a pre-computed `rating` or `sim` value), defaulting to 0
/// when the attribute is absent.
#[derive(Debug, Clone)]
pub struct AttributeScoring {
    /// The attribute to read.
    pub attr: String,
}

impl AttributeScoring {
    /// Score by the given attribute.
    pub fn new(attr: impl Into<String>) -> Self {
        AttributeScoring { attr: attr.into() }
    }
}

impl Scoring for AttributeScoring {
    fn score(&self, attrs: &AttrMap, _condition: &Condition) -> f64 {
        attrs.get_f64(&self.attr).unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "attribute"
    }
}

/// A tf–idf scoring function over the node corpus of a social content graph,
/// in the spirit of the classic IR measure the paper contrasts with
/// (§2.1, §6.2 and ref \[6\]).
///
/// Document frequency is computed over the attribute text of every node of
/// the corpus graph; term frequency is computed per element at scoring time.
#[derive(Debug, Clone)]
pub struct TfIdfScoring {
    doc_freq: HashMap<String, usize>,
    num_docs: usize,
}

impl TfIdfScoring {
    /// Build corpus statistics from the nodes of a graph.
    pub fn from_graph(corpus: &SocialGraph) -> Self {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut num_docs = 0usize;
        for node in corpus.nodes() {
            num_docs += 1;
            let mut tokens = node.attrs.all_tokens();
            tokens.sort();
            tokens.dedup();
            for t in tokens {
                *doc_freq.entry(t).or_default() += 1;
            }
        }
        TfIdfScoring { doc_freq, num_docs }
    }

    /// Inverse document frequency of a term (smoothed).
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        ((1.0 + self.num_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Number of documents in the corpus.
    pub fn corpus_size(&self) -> usize {
        self.num_docs
    }
}

impl Scoring for TfIdfScoring {
    fn score(&self, attrs: &AttrMap, condition: &Condition) -> f64 {
        if condition.keywords.is_empty() {
            return 1.0;
        }
        let tokens = attrs.all_tokens();
        if tokens.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for kw in &condition.keywords {
            let tf = tokens.iter().filter(|t| *t == kw).count() as f64 / tokens.len() as f64;
            total += tf * self.idf(kw);
        }
        // Normalize by the best possible score so results stay comparable
        // with the default scoring's [0, 1] range.
        let max_possible: f64 = condition.keywords.iter().map(|k| self.idf(k)).sum();
        if max_possible == 0.0 {
            0.0
        } else {
            (total / max_possible).min(1.0)
        }
    }

    fn name(&self) -> &'static str {
        "tfidf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::{GraphBuilder, Value};

    fn attrs(pairs: &[(&str, Value)]) -> AttrMap {
        let mut m = AttrMap::new();
        for (k, v) in pairs {
            m.set(*k, v.clone());
        }
        m
    }

    #[test]
    fn default_scoring_is_keyword_fraction() {
        let a = attrs(&[("name", Value::single("Coors Field baseball stadium"))]);
        let c = Condition::keywords(["baseball", "museum"]);
        assert!((DefaultScoring.score(&a, &c) - 0.5).abs() < 1e-9);
        let c_all = Condition::keywords(["baseball", "stadium"]);
        assert!((DefaultScoring.score(&a, &c_all) - 1.0).abs() < 1e-9);
        assert_eq!(DefaultScoring.score(&a, &Condition::any()), 1.0);
    }

    #[test]
    fn constant_and_attribute_scoring() {
        let a = attrs(&[("rating", Value::single(0.7))]);
        assert_eq!(ConstantScoring(0.3).score(&a, &Condition::any()), 0.3);
        assert_eq!(AttributeScoring::new("rating").score(&a, &Condition::any()), 0.7);
        assert_eq!(AttributeScoring::new("missing").score(&a, &Condition::any()), 0.0);
    }

    #[test]
    fn tfidf_prefers_rare_terms() {
        let mut b = GraphBuilder::new();
        // "attraction" appears on every item; "ballpark" only on one.
        for i in 0..20 {
            b.add_item_with_keywords(&format!("place{i}"), &["destination"], &["attraction"]);
        }
        b.add_item_with_keywords(
            "B's Ballpark Museum",
            &["destination"],
            &["attraction", "ballpark"],
        );
        let g = b.build();
        let scorer = TfIdfScoring::from_graph(&g);
        assert!(scorer.idf("ballpark") > scorer.idf("attraction"));

        let rare = attrs(&[("keywords", Value::multi(["ballpark"]))]);
        let common = attrs(&[("keywords", Value::multi(["attraction"]))]);
        let c = Condition::keywords(["ballpark", "attraction"]);
        assert!(scorer.score(&rare, &c) > scorer.score(&common, &c));
    }

    #[test]
    fn tfidf_handles_empty_docs_and_queries() {
        let g = GraphBuilder::new().build();
        let scorer = TfIdfScoring::from_graph(&g);
        assert_eq!(scorer.corpus_size(), 0);
        let a = AttrMap::new();
        assert_eq!(scorer.score(&a, &Condition::keywords(["x"])), 0.0);
        assert_eq!(scorer.score(&a, &Condition::any()), 1.0);
    }

    #[test]
    fn scoring_names() {
        assert_eq!(DefaultScoring.name(), "default");
        assert_eq!(ConstantScoring(1.0).name(), "constant");
        assert_eq!(AttributeScoring::new("x").name(), "attribute");
    }
}
