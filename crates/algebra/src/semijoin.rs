//! The Semi-Join operator (paper Def. 6).

use crate::compose::DirectionalCondition;
use socialscope_graph::{FxHashSet, NodeId, SocialGraph};

/// Semi-Join `G1 ⋉δ G2` (Def. 6): the sub-graph of `G1` induced by the
/// links of `G1` whose `δ.d1` endpoint matches the `δ.d2` endpoint of some
/// link of `G2`.
///
/// As in the paper, when `G2` is a *null graph* (nodes but no links — the
/// output of Node Selection), the match is performed against the nodes of
/// `G2` instead: a link of `G1` qualifies when its `δ.d1` endpoint is a node
/// of `G2`. This is exactly how Example 4 uses the operator
/// (`G ⋉(src,src) σN_id=101(G)` keeps the links leaving John).
pub fn semi_join(g1: &SocialGraph, g2: &SocialGraph, delta: DirectionalCondition) -> SocialGraph {
    let anchor: FxHashSet<NodeId> = if g2.is_null_graph() {
        g2.node_id_set()
    } else {
        g2.links().map(|l| l.endpoint(delta.right)).collect()
    };
    let keep: Vec<_> =
        g1.links().filter(|l| anchor.contains(&l.endpoint(delta.left))).map(|l| l.id).collect();
    g1.induced_by_links(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::select::{link_select, node_select};
    use socialscope_graph::{Direction, GraphBuilder, NodeId};

    fn site() -> (SocialGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let pete = b.add_user("Pete");
        let red_rocks =
            b.add_item_with_keywords("Red Rocks", &["destination"], &["near", "denver"]);
        let zoo = b.add_item_with_keywords("Denver Zoo", &["destination"], &["near", "denver"]);
        b.befriend(john, mary);
        b.befriend(john, pete);
        b.visit(mary, red_rocks);
        b.visit(pete, zoo);
        b.visit(john, zoo);
        (b.build(), john, mary, pete, red_rocks)
    }

    #[test]
    fn semi_join_against_null_graph_matches_nodes() {
        let (g, john, ..) = site();
        // Links whose source is John.
        let john_nodes = node_select(&g, &Condition::on_attr("id", john.raw() as i64), None);
        let out =
            semi_join(&g, &john_nodes, DirectionalCondition::new(Direction::Src, Direction::Src));
        assert_eq!(out.link_count(), 3); // two friendships + one visit
        assert!(out.links().all(|l| l.src == john));
    }

    #[test]
    fn semi_join_against_link_graph_matches_link_endpoints() {
        let (g, _john, mary, pete, _rr) = site();
        // Right side: visit links (their sources are the visiting users).
        let visits = link_select(&g, &Condition::on_attr("type", "visit"), None);
        // Keep links of G whose target is a visitor.
        let out = semi_join(&g, &visits, DirectionalCondition::new(Direction::Tgt, Direction::Src));
        // Friendships John->Mary and John->Pete qualify (Mary and Pete visit).
        assert_eq!(out.link_count(), 2);
        let tgts: Vec<NodeId> = out.links().map(|l| l.tgt).collect();
        assert!(tgts.contains(&mary) && tgts.contains(&pete));
    }

    #[test]
    fn semi_join_with_empty_right_is_empty() {
        let (g, ..) = site();
        let empty = SocialGraph::new();
        let out = semi_join(&g, &empty, DirectionalCondition::new(Direction::Src, Direction::Src));
        assert!(out.is_empty());
    }

    #[test]
    fn semi_join_output_is_subgraph_of_left() {
        let (g, john, ..) = site();
        let john_nodes = node_select(&g, &Condition::on_attr("id", john.raw() as i64), None);
        let out =
            semi_join(&g, &john_nodes, DirectionalCondition::new(Direction::Src, Direction::Src));
        for l in out.links() {
            assert!(g.has_link(l.id));
        }
        for n in out.nodes() {
            assert!(g.has_node(n.id));
        }
    }

    #[test]
    fn paper_example4_friend_step() {
        // G1 = σL_type=friend(G ⋉(src,src) σN_id=John(G)) — John's network.
        let (g, john, mary, pete, _) = site();
        let john_nodes = node_select(&g, &Condition::on_attr("id", john.raw() as i64), None);
        let touching =
            semi_join(&g, &john_nodes, DirectionalCondition::new(Direction::Src, Direction::Src));
        let friendships = link_select(&touching, &Condition::on_attr("type", "friend"), None);
        assert_eq!(friendships.link_count(), 2);
        assert!(friendships.has_node(mary));
        assert!(friendships.has_node(pete));
        assert!(friendships.has_node(john));
    }
}
