//! # socialscope-algebra
//!
//! The SocialScope social content graph algebra (paper §5).
//!
//! SocialScope proposes a *logical algebra* in which every operator takes
//! social content graphs as input and produces a social content graph as
//! output, so that analysis and information-discovery tasks can be specified
//! declaratively, composed freely, and optimized. This crate implements the
//! full operator set of the paper:
//!
//! | Paper operator | Module | Function |
//! |---|---|---|
//! | Node Selection `σN⟨C,S⟩` (Def. 1) | [`select`] | [`select::node_select`] |
//! | Link Selection `σL⟨C,S⟩` (Def. 2) | [`select`] | [`select::link_select`] |
//! | Union / Intersection / Node-Driven Minus (Def. 3) | [`setops`] | [`setops::union`], [`setops::intersect`], [`setops::minus`] |
//! | Link-Driven Minus `\·` (Def. 4) | [`setops`] | [`setops::minus_link_driven`] |
//! | Composition `⊙⟨δ,F⟩` (Def. 5) | [`mod@compose`] | [`compose::compose()`] |
//! | Semi-Join `⋉δ` (Def. 6) | [`semijoin`] | [`semijoin::semi_join`] |
//! | Set / numerical aggregate functions SAF & NAF (Defs. 7–8) | [`aggfn`] | [`aggfn::AggregateFn`], [`aggfn::NafExpr`] |
//! | Node Aggregation `γN⟨C,d,att,A⟩` (Def. 9) | [`aggregate`] | [`aggregate::node_aggregate`] |
//! | Link Aggregation `γL⟨C,att,A⟩` (Def. 10) | [`aggregate`] | [`aggregate::link_aggregate`] |
//! | Graph-pattern aggregation (§5.4, Fig. 2) | [`pattern`] | [`pattern::pattern_aggregate`] |
//!
//! On top of the operators, [`plan`] provides a composable logical-plan
//! representation, [`eval`] an evaluator, and [`optimizer`] a small
//! rule-based rewriter (selection fusion and pushdown, common-subexpression
//! elimination, set-operation simplification) — the "declarative, flexible,
//! and optimizable" promise of the paper's Information Discovery layer.
//!
//! ## Example: a fragment of the search task of paper Example 4
//!
//! ```
//! use socialscope_algebra::prelude::*;
//! use socialscope_graph::GraphBuilder;
//!
//! // Build a tiny site: John, a friend, a destination near Denver.
//! let mut b = GraphBuilder::new();
//! let john = b.add_user("John");
//! let mary = b.add_user("Mary");
//! let red_rocks = b.add_item_with_keywords("Red Rocks", &["destination"], &["near", "denver"]);
//! b.befriend(john, mary);
//! b.visit(mary, red_rocks);
//! let g = b.build();
//!
//! // John's friendship links: σL_type=friend(G ⋉(src,src) σN_id(G)).
//! let john_nodes = node_select(&g, &Condition::on_attr("id", john.raw() as i64), None);
//! let touching_john = semi_join(
//!     &g,
//!     &john_nodes,
//!     DirectionalCondition::new(Direction::Src, Direction::Src),
//! );
//! let friendships = link_select(&touching_john, &Condition::on_attr("type", "friend"), None);
//! assert_eq!(friendships.link_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggfn;
pub mod aggregate;
pub mod compose;
pub mod condition;
pub mod error;
pub mod eval;
pub mod optimizer;
pub mod pattern;
pub mod plan;
pub mod scoring;
pub mod select;
pub mod semijoin;
pub mod setops;

pub use aggfn::{AggregateFn, NafExpr};
pub use aggregate::{link_aggregate, link_aggregate_multi, node_aggregate};
pub use compose::{compose, ComposeFn, ComposeSpec, DirectionalCondition};
pub use condition::{Condition, StructuralCondition};
pub use error::AlgebraError;
pub use eval::Evaluator;
pub use optimizer::{OptimizationReport, Optimizer};
pub use pattern::{pattern_aggregate, GraphPattern, PathAggregate, PatternStep};
pub use plan::{Plan, PlanBuilder, ScoringSpec};
pub use scoring::{AttributeScoring, ConstantScoring, DefaultScoring, Scoring, TfIdfScoring};
pub use select::{link_select, node_select};
pub use semijoin::semi_join;
pub use setops::{intersect, minus, minus_link_driven, union};

/// Convenience result alias for algebra operations.
pub type Result<T> = std::result::Result<T, AlgebraError>;

/// Commonly used items, re-exported for concise call sites.
pub mod prelude {
    pub use crate::aggfn::{AggregateFn, NafExpr};
    pub use crate::aggregate::{link_aggregate, link_aggregate_multi, node_aggregate};
    pub use crate::compose::{compose, ComposeSpec, DirectionalCondition};
    pub use crate::condition::{Condition, StructuralCondition};
    pub use crate::eval::Evaluator;
    pub use crate::optimizer::Optimizer;
    pub use crate::pattern::{pattern_aggregate, GraphPattern, PathAggregate, PatternStep};
    pub use crate::plan::{Plan, PlanBuilder, ScoringSpec};
    pub use crate::scoring::{DefaultScoring, Scoring};
    pub use crate::select::{link_select, node_select};
    pub use crate::semijoin::semi_join;
    pub use crate::setops::{intersect, minus, minus_link_driven, union};
    pub use socialscope_graph::{Direction, HasAttrs};
}
