//! Logical plans over the algebra.
//!
//! A [`Plan`] is a tree of algebra operators whose leaves are [`Plan::Base`]
//! — the social content graph the plan is evaluated against. Plans make the
//! algebra *declarative*: information-discovery tasks (the search of
//! Example 4, the collaborative filtering of Example 5) are values that can
//! be inspected, rewritten by the [`crate::optimizer`], and evaluated by the
//! [`crate::eval::Evaluator`].

use crate::aggfn::AggregateFn;
use crate::compose::{ComposeFn, ComposeSpec, DirectionalCondition};
use crate::condition::Condition;
use crate::pattern::{GraphPattern, PathAggregate};
use socialscope_graph::Direction;
use std::fmt;
use std::sync::Arc;

/// Declarative description of a scoring function, resolvable by the
/// evaluator without carrying trait objects inside plans.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoringSpec {
    /// The default keyword-fraction scoring.
    Default,
    /// A constant score.
    Constant(f64),
    /// Read the score from a numeric attribute.
    Attribute(String),
    /// tf–idf over the base graph's node corpus.
    TfIdf,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// The base social content graph supplied at evaluation time.
    Base,
    /// Node Selection `σN⟨C,S⟩`.
    NodeSelect {
        /// Input plan.
        input: Arc<Plan>,
        /// Selection condition.
        condition: Condition,
        /// Optional scoring specification.
        scoring: Option<ScoringSpec>,
    },
    /// Link Selection `σL⟨C,S⟩`.
    LinkSelect {
        /// Input plan.
        input: Arc<Plan>,
        /// Selection condition.
        condition: Condition,
        /// Optional scoring specification.
        scoring: Option<ScoringSpec>,
    },
    /// Union `∪`.
    Union {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
    },
    /// Intersection `∩`.
    Intersect {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
    },
    /// Node-Driven Minus `\`.
    Minus {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
    },
    /// Link-Driven Minus `\·`.
    MinusLinkDriven {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
    },
    /// Composition `⊙⟨δ,F⟩`.
    Compose {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
        /// Directional condition.
        delta: DirectionalCondition,
        /// Composition function.
        f: ComposeSpec,
    },
    /// Semi-Join `⋉δ`.
    SemiJoin {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
        /// Directional condition.
        delta: DirectionalCondition,
    },
    /// Node Aggregation `γN⟨C,d,att,A⟩`.
    NodeAgg {
        /// Input plan.
        input: Arc<Plan>,
        /// Link condition.
        condition: Condition,
        /// Grouping direction.
        direction: Direction,
        /// Destination attribute.
        attr: String,
        /// Aggregation function.
        agg: AggregateFn,
    },
    /// Link Aggregation `γL⟨C,att,A⟩`, possibly with several destination
    /// attributes computed from the same grouping.
    LinkAgg {
        /// Input plan.
        input: Arc<Plan>,
        /// Link condition.
        condition: Condition,
        /// Destination attributes and their aggregation functions.
        aggs: Vec<(String, AggregateFn)>,
    },
    /// Pattern-based aggregation `γL⟨GP,att,A⟩`.
    PatternAgg {
        /// Input plan.
        input: Arc<Plan>,
        /// The graph pattern.
        pattern: GraphPattern,
        /// Destination attribute.
        attr: String,
        /// Path aggregate.
        agg: PathAggregate,
    },
}

impl Plan {
    /// Children of this plan node, in order.
    pub fn children(&self) -> Vec<&Arc<Plan>> {
        match self {
            Plan::Base => vec![],
            Plan::NodeSelect { input, .. }
            | Plan::LinkSelect { input, .. }
            | Plan::NodeAgg { input, .. }
            | Plan::LinkAgg { input, .. }
            | Plan::PatternAgg { input, .. } => vec![input],
            Plan::Union { left, right }
            | Plan::Intersect { left, right }
            | Plan::Minus { left, right }
            | Plan::MinusLinkDriven { left, right }
            | Plan::SemiJoin { left, right, .. }
            | Plan::Compose { left, right, .. } => vec![left, right],
        }
    }

    /// Total number of operator nodes in the tree (counting shared subtrees
    /// once per occurrence).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Operator name, for explanations.
    pub fn op_name(&self) -> &'static str {
        match self {
            Plan::Base => "base",
            Plan::NodeSelect { .. } => "node_select",
            Plan::LinkSelect { .. } => "link_select",
            Plan::Union { .. } => "union",
            Plan::Intersect { .. } => "intersect",
            Plan::Minus { .. } => "minus",
            Plan::MinusLinkDriven { .. } => "minus_link_driven",
            Plan::Compose { .. } => "compose",
            Plan::SemiJoin { .. } => "semi_join",
            Plan::NodeAgg { .. } => "node_agg",
            Plan::LinkAgg { .. } => "link_agg",
            Plan::PatternAgg { .. } => "pattern_agg",
        }
    }

    /// Render an indented textual explanation of the plan tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(indent);
        let _ = writeln!(out, "{pad}{}", self.describe());
        for c in self.children() {
            c.explain_into(out, indent + 1);
        }
    }

    fn describe(&self) -> String {
        match self {
            Plan::Base => "Base".to_string(),
            Plan::NodeSelect { condition, scoring, .. } => format!(
                "NodeSelect[{} structural, {} keywords, scoring={:?}]",
                condition.structural.len(),
                condition.keywords.len(),
                scoring
            ),
            Plan::LinkSelect { condition, .. } => format!(
                "LinkSelect[{} structural, {} keywords]",
                condition.structural.len(),
                condition.keywords.len()
            ),
            Plan::Union { .. } => "Union".to_string(),
            Plan::Intersect { .. } => "Intersect".to_string(),
            Plan::Minus { .. } => "Minus".to_string(),
            Plan::MinusLinkDriven { .. } => "MinusLinkDriven".to_string(),
            Plan::Compose { delta, f, .. } => {
                format!("Compose[delta=({:?},{:?}), f={}]", delta.left, delta.right, f.name())
            }
            Plan::SemiJoin { delta, .. } => {
                format!("SemiJoin[delta=({:?},{:?})]", delta.left, delta.right)
            }
            Plan::NodeAgg { attr, agg, direction, .. } => {
                format!("NodeAgg[dir={direction}, attr={attr}, agg={agg:?}]")
            }
            Plan::LinkAgg { aggs, .. } => format!(
                "LinkAgg[{}]",
                aggs.iter().map(|(a, g)| format!("{a}={g:?}")).collect::<Vec<_>>().join(", ")
            ),
            Plan::PatternAgg { pattern, attr, .. } => {
                format!("PatternAgg[{} hops, attr={attr}]", pattern.len())
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// Fluent construction of plans. A `PlanBuilder` wraps an `Arc<Plan>`; each
/// method returns a new builder so sub-plans can be reused (shared
/// sub-expressions stay shared, which the evaluator exploits).
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: Arc<Plan>,
}

impl PlanBuilder {
    /// Start from the base graph.
    pub fn base() -> Self {
        PlanBuilder { plan: Arc::new(Plan::Base) }
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: Arc<Plan>) -> Self {
        PlanBuilder { plan }
    }

    /// The built plan.
    pub fn build(self) -> Arc<Plan> {
        self.plan
    }

    /// Borrow the plan being built.
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// Apply Node Selection.
    pub fn node_select(self, condition: Condition) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::NodeSelect { input: self.plan, condition, scoring: None }),
        }
    }

    /// Apply Node Selection with a scoring specification.
    pub fn node_select_scored(self, condition: Condition, scoring: ScoringSpec) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::NodeSelect {
                input: self.plan,
                condition,
                scoring: Some(scoring),
            }),
        }
    }

    /// Apply Link Selection.
    pub fn link_select(self, condition: Condition) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::LinkSelect { input: self.plan, condition, scoring: None }),
        }
    }

    /// Apply Link Selection with a scoring specification.
    pub fn link_select_scored(self, condition: Condition, scoring: ScoringSpec) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::LinkSelect {
                input: self.plan,
                condition,
                scoring: Some(scoring),
            }),
        }
    }

    /// Union with another plan.
    pub fn union(self, other: &PlanBuilder) -> Self {
        PlanBuilder { plan: Arc::new(Plan::Union { left: self.plan, right: other.plan.clone() }) }
    }

    /// Intersection with another plan.
    pub fn intersect(self, other: &PlanBuilder) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::Intersect { left: self.plan, right: other.plan.clone() }),
        }
    }

    /// Node-driven minus with another plan.
    pub fn minus(self, other: &PlanBuilder) -> Self {
        PlanBuilder { plan: Arc::new(Plan::Minus { left: self.plan, right: other.plan.clone() }) }
    }

    /// Link-driven minus with another plan.
    pub fn minus_link_driven(self, other: &PlanBuilder) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::MinusLinkDriven { left: self.plan, right: other.plan.clone() }),
        }
    }

    /// Compose with another plan.
    pub fn compose(self, other: &PlanBuilder, delta: DirectionalCondition, f: ComposeSpec) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::Compose { left: self.plan, right: other.plan.clone(), delta, f }),
        }
    }

    /// Semi-join with another plan.
    pub fn semi_join(self, other: &PlanBuilder, delta: DirectionalCondition) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::SemiJoin { left: self.plan, right: other.plan.clone(), delta }),
        }
    }

    /// Apply Node Aggregation.
    pub fn node_agg(
        self,
        condition: Condition,
        direction: Direction,
        attr: impl Into<String>,
        agg: AggregateFn,
    ) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::NodeAgg {
                input: self.plan,
                condition,
                direction,
                attr: attr.into(),
                agg,
            }),
        }
    }

    /// Apply Link Aggregation with a single destination attribute.
    pub fn link_agg(self, condition: Condition, attr: impl Into<String>, agg: AggregateFn) -> Self {
        self.link_agg_multi(condition, vec![(attr.into(), agg)])
    }

    /// Apply Link Aggregation with several destination attributes.
    pub fn link_agg_multi(self, condition: Condition, aggs: Vec<(String, AggregateFn)>) -> Self {
        PlanBuilder { plan: Arc::new(Plan::LinkAgg { input: self.plan, condition, aggs }) }
    }

    /// Apply pattern-based aggregation.
    pub fn pattern_agg(
        self,
        pattern: GraphPattern,
        attr: impl Into<String>,
        agg: PathAggregate,
    ) -> Self {
        PlanBuilder {
            plan: Arc::new(Plan::PatternAgg { input: self.plan, pattern, attr: attr.into(), agg }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::NodeId;

    #[test]
    fn builder_constructs_expected_tree() {
        let john_net = PlanBuilder::base()
            .semi_join(
                &PlanBuilder::base().node_select(Condition::on_attr("id", 101i64)),
                DirectionalCondition::src_src(),
            )
            .link_select(Condition::on_attr("type", "friend"));
        let plan = john_net.build();
        assert_eq!(plan.op_name(), "link_select");
        // link_select -> semi_join -> { base, node_select -> base } = 5 nodes.
        assert_eq!(plan.size(), 5);
        assert_eq!(plan.depth(), 4);
        let explained = plan.explain();
        assert!(explained.contains("SemiJoin"));
        assert!(explained.contains("NodeSelect"));
    }

    #[test]
    fn plans_compare_structurally() {
        let a = PlanBuilder::base().node_select(Condition::on_attr("type", "user")).build();
        let b = PlanBuilder::base().node_select(Condition::on_attr("type", "user")).build();
        let c = PlanBuilder::base().node_select(Condition::on_attr("type", "item")).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shared_subplans_stay_shared() {
        let shared = PlanBuilder::base().node_select(Condition::on_attr("type", "user"));
        let plan = shared.clone().union(&shared).build();
        match &*plan {
            Plan::Union { left, right } => assert!(Arc::ptr_eq(left, right)),
            _ => panic!("expected union"),
        }
    }

    #[test]
    fn pattern_agg_plan_node() {
        let plan = PlanBuilder::base()
            .pattern_agg(
                GraphPattern::fig2_collaborative_filtering(NodeId(101)),
                "score",
                PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
            )
            .build();
        assert_eq!(plan.op_name(), "pattern_agg");
        assert!(plan.explain().contains("2 hops"));
    }

    #[test]
    fn display_matches_explain() {
        let plan = PlanBuilder::base().link_select(Condition::on_attr("type", "visit")).build();
        assert_eq!(format!("{plan}"), plan.explain());
    }
}
