//! The aggregation operators (paper Defs. 9 and 10).

use crate::aggfn::AggregateFn;
use crate::condition::Condition;
use socialscope_graph::{Direction, FxHashMap, Link, NodeId, SocialGraph};

/// Node Aggregation `γN⟨C,d,att,A⟩(G)` (Def. 9).
///
/// Produces a graph isomorphic to `G` in which every node `v` that is the
/// `d` endpoint of at least one link satisfying `C` gains an attribute
/// `att` whose value is `A` applied to the group of such links. The
/// directionality parameter `d` acts as a group-by: all outgoing links of a
/// node (d = src) or all incoming links (d = tgt) are grouped together.
pub fn node_aggregate(
    graph: &SocialGraph,
    condition: &Condition,
    d: Direction,
    attr: &str,
    agg: &AggregateFn,
) -> SocialGraph {
    let mut groups: FxHashMap<NodeId, Vec<&Link>> = FxHashMap::default();
    for link in graph.links() {
        if condition.satisfied_by_link(link) {
            groups.entry(link.endpoint(d)).or_default().push(link);
        }
    }
    let mut out = graph.clone();
    for (node_id, links) in groups {
        if let Some(node) = out.node_mut(node_id) {
            node.attrs.set(attr, agg.eval(&links));
        }
    }
    out
}

/// Link Aggregation `γL⟨C,att,A⟩(G)` (Def. 10), single destination
/// attribute. See [`link_aggregate_multi`] for the variant that assigns
/// several attributes from the same grouping (as Example 5 step 6 needs when
/// it both sets `type='match'` and retains `sim`).
pub fn link_aggregate(
    graph: &SocialGraph,
    condition: &Condition,
    attr: &str,
    agg: &AggregateFn,
) -> SocialGraph {
    link_aggregate_multi(graph, condition, &[(attr.to_string(), agg.clone())])
}

/// Link Aggregation assigning multiple destination attributes computed over
/// the same `(src, tgt)` groups.
///
/// Links satisfying `C` are partitioned by `(src, tgt)`; each group is
/// *replaced* by a single new link carrying the aggregated attributes.
/// Links not satisfying `C` are left untouched. The new link is typed
/// `aggregated` unless one of the destination attributes is `type`.
pub fn link_aggregate_multi(
    graph: &SocialGraph,
    condition: &Condition,
    aggs: &[(String, AggregateFn)],
) -> SocialGraph {
    // Partition matching links by (src, tgt).
    let mut groups: FxHashMap<(NodeId, NodeId), Vec<&Link>> = FxHashMap::default();
    for link in graph.links() {
        if condition.satisfied_by_link(link) {
            groups.entry((link.src, link.tgt)).or_default().push(link);
        }
    }

    let mut out = graph.clone();
    for ((src, tgt), links) in groups {
        // Remove the group's links.
        for l in &links {
            out.remove_link(l.id);
        }
        // Create the replacement link.
        let mut new_link =
            Link::new(socialscope_graph::next_derived_link_id(), src, tgt, ["aggregated"]);
        for (attr, agg) in aggs {
            new_link.attrs.set(attr.clone(), agg.eval(&links));
        }
        out.add_link(new_link).expect("aggregated link endpoints exist in the input graph");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggfn::{value_as_sorted_texts, NafExpr};
    use socialscope_graph::{GraphBuilder, HasAttrs, Value};

    /// John tags two destinations, Mary tags one; John and Mary are friends.
    fn site() -> (SocialGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let denver = b.add_item("Denver", &["destination"]);
        let coors = b.add_item("Coors Field", &["destination"]);
        b.befriend(john, mary);
        let pete = denver_user_placeholder(&mut b);
        b.befriend(john, pete);
        b.tag(john, denver, &["rockies", "baseball"]);
        b.tag(john, coors, &["baseball"]);
        b.tag(mary, coors, &["stadium"]);
        (b.build(), john, mary, denver, coors)
    }

    /// A second friend for John so friend counting is non-trivial.
    fn denver_user_placeholder(b: &mut GraphBuilder) -> NodeId {
        b.add_user("Pete")
    }

    #[test]
    fn node_aggregation_counts_friends() {
        // The paper's example: γN⟨type=friend, src, fnd_cnt, COUNT⟩ adds a
        // fnd_cnt attribute to every node with outgoing friend links.
        let (g, john, mary, ..) = site();
        let out = node_aggregate(
            &g,
            &Condition::on_attr("type", "friend"),
            Direction::Src,
            "fnd_cnt",
            &AggregateFn::Count,
        );
        assert_eq!(out.node(john).unwrap().attrs.get_f64("fnd_cnt"), Some(2.0));
        // Mary has no outgoing friend links: attribute absent.
        assert!(out.node(mary).unwrap().attrs.get("fnd_cnt").is_none());
        // Output is isomorphic to the input: same nodes and links.
        assert_eq!(out.node_count(), g.node_count());
        assert_eq!(out.link_count(), g.link_count());
    }

    #[test]
    fn node_aggregation_collects_tags_used() {
        // "node aggregation can be used to assign an attribute tags_used to
        //  every user node, whose values include all the tags used".
        let (g, john, mary, ..) = site();
        let out = node_aggregate(
            &g,
            &Condition::on_attr("type", "tag"),
            Direction::Src,
            "tags_used",
            &AggregateFn::CollectSet("tags".into()),
        );
        let john_tags = out.node(john).unwrap().attrs.get("tags_used").unwrap();
        assert_eq!(value_as_sorted_texts(john_tags), vec!["baseball", "rockies"]);
        let mary_tags = out.node(mary).unwrap().attrs.get("tags_used").unwrap();
        assert_eq!(value_as_sorted_texts(mary_tags), vec!["stadium"]);
    }

    #[test]
    fn node_aggregation_collects_visited_destinations_via_tgt_pseudo_attr() {
        // Example 5 step 2: collect the set of destinations John has visited
        // (here: tagged) and store it as the `vst` attribute of John.
        let (g, john, _, denver, coors) = site();
        let out = node_aggregate(
            &g,
            &Condition::on_attr("type", "tag"),
            Direction::Src,
            "vst",
            &AggregateFn::CollectSet("tgt".into()),
        );
        let vst = out.node(john).unwrap().attrs.get("vst").unwrap();
        assert_eq!(vst.len(), 2);
        assert!(vst.contains(&socialscope_graph::Scalar::Int(denver.raw() as i64)));
        assert!(vst.contains(&socialscope_graph::Scalar::Int(coors.raw() as i64)));
    }

    #[test]
    fn node_aggregation_by_target_groups_incoming_links() {
        let (g, _, _, _, coors) = site();
        let out = node_aggregate(
            &g,
            &Condition::on_attr("type", "tag"),
            Direction::Tgt,
            "tagger_count",
            &AggregateFn::Count,
        );
        assert_eq!(out.node(coors).unwrap().attrs.get_f64("tagger_count"), Some(2.0));
    }

    #[test]
    fn link_aggregation_replaces_parallel_links() {
        // Build parallel links: two tag actions from John to the same item.
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let denver = b.add_item("Denver", &["destination"]);
        b.tag(john, denver, &["a"]);
        b.tag(john, denver, &["b"]);
        b.visit(john, denver);
        let g = b.build();

        let out =
            link_aggregate(&g, &Condition::on_attr("type", "tag"), "tag_cnt", &AggregateFn::Count);
        // Two tag links collapsed into one; the visit link is untouched.
        assert_eq!(out.link_count(), 2);
        let agg_link = out.links().find(|l| l.attrs.get("tag_cnt").is_some()).unwrap();
        assert_eq!(agg_link.attrs.get_f64("tag_cnt"), Some(2.0));
        assert_eq!(agg_link.src, john);
        assert_eq!(agg_link.tgt, denver);
        assert!(agg_link.has_type("aggregated"));
        assert!(out.links().any(|l| l.has_type("visit")));
    }

    #[test]
    fn link_aggregation_multi_sets_type_and_retains_sim() {
        // Example 5 step 6: replace parallel similarity links by one 'match'
        // link retaining sim.
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let l1 = b.matches(john, mary, 0.8);
        let l2 = b.matches(john, mary, 0.8);
        let g = b.build();
        assert!(g.has_link(l1) && g.has_link(l2));

        let out = link_aggregate_multi(
            &g,
            &Condition::on_attr("type", "match"),
            &[
                ("type".to_string(), AggregateFn::ConstStr("match".into())),
                ("sim".to_string(), AggregateFn::First("sim".into())),
            ],
        );
        assert_eq!(out.link_count(), 1);
        let l = out.links().next().unwrap();
        assert!(l.has_type("match"));
        assert!(!l.has_type("aggregated"));
        assert_eq!(l.attrs.get_f64("sim"), Some(0.8));
    }

    #[test]
    fn link_aggregation_average_score() {
        // Example 5 step 9: average sim_sc per (John, destination) pair.
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let coors = b.add_item("Coors Field", &["destination"]);
        for sim in [0.6, 0.8, 1.0] {
            b.add_link_with(john, coors, ["recommendation"], &[("sim_sc", Value::single(sim))]);
        }
        let g = b.build();
        let out = link_aggregate(
            &g,
            &Condition::on_attr("type", "recommendation"),
            "score",
            &AggregateFn::Avg("sim_sc".into()),
        );
        assert_eq!(out.link_count(), 1);
        let score = out.links().next().unwrap().attrs.get_f64("score").unwrap();
        assert!((score - 0.8).abs() < 1e-9);
    }

    #[test]
    fn link_aggregation_with_naf_expression() {
        let mut b = GraphBuilder::new();
        let u = b.add_user("u");
        let i = b.add_item("i", &["destination"]);
        b.rate(u, i, 3.0);
        b.rate(u, i, 5.0);
        let g = b.build();
        let out = link_aggregate(
            &g,
            &Condition::on_attr("type", "rating"),
            "avg_rating",
            &AggregateFn::Naf(NafExpr::avg("rating")),
        );
        let l = out.links().next().unwrap();
        assert_eq!(l.attrs.get_f64("avg_rating"), Some(4.0));
    }

    #[test]
    fn aggregation_with_no_matching_links_is_identity() {
        let (g, ..) = site();
        let out = node_aggregate(
            &g,
            &Condition::on_attr("type", "nonexistent"),
            Direction::Src,
            "x",
            &AggregateFn::Count,
        );
        assert_eq!(out, g);
        let out = link_aggregate(
            &g,
            &Condition::on_attr("type", "nonexistent"),
            "x",
            &AggregateFn::Count,
        );
        assert_eq!(out, g);
    }
}
