//! Error type for algebra operations.

use std::fmt;

/// Errors raised while evaluating algebra operators or plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// An aggregation or composition function referenced an attribute that
    /// is not present and has no default.
    MissingAttribute(String),
    /// A numerical aggregate expression could not be evaluated (e.g. a
    /// division by zero, or a non-numeric attribute).
    Numeric(String),
    /// A plan referenced an input graph index that was not supplied.
    MissingInput(usize),
    /// A graph-level error bubbled up from the substrate.
    Graph(socialscope_graph::GraphError),
    /// The plan is malformed (e.g. an optimizer rewrite produced an
    /// inconsistent tree).
    InvalidPlan(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::MissingAttribute(a) => write!(f, "missing attribute `{a}`"),
            AlgebraError::Numeric(msg) => write!(f, "numeric aggregation error: {msg}"),
            AlgebraError::MissingInput(i) => write!(f, "plan input #{i} was not supplied"),
            AlgebraError::Graph(e) => write!(f, "graph error: {e}"),
            AlgebraError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<socialscope_graph::GraphError> for AlgebraError {
    fn from(e: socialscope_graph::GraphError) -> Self {
        AlgebraError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AlgebraError::MissingAttribute("sim".into());
        assert!(e.to_string().contains("sim"));
        let g = AlgebraError::from(socialscope_graph::GraphError::MissingNode(
            socialscope_graph::NodeId(1),
        ));
        assert!(std::error::Error::source(&g).is_some());
    }
}
