//! The binary set-theoretic operators (paper Defs. 3 and 4).
//!
//! Union, Intersection and Minus operate on the node and link sets of two
//! graphs originating from the same social content site, matching elements
//! by id and consolidating nodes/links that appear on both sides. Two Minus
//! variants exist:
//!
//! * **Node-Driven Minus** (`G1 \ G2`, Def. 3): the sub-graph of `G1`
//!   induced by the nodes of `G1` not present in `G2`.
//! * **Link-Driven Minus** (`G1 \· G2`, Def. 4): the links of `G1` not
//!   present in `G2`, together with the nodes they induce.
//!
//! The paper's example: with `G1 = {(a,b),(a,c),(b,c)}` and `G2 = {(a,b)}`,
//! `G1 \ G2` is the null graph containing only `c`, while `G1 \· G2`
//! contains `a, b, c` and the links `(a,c)` and `(b,c)` — see the unit tests
//! below, which encode that example literally.

use socialscope_graph::{FxHashSet, LinkId, NodeId, SocialGraph};

/// Union `G1 ∪ G2`: nodes and links of both graphs; elements with the same
/// id are consolidated (attributes unioned, max score).
pub fn union(g1: &SocialGraph, g2: &SocialGraph) -> SocialGraph {
    let mut out = g1.clone();
    out.merge(g2);
    out
}

/// Intersection `G1 ∩ G2`: nodes present in both graphs and links present in
/// both graphs. Links survive only when both endpoints also survive — which
/// is always the case for well-formed inputs, since a link present in both
/// graphs has its endpoints present in both.
pub fn intersect(g1: &SocialGraph, g2: &SocialGraph) -> SocialGraph {
    let mut out = SocialGraph::new();
    for n in g1.nodes() {
        if let Some(other) = g2.node(n.id) {
            let mut merged = n.clone();
            merged.consolidate(other);
            out.add_node(merged);
        }
    }
    for l in g1.links() {
        if let Some(other) = g2.link(l.id) {
            if out.has_node(l.src) && out.has_node(l.tgt) {
                let mut merged = l.clone();
                merged.consolidate(other);
                out.add_link(merged).expect("endpoints checked above");
            }
        }
    }
    out
}

/// Node-Driven Minus `G1 \ G2` (Def. 3): the sub-graph of `G1` induced by
/// the nodes of `G1` that are not present in `G2`. Every surviving link has
/// both endpoints outside `G2`.
pub fn minus(g1: &SocialGraph, g2: &SocialGraph) -> SocialGraph {
    let keep: Vec<NodeId> = g1.nodes().filter(|n| !g2.has_node(n.id)).map(|n| n.id).collect();
    g1.induced_by_nodes(keep)
}

/// Link-Driven Minus `G1 \· G2` (Def. 4): `links(G1) \ links(G2)` plus the
/// nodes induced by those links.
///
/// The paper's Lemma 1 states that `\·` can be expressed using `\` and `⋉`;
/// the proof is omitted there. We implement `\·` directly from Def. 4 and
/// property-test the relationship that *does* follow from the definitions:
/// every link of `G1 \ G2` is also a link of `G1 \· G2` (a link surviving
/// the node-driven minus has both endpoints outside `G2`, so it cannot be a
/// link of `G2`, whose endpoints are in `G2`).
pub fn minus_link_driven(g1: &SocialGraph, g2: &SocialGraph) -> SocialGraph {
    let g2_links: FxHashSet<LinkId> = g2.link_id_set();
    let keep: Vec<LinkId> =
        g1.links().filter(|l| !g2_links.contains(&l.id)).map(|l| l.id).collect();
    g1.induced_by_links(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::{GraphBuilder, HasAttrs, Link, LinkId, Node, NodeId};

    /// The triangle example of §5.2: G1 = {(a,b),(a,c),(b,c)}, G2 = {(a,b)}.
    fn triangle_example() -> (SocialGraph, SocialGraph, [NodeId; 3]) {
        let mut b = GraphBuilder::new();
        let a = b.add_user("a");
        let bb = b.add_user("b");
        let c = b.add_user("c");
        let ab = b.befriend(a, bb);
        b.befriend(a, c);
        b.befriend(bb, c);
        let g1 = b.build();
        let g2 = g1.induced_by_links([ab]);
        (g1, g2, [a, bb, c])
    }

    #[test]
    fn node_driven_minus_matches_paper_example() {
        let (g1, g2, [_, _, c]) = triangle_example();
        let diff = minus(&g1, &g2);
        assert_eq!(diff.node_count(), 1);
        assert!(diff.has_node(c));
        assert!(diff.is_null_graph());
    }

    #[test]
    fn link_driven_minus_matches_paper_example() {
        let (g1, g2, [a, bb, c]) = triangle_example();
        let diff = minus_link_driven(&g1, &g2);
        assert_eq!(diff.node_count(), 3);
        assert!(diff.has_node(a) && diff.has_node(bb) && diff.has_node(c));
        assert_eq!(diff.link_count(), 2);
        // The (a,b) link is gone; (a,c) and (b,c) survive.
        assert!(diff.links().all(|l| l.tgt == c || l.src == c));
    }

    #[test]
    fn node_driven_minus_links_subset_of_link_driven() {
        let (g1, g2, _) = triangle_example();
        let nd = minus(&g1, &g2);
        let ld = minus_link_driven(&g1, &g2);
        for l in nd.links() {
            assert!(ld.has_link(l.id));
        }
    }

    #[test]
    fn union_consolidates_shared_elements() {
        let mut b = GraphBuilder::new();
        let u = b.add_user("u");
        let v = b.add_user("v");
        b.befriend(u, v);
        let g1 = b.build();

        let mut g2 = SocialGraph::new();
        g2.add_node(Node::new(u, ["user", "expert"]));
        g2.add_node(Node::new(NodeId(100), ["item"]).with_attr("name", "Denver"));

        let un = union(&g1, &g2);
        assert_eq!(un.node_count(), 3);
        assert_eq!(un.link_count(), 1);
        assert!(un.node(u).unwrap().has_type("expert"));
        assert!(un.node(u).unwrap().has_type("user"));
    }

    #[test]
    fn union_is_commutative_on_ids() {
        let (g1, g2, _) = triangle_example();
        let a = union(&g1, &g2);
        let b = union(&g2, &g1);
        assert_eq!(a.node_id_set(), b.node_id_set());
        assert_eq!(a.link_id_set(), b.link_id_set());
    }

    #[test]
    fn intersection_keeps_common_elements_only() {
        let (g1, g2, [a, bb, _]) = triangle_example();
        let inter = intersect(&g1, &g2);
        assert_eq!(inter.node_count(), 2);
        assert!(inter.has_node(a) && inter.has_node(bb));
        assert_eq!(inter.link_count(), 1);
        let also = intersect(&g2, &g1);
        assert_eq!(inter, also);
    }

    #[test]
    fn intersection_with_self_is_identity() {
        let (g1, ..) = triangle_example();
        assert_eq!(intersect(&g1, &g1), g1);
        assert_eq!(union(&g1, &g1), g1);
    }

    #[test]
    fn minus_with_self_is_empty() {
        let (g1, ..) = triangle_example();
        assert!(minus(&g1, &g1).is_empty());
        assert!(minus_link_driven(&g1, &g1).node_count() == 0);
    }

    #[test]
    fn minus_with_empty_is_identity_shaped() {
        let (g1, ..) = triangle_example();
        let empty = SocialGraph::new();
        assert_eq!(minus(&g1, &empty), g1);
        // Link-driven minus with an empty right side keeps every link (and
        // therefore every non-isolated node).
        let ld = minus_link_driven(&g1, &empty);
        assert_eq!(ld.link_count(), g1.link_count());
    }

    #[test]
    fn intersect_drops_links_whose_endpoints_disagree() {
        // A malformed-but-possible case: the same link id exists in both
        // graphs but one of its endpoints is missing from the intersection
        // because the node sets differ. Construct g2 with the link but only
        // one endpoint shared.
        let mut g1 = SocialGraph::new();
        g1.add_node(Node::new(NodeId(1), ["user"]));
        g1.add_node(Node::new(NodeId(2), ["user"]));
        g1.add_link(Link::new(LinkId(7), NodeId(1), NodeId(2), ["friend"])).unwrap();
        let mut g2 = SocialGraph::new();
        g2.add_node(Node::new(NodeId(2), ["user"]));
        g2.add_node(Node::new(NodeId(3), ["user"]));
        g2.add_link(Link::new(LinkId(7), NodeId(1), NodeId(2), ["friend"])).unwrap_err();
        let inter = intersect(&g1, &g2);
        assert_eq!(inter.node_count(), 1);
        assert_eq!(inter.link_count(), 0);
    }
}
