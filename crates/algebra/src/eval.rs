//! Plan evaluation.

use crate::aggregate::{link_aggregate_multi, node_aggregate};
use crate::compose::{compose, ComposeFn};
use crate::pattern::pattern_aggregate;
use crate::plan::{Plan, ScoringSpec};
use crate::scoring::{AttributeScoring, ConstantScoring, DefaultScoring, Scoring, TfIdfScoring};
use crate::select::{link_select, node_select};
use crate::semijoin::semi_join;
use crate::setops::{intersect, minus, minus_link_driven, union};
use crate::Result;
use socialscope_graph::SocialGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluates logical plans against a base social content graph.
///
/// Shared sub-plans (the same `Arc<Plan>` appearing at several places in the
/// tree, as produced by [`crate::plan::PlanBuilder`] reuse or by the
/// optimizer's common-subexpression elimination) are evaluated once and
/// cached by pointer identity.
pub struct Evaluator<'g> {
    base: &'g SocialGraph,
    tfidf: Option<TfIdfScoring>,
}

/// Counters describing one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Operator nodes evaluated (cache misses).
    pub operators_evaluated: usize,
    /// Cache hits on shared sub-plans.
    pub cache_hits: usize,
}

impl<'g> Evaluator<'g> {
    /// Create an evaluator over a base graph.
    pub fn new(base: &'g SocialGraph) -> Self {
        Evaluator { base, tfidf: None }
    }

    /// Evaluate a plan.
    pub fn evaluate(&mut self, plan: &Arc<Plan>) -> Result<SocialGraph> {
        let (g, _) = self.evaluate_with_stats(plan)?;
        Ok(g)
    }

    /// Evaluate a plan, returning evaluation statistics alongside the result.
    pub fn evaluate_with_stats(&mut self, plan: &Arc<Plan>) -> Result<(SocialGraph, EvalStats)> {
        let mut cache: HashMap<*const Plan, SocialGraph> = HashMap::new();
        let mut stats = EvalStats::default();
        let g = self.eval_rec(plan, &mut cache, &mut stats)?;
        Ok((g, stats))
    }

    fn scorer(&mut self, spec: &ScoringSpec) -> Box<dyn Scoring> {
        match spec {
            ScoringSpec::Default => Box::new(DefaultScoring),
            ScoringSpec::Constant(c) => Box::new(ConstantScoring(*c)),
            ScoringSpec::Attribute(a) => Box::new(AttributeScoring::new(a.clone())),
            ScoringSpec::TfIdf => {
                if self.tfidf.is_none() {
                    self.tfidf = Some(TfIdfScoring::from_graph(self.base));
                }
                Box::new(self.tfidf.clone().expect("initialized above"))
            }
        }
    }

    fn eval_rec(
        &mut self,
        plan: &Arc<Plan>,
        cache: &mut HashMap<*const Plan, SocialGraph>,
        stats: &mut EvalStats,
    ) -> Result<SocialGraph> {
        let key = Arc::as_ptr(plan);
        if let Some(hit) = cache.get(&key) {
            stats.cache_hits += 1;
            return Ok(hit.clone());
        }
        stats.operators_evaluated += 1;
        let result = match &**plan {
            Plan::Base => self.base.clone(),
            Plan::NodeSelect { input, condition, scoring } => {
                let g = self.eval_rec(input, cache, stats)?;
                let scorer = scoring.as_ref().map(|s| self.scorer(s));
                node_select(&g, condition, scorer.as_deref())
            }
            Plan::LinkSelect { input, condition, scoring } => {
                let g = self.eval_rec(input, cache, stats)?;
                let scorer = scoring.as_ref().map(|s| self.scorer(s));
                link_select(&g, condition, scorer.as_deref())
            }
            Plan::Union { left, right } => {
                let l = self.eval_rec(left, cache, stats)?;
                let r = self.eval_rec(right, cache, stats)?;
                union(&l, &r)
            }
            Plan::Intersect { left, right } => {
                let l = self.eval_rec(left, cache, stats)?;
                let r = self.eval_rec(right, cache, stats)?;
                intersect(&l, &r)
            }
            Plan::Minus { left, right } => {
                let l = self.eval_rec(left, cache, stats)?;
                let r = self.eval_rec(right, cache, stats)?;
                minus(&l, &r)
            }
            Plan::MinusLinkDriven { left, right } => {
                let l = self.eval_rec(left, cache, stats)?;
                let r = self.eval_rec(right, cache, stats)?;
                minus_link_driven(&l, &r)
            }
            Plan::Compose { left, right, delta, f } => {
                let l = self.eval_rec(left, cache, stats)?;
                let r = self.eval_rec(right, cache, stats)?;
                compose(&l, &r, *delta, f as &dyn ComposeFn)
            }
            Plan::SemiJoin { left, right, delta } => {
                let l = self.eval_rec(left, cache, stats)?;
                let r = self.eval_rec(right, cache, stats)?;
                semi_join(&l, &r, *delta)
            }
            Plan::NodeAgg { input, condition, direction, attr, agg } => {
                let g = self.eval_rec(input, cache, stats)?;
                node_aggregate(&g, condition, *direction, attr, agg)
            }
            Plan::LinkAgg { input, condition, aggs } => {
                let g = self.eval_rec(input, cache, stats)?;
                link_aggregate_multi(&g, condition, aggs)
            }
            Plan::PatternAgg { input, pattern, attr, agg } => {
                let g = self.eval_rec(input, cache, stats)?;
                pattern_aggregate(&g, pattern, attr, agg)
            }
        };
        cache.insert(key, result.clone());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::DirectionalCondition;
    use crate::condition::Condition;
    use crate::plan::PlanBuilder;
    use socialscope_graph::{GraphBuilder, HasAttrs, NodeId};

    fn site() -> (SocialGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let pete = b.add_user("Pete");
        let coors = b.add_item_with_keywords("Coors Field", &["destination"], &["baseball"]);
        let zoo = b.add_item_with_keywords("Denver Zoo", &["destination"], &["animals"]);
        b.befriend(john, mary);
        b.befriend(john, pete);
        b.visit(mary, coors);
        b.visit(pete, zoo);
        (b.build(), john, coors)
    }

    #[test]
    fn evaluate_example4_style_plan() {
        let (g, john, _) = site();
        // John's friendships.
        let john_sel = PlanBuilder::base().node_select(Condition::on_attr("id", john.raw() as i64));
        let friendships = PlanBuilder::base()
            .semi_join(&john_sel, DirectionalCondition::src_src())
            .link_select(Condition::on_attr("type", "friend"));
        // Visits by anyone.
        let visits = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        // Friends of John who visited something: friendships ⋉(tgt,src) visits.
        let plan = friendships.semi_join(&visits, DirectionalCondition::tgt_src()).build();
        let mut ev = Evaluator::new(&g);
        let out = ev.evaluate(&plan).unwrap();
        assert_eq!(out.link_count(), 2);
        assert!(out.links().all(|l| l.has_type("friend")));
    }

    #[test]
    fn scoring_specs_resolve() {
        let (g, ..) = site();
        let plan = PlanBuilder::base()
            .node_select_scored(
                Condition::on_attr("type", "destination").and_keywords(["baseball"]),
                crate::plan::ScoringSpec::TfIdf,
            )
            .build();
        let mut ev = Evaluator::new(&g);
        let out = ev.evaluate(&plan).unwrap();
        assert_eq!(out.node_count(), 1);
        assert!(out.nodes().next().unwrap().score.unwrap() > 0.0);
    }

    #[test]
    fn shared_subplans_are_cached() {
        let (g, ..) = site();
        let shared = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let plan = shared.clone().union(&shared).build();
        let mut ev = Evaluator::new(&g);
        let (out, stats) = ev.evaluate_with_stats(&plan).unwrap();
        assert_eq!(out.link_count(), 2);
        assert_eq!(stats.cache_hits, 1);
        // Base, shared link_select, union => 3 operator evaluations.
        assert_eq!(stats.operators_evaluated, 3);
    }

    #[test]
    fn unshared_equal_subplans_are_not_cached() {
        let (g, ..) = site();
        let a = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let b = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let plan = a.union(&b).build();
        let mut ev = Evaluator::new(&g);
        let (_, stats) = ev.evaluate_with_stats(&plan).unwrap();
        // Base is a distinct Arc in each builder, so everything is evaluated.
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.operators_evaluated, 5);
    }
}
