//! The Composition operator (paper Def. 5) and composition functions
//! (the class `CF`).
//!
//! `G1 ⊙⟨δ,F⟩ G2` joins links of the two input graphs whose designated
//! endpoints match (`ℓ1.δd1 = ℓ2.δd2`) and produces a *new* link for every
//! qualifying pair, running from the *other* endpoint of `ℓ1`
//! (`u = ℓ1.δd̄1`) to the other endpoint of `ℓ2` (`v = ℓ2.δd̄2`). The
//! composition function `F` combines attributes of the two input links (and,
//! per the paper, possibly of their endpoint nodes) into the attributes of
//! the new link.

use serde::{Deserialize, Serialize};
use socialscope_graph::{AttrMap, Direction, FxHashMap, Link, Node, NodeId, SocialGraph, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The directional condition `δ = (d1, d2)` of Composition and Semi-Join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirectionalCondition {
    /// Which endpoint of the left-hand link participates in the match.
    pub left: Direction,
    /// Which endpoint of the right-hand link participates in the match.
    pub right: Direction,
}

impl DirectionalCondition {
    /// Build a directional condition.
    pub fn new(left: Direction, right: Direction) -> Self {
        DirectionalCondition { left, right }
    }

    /// `(src, src)`.
    pub fn src_src() -> Self {
        Self::new(Direction::Src, Direction::Src)
    }
    /// `(src, tgt)`.
    pub fn src_tgt() -> Self {
        Self::new(Direction::Src, Direction::Tgt)
    }
    /// `(tgt, src)`.
    pub fn tgt_src() -> Self {
        Self::new(Direction::Tgt, Direction::Src)
    }
    /// `(tgt, tgt)`.
    pub fn tgt_tgt() -> Self {
        Self::new(Direction::Tgt, Direction::Tgt)
    }
}

/// Everything a composition function may look at for one qualifying pair of
/// links: the two links, the endpoint nodes of the output link, and the
/// shared (matched) node id.
#[derive(Debug, Clone, Copy)]
pub struct ComposeContext<'a> {
    /// The link from `G1`.
    pub left_link: &'a Link,
    /// The link from `G2`.
    pub right_link: &'a Link,
    /// The node the output link starts from (`ℓ1.δd̄1`, taken from `G1`).
    pub out_src: &'a Node,
    /// The node the output link points to (`ℓ2.δd̄2`, taken from `G2`).
    pub out_tgt: &'a Node,
    /// The matched node id (`ℓ1.δd1 = ℓ2.δd2`).
    pub shared: NodeId,
}

/// A composition function in the class `CF`: consumes the attributes of two
/// input links (and their endpoint nodes) and produces uniquely named
/// attributes for the output link.
pub trait ComposeFn: Send + Sync {
    /// Produce the output link's attributes for one qualifying pair.
    fn compose(&self, ctx: &ComposeContext<'_>) -> AttrMap;

    /// Short name used in plan explanations.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Which side of the composition an attribute is read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The `G1` link.
    Left,
    /// The `G2` link.
    Right,
}

/// Declarative, serializable composition functions covering the uses in the
/// paper (constant attributes such as `type='user_friend_item'`, Jaccard
/// similarity between endpoint-node set attributes as in Example 5 step 5,
/// and copying attributes across as in Example 5 step 8). `Chain` combines
/// several into one; `Custom` escapes to an arbitrary closure.
#[derive(Clone)]
pub enum ComposeSpec {
    /// Set constant attributes on every output link.
    ConstAttrs(Vec<(String, Value)>),
    /// Compute the Jaccard similarity between the `attr` set attribute of
    /// the output link's source node and target node, storing it in `out`.
    JaccardOfNodeSets {
        /// Node attribute holding the sets to compare.
        attr: String,
        /// Output attribute to store the similarity in.
        out: String,
    },
    /// Copy a link attribute from one side to the output under a new name.
    CopyLinkAttr {
        /// Which input link to read from.
        side: Side,
        /// Attribute to read.
        attr: String,
        /// Output attribute name.
        out: String,
    },
    /// Apply several specs in order, merging their outputs.
    Chain(Vec<ComposeSpec>),
    /// An arbitrary user-supplied composition function.
    Custom(Arc<dyn ComposeFn>),
}

impl PartialEq for ComposeSpec {
    fn eq(&self, other: &Self) -> bool {
        use ComposeSpec::*;
        match (self, other) {
            (ConstAttrs(a), ConstAttrs(b)) => a == b,
            (JaccardOfNodeSets { attr: a1, out: o1 }, JaccardOfNodeSets { attr: a2, out: o2 }) => {
                a1 == a2 && o1 == o2
            }
            (
                CopyLinkAttr { side: s1, attr: a1, out: o1 },
                CopyLinkAttr { side: s2, attr: a2, out: o2 },
            ) => s1 == s2 && a1 == a2 && o1 == o2,
            (Chain(a), Chain(b)) => a == b,
            // Custom functions are never equal: rewrites must not merge them.
            _ => false,
        }
    }
}

impl std::fmt::Debug for ComposeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeSpec::ConstAttrs(attrs) => f.debug_tuple("ConstAttrs").field(attrs).finish(),
            ComposeSpec::JaccardOfNodeSets { attr, out } => {
                f.debug_struct("JaccardOfNodeSets").field("attr", attr).field("out", out).finish()
            }
            ComposeSpec::CopyLinkAttr { side, attr, out } => f
                .debug_struct("CopyLinkAttr")
                .field("side", side)
                .field("attr", attr)
                .field("out", out)
                .finish(),
            ComposeSpec::Chain(specs) => f.debug_tuple("Chain").field(specs).finish(),
            ComposeSpec::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// Jaccard similarity of two string-token sets.
pub fn jaccard<S: AsRef<str> + Ord>(a: &BTreeSet<S>, b: &BTreeSet<S>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.iter().filter(|x| b.iter().any(|y| y.as_ref() == x.as_ref())).count();
    let uni = a.len() + b.len() - inter;
    inter as f64 / uni as f64
}

fn value_token_set(v: Option<&Value>) -> BTreeSet<String> {
    v.map(|v| v.iter().map(|s| s.as_text()).collect()).unwrap_or_default()
}

impl ComposeFn for ComposeSpec {
    fn compose(&self, ctx: &ComposeContext<'_>) -> AttrMap {
        let mut out = AttrMap::new();
        match self {
            ComposeSpec::ConstAttrs(attrs) => {
                for (k, v) in attrs {
                    out.set(k.clone(), v.clone());
                }
            }
            ComposeSpec::JaccardOfNodeSets { attr, out: dest } => {
                let a = value_token_set(ctx.out_src.attrs.get(attr));
                let b = value_token_set(ctx.out_tgt.attrs.get(attr));
                out.set(dest.clone(), jaccard(&a, &b));
            }
            ComposeSpec::CopyLinkAttr { side, attr, out: dest } => {
                let link = match side {
                    Side::Left => ctx.left_link,
                    Side::Right => ctx.right_link,
                };
                if let Some(v) = link.attrs.get(attr) {
                    out.set(dest.clone(), v.clone());
                }
            }
            ComposeSpec::Chain(specs) => {
                for s in specs {
                    out.merge(&s.compose(ctx));
                }
            }
            ComposeSpec::Custom(f) => return f.compose(ctx),
        }
        out
    }

    fn name(&self) -> &'static str {
        match self {
            ComposeSpec::ConstAttrs(_) => "const_attrs",
            ComposeSpec::JaccardOfNodeSets { .. } => "jaccard_of_node_sets",
            ComposeSpec::CopyLinkAttr { .. } => "copy_link_attr",
            ComposeSpec::Chain(_) => "chain",
            ComposeSpec::Custom(_) => "custom",
        }
    }
}

/// Composition `G1 ⊙⟨δ,F⟩ G2` (Def. 5).
///
/// For every pair `(ℓ1, ℓ2)` with `ℓ1 ∈ links(G1)`, `ℓ2 ∈ links(G2)` and
/// `ℓ1.δd1 = ℓ2.δd2`, the output contains the nodes `u = ℓ1.δd̄1`,
/// `v = ℓ2.δd̄2` and a new link `u → v` whose attributes are `F(ℓ1, ℓ2)`.
/// When `F` does not set a `type`, the output link is typed `composed`.
pub fn compose(
    g1: &SocialGraph,
    g2: &SocialGraph,
    delta: DirectionalCondition,
    f: &dyn ComposeFn,
) -> SocialGraph {
    // Index the right-hand links by their matching endpoint.
    let mut right_index: FxHashMap<NodeId, Vec<&Link>> = FxHashMap::default();
    for l in g2.links() {
        right_index.entry(l.endpoint(delta.right)).or_default().push(l);
    }

    let mut out = SocialGraph::new();
    for l1 in g1.links() {
        let shared = l1.endpoint(delta.left);
        let Some(rights) = right_index.get(&shared) else {
            continue;
        };
        let u_id = l1.other_endpoint(delta.left);
        let Some(u) = g1.node(u_id) else { continue };
        for l2 in rights {
            let v_id = l2.other_endpoint(delta.right);
            let Some(v) = g2.node(v_id) else { continue };
            let ctx =
                ComposeContext { left_link: l1, right_link: l2, out_src: u, out_tgt: v, shared };
            let attrs = f.compose(&ctx);
            out.add_node(u.clone());
            out.add_node(v.clone());
            let mut link =
                Link::new(socialscope_graph::next_derived_link_id(), u_id, v_id, ["composed"]);
            for (k, v) in attrs.iter() {
                link.attrs.set(k, v.clone());
            }
            out.add_link(link).expect("endpoints inserted above");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::select::link_select;
    use socialscope_graph::{GraphBuilder, HasAttrs};

    /// John and Mary both visited Coors Field; Pete visited the Zoo.
    fn visits_site() -> (SocialGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let pete = b.add_user("Pete");
        let coors = b.add_item("Coors Field", &["destination"]);
        let zoo = b.add_item("Denver Zoo", &["destination"]);
        b.visit(john, coors);
        b.visit(mary, coors);
        b.visit(pete, zoo);
        b.visit(john, zoo);
        (b.build(), john, mary, pete)
    }

    #[test]
    fn compose_tgt_tgt_creates_user_user_links() {
        let (g, john, mary, _) = visits_site();
        // Left: John's visits; right: everyone else's visits.
        let john_visits = g.induced_by_links(
            g.out_links(john).filter(|l| l.has_type("visit")).map(|l| l.id).collect::<Vec<_>>(),
        );
        let others = g.induced_by_links(
            g.links()
                .filter(|l| l.has_type("visit") && l.src != john)
                .map(|l| l.id)
                .collect::<Vec<_>>(),
        );
        let composed = compose(
            &john_visits,
            &others,
            DirectionalCondition::tgt_tgt(),
            &ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("co_visit"))]),
        );
        // John co-visited Coors Field with Mary and the Zoo with Pete ->
        // one composed link per co-visitor.
        assert_eq!(composed.link_count(), 2);
        assert!(composed.links().all(|l| l.src == john));
        assert!(composed.links().any(|l| l.tgt == mary));
        assert!(composed.links().all(|l| l.has_type("co_visit")));
    }

    #[test]
    fn compose_jaccard_of_node_sets() {
        let (mut g, john, mary, pete) = visits_site();
        // Attach the `vst` set attribute the way Example 5 does with node
        // aggregation; here we set it by hand to isolate the composition.
        g.node_mut(john).unwrap().attrs.set("vst", Value::multi(["coors", "zoo"]));
        g.node_mut(mary).unwrap().attrs.set("vst", Value::multi(["coors"]));
        g.node_mut(pete).unwrap().attrs.set("vst", Value::multi(["zoo"]));

        let john_visits = g.induced_by_links(g.out_links(john).map(|l| l.id).collect::<Vec<_>>());
        let other_visits = g.induced_by_links(
            g.links().filter(|l| l.src != john).map(|l| l.id).collect::<Vec<_>>(),
        );
        let spec = ComposeSpec::Chain(vec![
            ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("sim_candidate"))]),
            ComposeSpec::JaccardOfNodeSets { attr: "vst".into(), out: "sim".into() },
        ]);
        let composed = compose(&john_visits, &other_visits, DirectionalCondition::tgt_tgt(), &spec);
        // John-Mary share Coors (sim 1/2), John-Pete share Zoo (sim 1/2).
        assert_eq!(composed.link_count(), 2);
        for l in composed.links() {
            assert_eq!(l.attrs.get_f64("sim"), Some(0.5));
            assert!(l.has_type("sim_candidate"));
        }
    }

    #[test]
    fn compose_copy_link_attr() {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let coors = b.add_item("Coors Field", &["destination"]);
        b.matches(john, mary, 0.8);
        b.visit(mary, coors);
        let g = b.build();

        let matches = link_select(&g, &Condition::on_attr("type", "match"), None);
        let visits = link_select(&g, &Condition::on_attr("type", "visit"), None);
        // (tgt, src): match link's target (Mary) joins visit link's source.
        let spec = ComposeSpec::Chain(vec![
            ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("recommendation"))]),
            ComposeSpec::CopyLinkAttr {
                side: Side::Left,
                attr: "sim".into(),
                out: "sim_sc".into(),
            },
        ]);
        let rec = compose(&matches, &visits, DirectionalCondition::tgt_src(), &spec);
        assert_eq!(rec.link_count(), 1);
        let l = rec.links().next().unwrap();
        assert_eq!(l.src, john);
        assert_eq!(l.tgt, coors);
        assert_eq!(l.attrs.get_f64("sim_sc"), Some(0.8));
    }

    #[test]
    fn compose_with_no_matches_is_empty() {
        let (g, john, ..) = visits_site();
        let john_visits = g.induced_by_links(g.out_links(john).map(|l| l.id).collect::<Vec<_>>());
        let empty = SocialGraph::new();
        let out = compose(
            &john_visits,
            &empty,
            DirectionalCondition::tgt_tgt(),
            &ComposeSpec::ConstAttrs(vec![]),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn composed_link_ids_do_not_collide_with_inputs() {
        let (g, john, ..) = visits_site();
        let john_visits = g.induced_by_links(g.out_links(john).map(|l| l.id).collect::<Vec<_>>());
        let all_visits = link_select(&g, &Condition::on_attr("type", "visit"), None);
        let out = compose(
            &john_visits,
            &all_visits,
            DirectionalCondition::tgt_tgt(),
            &ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("x"))]),
        );
        for l in out.links() {
            assert!(!g.has_link(l.id), "composed link id collides with site id");
        }
    }

    #[test]
    fn jaccard_edge_cases() {
        let a: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let b: BTreeSet<String> = ["b", "c"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
        let empty: BTreeSet<String> = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 0.0);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn delta_constructors() {
        assert_eq!(
            DirectionalCondition::src_src(),
            DirectionalCondition::new(Direction::Src, Direction::Src)
        );
        assert_eq!(DirectionalCondition::tgt_src().left, Direction::Tgt);
        assert_eq!(DirectionalCondition::src_tgt().right, Direction::Tgt);
    }
}
