//! Graph patterns and pattern-based aggregation (paper §5.4, Figure 2).
//!
//! The paper closes its algebra section by observing that multi-link
//! aggregations (e.g. "average the `sim_sc` of the match link over every
//! match→visit path from John to a destination") can either be expressed as
//! several composition + link-aggregation steps, or *more concisely* with a
//! graph pattern. Figure 2 shows the pattern used for collaborative
//! filtering: `($1) -[match]-> ($2) -[visit]-> ($3)` with `$1.id = 101` and
//! `$3.type = destination`. Comparing the two formulations is one of the
//! research questions the paper raises — and one of the experiments this
//! repository reproduces (experiment E3).

use crate::aggfn::AggregateFn;
use crate::condition::Condition;
use serde::{Deserialize, Serialize};
use socialscope_graph::{FxHashMap, Link, LinkId, NodeId, SocialGraph, Value};
use std::sync::Arc;

/// One hop of a graph pattern: traverse a link satisfying `link_condition`
/// (forward = from the current node as source, backward = as target) and
/// land on a node satisfying `node_condition`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternStep {
    /// Condition the traversed link must satisfy.
    pub link_condition: Condition,
    /// Whether the current node must be the source (`true`) or target
    /// (`false`) of the traversed link.
    pub forward: bool,
    /// Condition the reached node must satisfy (empty = any node).
    pub node_condition: Condition,
}

impl PatternStep {
    /// A forward hop over links satisfying `link_condition`, landing on any
    /// node.
    pub fn forward(link_condition: Condition) -> Self {
        PatternStep { link_condition, forward: true, node_condition: Condition::any() }
    }

    /// Constrain the node reached by this hop.
    pub fn to_node(mut self, node_condition: Condition) -> Self {
        self.node_condition = node_condition;
        self
    }

    /// Make the hop traverse links backwards (current node is the target).
    pub fn backward(mut self) -> Self {
        self.forward = false;
        self
    }
}

/// A linear graph pattern: a condition on the start node (`$1`) and a
/// sequence of hops. Figure 2's pattern has two hops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GraphPattern {
    /// Condition on the start node.
    pub start: Condition,
    /// The hops, in order.
    pub steps: Vec<PatternStep>,
}

impl GraphPattern {
    /// A pattern starting from nodes satisfying `start`.
    pub fn starting_at(start: Condition) -> Self {
        GraphPattern { start, steps: Vec::new() }
    }

    /// Append a hop.
    pub fn then(mut self, step: PatternStep) -> Self {
        self.steps.push(step);
        self
    }

    /// The Figure 2 pattern: `(id = start) -[match]-> ($2) -[visit]->
    /// (type = destination)`.
    pub fn fig2_collaborative_filtering(start_user: NodeId) -> Self {
        GraphPattern::starting_at(Condition::on_attr("id", start_user.raw() as i64))
            .then(PatternStep::forward(Condition::on_attr("type", "match")))
            .then(
                PatternStep::forward(Condition::on_attr("type", "visit"))
                    .to_node(Condition::on_attr("type", "destination")),
            )
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the pattern has no hops.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// One match of a pattern: the visited nodes (length = hops + 1) and the
/// traversed links (length = hops).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMatch {
    /// Visited nodes, starting with the start node.
    pub nodes: Vec<NodeId>,
    /// Traversed links, one per hop.
    pub links: Vec<LinkId>,
}

impl PathMatch {
    /// The start node of the path.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }
    /// The end node of the path.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("a path has at least one node")
    }
}

/// Find every match of a pattern in a graph.
///
/// Matching is a straightforward depth-first expansion; patterns in the
/// paper are short (two or three hops), so no join reordering is attempted.
pub fn find_paths(graph: &SocialGraph, pattern: &GraphPattern) -> Vec<PathMatch> {
    let mut result = Vec::new();
    let starts: Vec<NodeId> =
        graph.nodes().filter(|n| pattern.start.satisfied_by_node(n)).map(|n| n.id).collect();
    for start in starts {
        let mut partial = PathMatch { nodes: vec![start], links: Vec::new() };
        expand(graph, pattern, 0, &mut partial, &mut result);
    }
    // Deterministic output order.
    result.sort_by(|a, b| a.nodes.cmp(&b.nodes).then(a.links.cmp(&b.links)));
    result
}

fn expand(
    graph: &SocialGraph,
    pattern: &GraphPattern,
    depth: usize,
    partial: &mut PathMatch,
    out: &mut Vec<PathMatch>,
) {
    if depth == pattern.steps.len() {
        out.push(partial.clone());
        return;
    }
    let step = &pattern.steps[depth];
    let current = *partial.nodes.last().expect("non-empty path");
    let candidates: Vec<&Link> = if step.forward {
        graph.out_links(current).collect()
    } else {
        graph.in_links(current).collect()
    };
    for link in candidates {
        if !step.link_condition.satisfied_by_link(link) {
            continue;
        }
        let next = if step.forward { link.tgt } else { link.src };
        let Some(next_node) = graph.node(next) else {
            continue;
        };
        if !step.node_condition.satisfied_by_node(next_node) {
            continue;
        }
        partial.nodes.push(next);
        partial.links.push(link.id);
        expand(graph, pattern, depth + 1, partial, out);
        partial.nodes.pop();
        partial.links.pop();
    }
}

/// A user-supplied aggregation over a group of paths, for
/// [`PathAggregate::Custom`].
pub type CustomPathAggregate = Arc<dyn Fn(&[PathMatch], &SocialGraph) -> Value + Send + Sync>;

/// How to aggregate the set of paths sharing the same (start, end) pair into
/// the value stored on the new link created by pattern aggregation.
#[derive(Clone)]
pub enum PathAggregate {
    /// Average of a link attribute at a given hop over the paths — the
    /// Figure 2 use: average of `sim` on the `match` hop (hop 0).
    AvgLinkAttr {
        /// Which hop's link to read.
        step: usize,
        /// Which attribute to read.
        attr: String,
    },
    /// Sum of a link attribute at a given hop.
    SumLinkAttr {
        /// Which hop's link to read.
        step: usize,
        /// Which attribute to read.
        attr: String,
    },
    /// Maximum of a link attribute at a given hop.
    MaxLinkAttr {
        /// Which hop's link to read.
        step: usize,
        /// Which attribute to read.
        attr: String,
    },
    /// The number of matching paths.
    CountPaths,
    /// Delegate to an [`AggregateFn`] applied to the multiset of links at a
    /// given hop across the group's paths.
    StepAggregate {
        /// Which hop's links to collect.
        step: usize,
        /// The aggregate to apply.
        agg: AggregateFn,
    },
    /// A custom aggregation over the full group of paths.
    Custom(CustomPathAggregate),
}

impl std::fmt::Debug for PathAggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathAggregate::AvgLinkAttr { step, attr } => {
                write!(f, "AvgLinkAttr(step={step}, attr={attr})")
            }
            PathAggregate::SumLinkAttr { step, attr } => {
                write!(f, "SumLinkAttr(step={step}, attr={attr})")
            }
            PathAggregate::MaxLinkAttr { step, attr } => {
                write!(f, "MaxLinkAttr(step={step}, attr={attr})")
            }
            PathAggregate::CountPaths => write!(f, "CountPaths"),
            PathAggregate::StepAggregate { step, agg } => {
                write!(f, "StepAggregate(step={step}, agg={agg:?})")
            }
            PathAggregate::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl PartialEq for PathAggregate {
    fn eq(&self, other: &Self) -> bool {
        use PathAggregate::*;
        match (self, other) {
            (AvgLinkAttr { step: s1, attr: a1 }, AvgLinkAttr { step: s2, attr: a2 })
            | (SumLinkAttr { step: s1, attr: a1 }, SumLinkAttr { step: s2, attr: a2 })
            | (MaxLinkAttr { step: s1, attr: a1 }, MaxLinkAttr { step: s2, attr: a2 }) => {
                s1 == s2 && a1 == a2
            }
            (CountPaths, CountPaths) => true,
            (StepAggregate { step: s1, agg: g1 }, StepAggregate { step: s2, agg: g2 }) => {
                s1 == s2 && g1 == g2
            }
            _ => false,
        }
    }
}

impl PathAggregate {
    /// Evaluate over a group of paths sharing the same (start, end) pair.
    pub fn eval(&self, paths: &[PathMatch], graph: &SocialGraph) -> Value {
        let step_links = |step: usize| -> Vec<&Link> {
            paths
                .iter()
                .filter_map(|p| p.links.get(step))
                .filter_map(|id| graph.link(*id))
                .collect()
        };
        match self {
            PathAggregate::AvgLinkAttr { step, attr } => {
                AggregateFn::Avg(attr.clone()).eval(&step_links(*step))
            }
            PathAggregate::SumLinkAttr { step, attr } => {
                AggregateFn::Sum(attr.clone()).eval(&step_links(*step))
            }
            PathAggregate::MaxLinkAttr { step, attr } => {
                AggregateFn::Max(attr.clone()).eval(&step_links(*step))
            }
            PathAggregate::CountPaths => Value::single(paths.len() as i64),
            PathAggregate::StepAggregate { step, agg } => agg.eval(&step_links(*step)),
            PathAggregate::Custom(f) => f(paths, graph),
        }
    }
}

/// Pattern-based link aggregation `γL⟨GP,att,A⟩(G)` (paper §5.4).
///
/// Matches the pattern, groups the matching paths by (start, end) node pair,
/// and creates **one** new link per group from the start node to the end
/// node, carrying the attribute `att` computed by the path aggregate `A`.
/// The output graph contains exactly these new links and their endpoint
/// nodes, which is the part of the result downstream operators consume
/// (the multi-step formulation of Example 5 produces the same shape).
pub fn pattern_aggregate(
    graph: &SocialGraph,
    pattern: &GraphPattern,
    attr: &str,
    agg: &PathAggregate,
) -> SocialGraph {
    let paths = find_paths(graph, pattern);
    let mut groups: FxHashMap<(NodeId, NodeId), Vec<PathMatch>> = FxHashMap::default();
    for p in paths {
        groups.entry((p.start(), p.end())).or_default().push(p);
    }
    let mut out = SocialGraph::new();
    let mut group_list: Vec<_> = groups.into_iter().collect();
    group_list.sort_by_key(|((s, e), _)| (*s, *e));
    for ((start, end), group) in group_list {
        let (Some(s), Some(e)) = (graph.node(start), graph.node(end)) else {
            continue;
        };
        out.add_node(s.clone());
        out.add_node(e.clone());
        let mut link =
            Link::new(socialscope_graph::next_derived_link_id(), start, end, ["aggregated"]);
        link.attrs.set(attr, agg.eval(&group, graph));
        out.add_link(link).expect("endpoints inserted above");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::{GraphBuilder, HasAttrs};

    /// John matches Mary (sim .8) and Pete (sim .6); Mary visited Coors and
    /// the Zoo, Pete visited Coors.
    fn cf_site() -> (SocialGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let pete = b.add_user("Pete");
        let coors = b.add_item("Coors Field", &["destination"]);
        let zoo = b.add_item("Denver Zoo", &["destination"]);
        b.matches(john, mary, 0.8);
        b.matches(john, pete, 0.6);
        b.visit(mary, coors);
        b.visit(mary, zoo);
        b.visit(pete, coors);
        (b.build(), john, coors, zoo)
    }

    #[test]
    fn find_paths_matches_fig2_pattern() {
        let (g, john, ..) = cf_site();
        let pattern = GraphPattern::fig2_collaborative_filtering(john);
        let paths = find_paths(&g, &pattern);
        // John -match-> Mary -visit-> Coors, John -match-> Mary -visit-> Zoo,
        // John -match-> Pete -visit-> Coors.
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.start() == john));
        assert!(paths.iter().all(|p| p.nodes.len() == 3 && p.links.len() == 2));
    }

    #[test]
    fn pattern_aggregate_average_of_match_sim() {
        let (g, john, coors, zoo) = cf_site();
        let pattern = GraphPattern::fig2_collaborative_filtering(john);
        let out = pattern_aggregate(
            &g,
            &pattern,
            "score",
            &PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
        );
        // One aggregated link per destination reachable from John.
        assert_eq!(out.link_count(), 2);
        let coors_link = out.links().find(|l| l.tgt == coors).unwrap();
        let zoo_link = out.links().find(|l| l.tgt == zoo).unwrap();
        // Coors is endorsed by Mary (.8) and Pete (.6) -> 0.7; Zoo by Mary -> 0.8.
        assert!((coors_link.attrs.get_f64("score").unwrap() - 0.7).abs() < 1e-9);
        assert!((zoo_link.attrs.get_f64("score").unwrap() - 0.8).abs() < 1e-9);
        assert!(coors_link.has_type("aggregated"));
    }

    #[test]
    fn pattern_aggregate_count_paths() {
        let (g, john, coors, _) = cf_site();
        let pattern = GraphPattern::fig2_collaborative_filtering(john);
        let out = pattern_aggregate(&g, &pattern, "endorsements", &PathAggregate::CountPaths);
        let coors_link = out.links().find(|l| l.tgt == coors).unwrap();
        assert_eq!(coors_link.attrs.get_f64("endorsements"), Some(2.0));
    }

    #[test]
    fn backward_steps_traverse_incoming_links() {
        let (g, _, coors, _) = cf_site();
        // From a destination, walk back to the users who visited it.
        let pattern = GraphPattern::starting_at(Condition::on_attr("id", coors.raw() as i64))
            .then(PatternStep::forward(Condition::on_attr("type", "visit")).backward());
        let paths = find_paths(&g, &pattern);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn empty_pattern_matches_start_nodes_only() {
        let (g, john, ..) = cf_site();
        let pattern = GraphPattern::starting_at(Condition::on_attr("id", john.raw() as i64));
        let paths = find_paths(&g, &pattern);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![john]);
        assert!(pattern.is_empty());
    }

    #[test]
    fn no_match_yields_empty_output() {
        let (g, ..) = cf_site();
        let pattern = GraphPattern::starting_at(Condition::on_attr("type", "group"))
            .then(PatternStep::forward(Condition::on_attr("type", "visit")));
        let out = pattern_aggregate(&g, &pattern, "x", &PathAggregate::CountPaths);
        assert!(out.is_empty());
    }

    #[test]
    fn step_aggregate_delegates_to_aggregate_fn() {
        let (g, john, coors, _) = cf_site();
        let pattern = GraphPattern::fig2_collaborative_filtering(john);
        let out = pattern_aggregate(
            &g,
            &pattern,
            "max_sim",
            &PathAggregate::StepAggregate { step: 0, agg: AggregateFn::Max("sim".into()) },
        );
        let coors_link = out.links().find(|l| l.tgt == coors).unwrap();
        assert_eq!(coors_link.attrs.get_f64("max_sim"), Some(0.8));
    }

    #[test]
    fn path_aggregate_equality() {
        assert_eq!(PathAggregate::CountPaths, PathAggregate::CountPaths);
        assert_eq!(
            PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
            PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() }
        );
        assert_ne!(
            PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
            PathAggregate::AvgLinkAttr { step: 1, attr: "sim".into() }
        );
        let c = PathAggregate::Custom(Arc::new(|_, _| Value::empty()));
        assert_ne!(c.clone(), c);
    }
}
