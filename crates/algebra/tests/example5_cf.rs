//! Paper Example 5: collaborative filtering expressed in the algebra, and
//! its equivalence with the Figure 2 graph-pattern formulation.
//!
//! The test builds a small Y!Travel-like site, runs the nine algebraic steps
//! of Example 5 verbatim, runs the single pattern-aggregation of Figure 2,
//! and checks that both produce the same recommendation scores — which is
//! exactly the comparison the paper poses as a research question at the end
//! of §5.4 (our experiment E3 benchmarks the two formulations).

use socialscope_algebra::condition::Comparison;
use socialscope_algebra::prelude::*;
use socialscope_graph::{GraphBuilder, NodeId, SocialGraph, Value};
use std::collections::BTreeMap;

/// Build the running-example site: John plus other travelers with visit
/// activity. John has visited Coors Field and Red Rocks; similar users have
/// visited additional destinations that should be recommended.
fn cf_site() -> (SocialGraph, NodeId, BTreeMap<&'static str, NodeId>) {
    let mut b = GraphBuilder::new();
    let john = b.add_user("John");
    let alice = b.add_user("Alice");
    let bob = b.add_user("Bob");
    let carol = b.add_user("Carol");

    let coors = b.add_item("Coors Field", &["destination"]);
    let red_rocks = b.add_item("Red Rocks", &["destination"]);
    let museum = b.add_item("B's Ballpark Museum", &["destination"]);
    let zoo = b.add_item("Denver Zoo", &["destination"]);
    let aquarium = b.add_item("Downtown Aquarium", &["destination"]);

    // John's history.
    b.visit(john, coors);
    b.visit(john, red_rocks);
    // Alice overlaps heavily with John (Jaccard 2/3) and visited the museum.
    b.visit(alice, coors);
    b.visit(alice, red_rocks);
    b.visit(alice, museum);
    // Bob overlaps on Coors only (Jaccard 1/4) and visited the zoo + aquarium.
    b.visit(bob, coors);
    b.visit(bob, zoo);
    b.visit(bob, aquarium);
    // Carol has no overlap with John.
    b.visit(carol, zoo);

    let mut items = BTreeMap::new();
    items.insert("coors", coors);
    items.insert("red_rocks", red_rocks);
    items.insert("museum", museum);
    items.insert("zoo", zoo);
    items.insert("aquarium", aquarium);
    (b.build(), john, items)
}

/// Run Example 5's nine steps and return the final graph `G7` whose links
/// carry the `score` attribute on John→destination links.
fn example5_multistep(g: &SocialGraph, john: NodeId, threshold: f64) -> SocialGraph {
    let john_id = john.raw() as i64;

    // Step 1: John and the places he has visited.
    let john_node = node_select(g, &Condition::on_attr("id", john_id), None);
    let g1 = link_select(
        &semi_join(g, &john_node, DirectionalCondition::src_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );

    // Step 2: collect John's visited destinations into the `vst` attribute.
    let g1p = node_aggregate(
        &g1,
        &Condition::on_attr("type", "visit"),
        Direction::Src,
        "vst",
        &AggregateFn::CollectSet("tgt".into()),
    );

    // Step 3: users other than John and the places they have visited.
    let others = node_select(
        g,
        &Condition::any().and_attr("type", "user").and_compare(
            "id",
            Comparison::NotEquals,
            john_id,
        ),
        None,
    );
    let g2 = link_select(
        &semi_join(g, &others, DirectionalCondition::src_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );

    // Step 4: collect every other user's visited destinations.
    let g2p = node_aggregate(
        &g2,
        &Condition::on_attr("type", "visit"),
        Direction::Src,
        "vst",
        &AggregateFn::CollectSet("tgt".into()),
    );

    // Step 5: compose on shared destinations (δ = (tgt, tgt)); F computes the
    // Jaccard similarity of the `vst` sets and tags the link.
    let g3 = compose(
        &g1p,
        &g2p,
        DirectionalCondition::tgt_tgt(),
        &ComposeSpec::Chain(vec![
            ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("user_sim"))]),
            ComposeSpec::JaccardOfNodeSets { attr: "vst".into(), out: "sim".into() },
        ]),
    );

    // Step 6: replace parallel high-similarity links by one 'match' link.
    let g4 = link_aggregate_multi(
        &g3,
        &Condition::any().and_attr("type", "user_sim").and_compare(
            "sim",
            Comparison::Greater,
            threshold,
        ),
        &[
            ("type".to_string(), AggregateFn::ConstStr("match".into())),
            ("sim".to_string(), AggregateFn::First("sim".into())),
        ],
    );
    let g4_matches = link_select(&g4, &Condition::on_attr("type", "match"), None);

    // Step 7: users and the destinations they have visited.
    let destinations = node_select(g, &Condition::on_attr("type", "destination"), None);
    let g5 = link_select(
        &semi_join(g, &destinations, DirectionalCondition::tgt_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );

    // Step 8: compose John's similarity network with the visits of those
    // users; copy sim onto the new link as sim_sc.
    let left = semi_join(&g4_matches, &g5, DirectionalCondition::tgt_src());
    let right = semi_join(&g5, &g4_matches, DirectionalCondition::src_tgt());
    let g6 = compose(
        &left,
        &right,
        DirectionalCondition::tgt_src(),
        &ComposeSpec::Chain(vec![
            ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("recommendation"))]),
            ComposeSpec::CopyLinkAttr {
                side: socialscope_algebra::compose::Side::Left,
                attr: "sim".into(),
                out: "sim_sc".into(),
            },
        ]),
    );

    // Step 9: average sim_sc per (John, destination) pair.
    link_aggregate(
        &g6,
        &Condition::on_attr("type", "recommendation"),
        "score",
        &AggregateFn::Avg("sim_sc".into()),
    )
}

/// Extract destination → score from a recommendation graph rooted at `john`.
fn scores(g: &SocialGraph, john: NodeId) -> BTreeMap<NodeId, f64> {
    g.links()
        .filter(|l| l.src == john)
        .filter_map(|l| l.attrs.get_f64("score").map(|s| (l.tgt, s)))
        .collect()
}

#[test]
fn example5_recommends_unvisited_destinations() {
    let (g, john, items) = cf_site();
    // Threshold 0.2 keeps both Alice (Jaccard 2/3) and Bob (Jaccard 1/4).
    let g7 = example5_multistep(&g, john, 0.2);
    let scores = scores(&g7, john);

    // The museum (endorsed by highly similar Alice) must outrank the zoo and
    // aquarium (endorsed by weakly similar Bob).
    let museum = scores[&items["museum"]];
    let zoo = scores[&items["zoo"]];
    let aquarium = scores[&items["aquarium"]];
    assert!(museum > zoo, "museum={museum} zoo={zoo}");
    assert!((zoo - aquarium).abs() < 1e-9);

    // Alice's Jaccard with John is 2/3; Bob's is 1/4.
    assert!((museum - 2.0 / 3.0).abs() < 1e-9);
    assert!((zoo - 0.25).abs() < 1e-9);
}

#[test]
fn example5_threshold_filters_dissimilar_users() {
    let (g, john, items) = cf_site();
    // With the paper's 0.5 threshold, Bob (Jaccard 1/4) is not similar
    // enough: nothing endorsed only by Bob is recommended.
    let g7 = example5_multistep(&g, john, 0.5);
    let scores = scores(&g7, john);
    assert!(!scores.contains_key(&items["zoo"]));
    assert!(!scores.contains_key(&items["aquarium"]));
    // Alice's endorsement of the museum survives.
    assert!(scores.contains_key(&items["museum"]));
}

#[test]
fn pattern_aggregation_matches_multistep_formulation() {
    let (g, john, _) = cf_site();

    // Multi-step result (steps 1-9).
    let g7 = example5_multistep(&g, john, 0.2);
    let multi = scores(&g7, john);

    // Figure 2 formulation: materialize the match links (steps 1-6), union
    // with the visit links, then run a single pattern aggregation.
    let john_id = john.raw() as i64;
    let john_node = node_select(&g, &Condition::on_attr("id", john_id), None);
    let g1 = link_select(
        &semi_join(&g, &john_node, DirectionalCondition::src_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );
    let g1p = node_aggregate(
        &g1,
        &Condition::on_attr("type", "visit"),
        Direction::Src,
        "vst",
        &AggregateFn::CollectSet("tgt".into()),
    );
    let others = node_select(
        &g,
        &Condition::any().and_attr("type", "user").and_compare(
            "id",
            Comparison::NotEquals,
            john_id,
        ),
        None,
    );
    let g2 = link_select(
        &semi_join(&g, &others, DirectionalCondition::src_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );
    let g2p = node_aggregate(
        &g2,
        &Condition::on_attr("type", "visit"),
        Direction::Src,
        "vst",
        &AggregateFn::CollectSet("tgt".into()),
    );
    let g3 = compose(
        &g1p,
        &g2p,
        DirectionalCondition::tgt_tgt(),
        &ComposeSpec::Chain(vec![
            ComposeSpec::ConstAttrs(vec![("type".into(), Value::single("user_sim"))]),
            ComposeSpec::JaccardOfNodeSets { attr: "vst".into(), out: "sim".into() },
        ]),
    );
    let g4 = link_aggregate_multi(
        &g3,
        &Condition::any().and_attr("type", "user_sim").and_compare("sim", Comparison::Greater, 0.2),
        &[
            ("type".to_string(), AggregateFn::ConstStr("match".into())),
            ("sim".to_string(), AggregateFn::First("sim".into())),
        ],
    );
    let g4_matches = link_select(&g4, &Condition::on_attr("type", "match"), None);
    let destinations = node_select(&g, &Condition::on_attr("type", "destination"), None);
    let g5 = link_select(
        &semi_join(&g, &destinations, DirectionalCondition::tgt_src()),
        &Condition::on_attr("type", "visit"),
        None,
    );

    // γL_GP,score,avg(sim)(G4 ∪ G5): the Figure 2 pattern.
    let combined = union(&g4_matches, &g5);
    let pattern = GraphPattern::fig2_collaborative_filtering(john);
    let patterned = pattern_aggregate(
        &combined,
        &pattern,
        "score",
        &PathAggregate::AvgLinkAttr { step: 0, attr: "sim".into() },
    );
    let via_pattern = scores(&patterned, john);

    // The pattern formulation also scores destinations John already visited
    // (his similar users visited them too); the multi-step result contains
    // those as well since Example 5 never removes them. Compare the full maps.
    assert_eq!(multi.len(), via_pattern.len());
    for (dest, score) in &multi {
        let other = via_pattern.get(dest).copied().unwrap_or(f64::NAN);
        assert!(
            (score - other).abs() < 1e-9,
            "destination {dest}: multi-step {score} vs pattern {other}"
        );
    }
}
