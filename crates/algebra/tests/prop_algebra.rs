//! Property-based tests of the algebra's laws.

use proptest::prelude::*;
use socialscope_algebra::prelude::*;
use socialscope_graph::{GraphBuilder, NodeId, SocialGraph};

/// Build a random site and two random sub-graphs of it (by selecting links
/// through different type conditions), which is how set operands arise in
/// practice: both originate from the same site.
fn build_site(users: usize, items: usize, edges: &[(usize, usize, u8)]) -> SocialGraph {
    let mut b = GraphBuilder::new();
    let user_ids: Vec<NodeId> = (0..users).map(|i| b.add_user(&format!("u{i}"))).collect();
    let item_ids: Vec<NodeId> =
        (0..items).map(|i| b.add_item(&format!("i{i}"), &["destination"])).collect();
    for &(a, c, kind) in edges {
        match kind % 3 {
            0 => {
                let (a, c) = (a % users, c % users);
                if a != c {
                    b.befriend(user_ids[a], user_ids[c]);
                }
            }
            1 => {
                b.visit(user_ids[a % users], item_ids[c % items]);
            }
            _ => {
                b.tag(user_ids[a % users], item_ids[c % items], &["t"]);
            }
        }
    }
    b.build()
}

fn arb_site() -> impl Strategy<Value = SocialGraph> {
    (2usize..8, 2usize..8, prop::collection::vec((0usize..8, 0usize..8, 0u8..3), 0..40))
        .prop_map(|(u, i, e)| build_site(u, i, &e))
}

/// Two derived operand graphs from the same site.
fn operands(g: &SocialGraph) -> (SocialGraph, SocialGraph) {
    let g1 = link_select(g, &Condition::on_attr("type", "friend"), None);
    let mut g2 = link_select(g, &Condition::on_attr("type", "visit"), None);
    // Make the operands overlap: also pull the tag links into both.
    let tags = link_select(g, &Condition::on_attr("type", "tag"), None);
    let g1 = union(&g1, &tags);
    g2 = union(&g2, &tags);
    (g1, g2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union is commutative and idempotent on node/link id sets.
    #[test]
    fn union_laws(g in arb_site()) {
        let (g1, g2) = operands(&g);
        let ab = union(&g1, &g2);
        let ba = union(&g2, &g1);
        prop_assert_eq!(ab.node_id_set(), ba.node_id_set());
        prop_assert_eq!(ab.link_id_set(), ba.link_id_set());
        prop_assert_eq!(&union(&g1, &g1), &g1);
    }

    /// Intersection is commutative, idempotent, and contained in both inputs.
    #[test]
    fn intersection_laws(g in arb_site()) {
        let (g1, g2) = operands(&g);
        let ab = intersect(&g1, &g2);
        let ba = intersect(&g2, &g1);
        prop_assert_eq!(ab.node_id_set(), ba.node_id_set());
        prop_assert_eq!(ab.link_id_set(), ba.link_id_set());
        for n in ab.nodes() {
            prop_assert!(g1.has_node(n.id) && g2.has_node(n.id));
        }
        for l in ab.links() {
            prop_assert!(g1.has_link(l.id) && g2.has_link(l.id));
        }
        prop_assert_eq!(&intersect(&g1, &g1), &g1);
    }

    /// Set operators are associative on id sets.
    #[test]
    fn union_associativity(g in arb_site()) {
        let (g1, g2) = operands(&g);
        let g3 = link_select(&g, &Condition::on_attr("type", "visit"), None);
        let left = union(&union(&g1, &g2), &g3);
        let right = union(&g1, &union(&g2, &g3));
        prop_assert_eq!(left.node_id_set(), right.node_id_set());
        prop_assert_eq!(left.link_id_set(), right.link_id_set());
    }

    /// Node-driven minus removes exactly the nodes of the right operand, and
    /// its links are a subset of the link-driven minus (the relationship the
    /// paper's Lemma 1 discussion relies on).
    #[test]
    fn minus_laws(g in arb_site()) {
        let (g1, g2) = operands(&g);
        let nd = minus(&g1, &g2);
        for n in nd.nodes() {
            prop_assert!(!g2.has_node(n.id));
            prop_assert!(g1.has_node(n.id));
        }
        let ld = minus_link_driven(&g1, &g2);
        for l in nd.links() {
            prop_assert!(ld.has_link(l.id));
        }
        for l in ld.links() {
            prop_assert!(g1.has_link(l.id) && !g2.has_link(l.id));
        }
        // Minus with self is empty; minus with the empty graph keeps nodes.
        prop_assert!(minus(&g1, &g1).is_empty());
        prop_assert_eq!(&minus(&g1, &SocialGraph::new()), &g1);
    }

    /// Selection output is always a sub-graph of the input, and selection is
    /// idempotent.
    #[test]
    fn selection_laws(g in arb_site()) {
        let cond = Condition::on_attr("type", "user");
        let sel = node_select(&g, &cond, None);
        for n in sel.nodes() {
            prop_assert!(g.has_node(n.id));
        }
        prop_assert!(sel.is_null_graph());
        let again = node_select(&sel, &cond, None);
        prop_assert_eq!(again.node_id_set(), sel.node_id_set());

        let lcond = Condition::on_attr("type", "act");
        let lsel = link_select(&g, &lcond, None);
        for l in lsel.links() {
            prop_assert!(g.has_link(l.id));
        }
        let lagain = link_select(&lsel, &lcond, None);
        prop_assert_eq!(lagain.link_id_set(), lsel.link_id_set());
    }

    /// Fused selections (the optimizer rewrite) are equivalent to sequential
    /// selections.
    #[test]
    fn fused_selection_equivalence(g in arb_site()) {
        let c1 = Condition::on_attr("type", "item");
        let c2 = Condition::on_attr("type", "destination");
        let sequential = node_select(&node_select(&g, &c1, None), &c2, None);
        let fused = node_select(&g, &c1.clone().and(&c2), None);
        prop_assert_eq!(sequential.node_id_set(), fused.node_id_set());
    }

    /// Node aggregation with COUNT over friend links equals the out-degree
    /// restricted to friend links, for every node.
    #[test]
    fn aggregation_count_equals_manual_count(g in arb_site()) {
        let out = node_aggregate(
            &g,
            &Condition::on_attr("type", "friend"),
            Direction::Src,
            "fnd_cnt",
            &AggregateFn::Count,
        );
        for node in out.nodes() {
            let manual = g
                .out_links(node.id)
                .filter(|l| Condition::on_attr("type", "friend").satisfied_by_link(l))
                .count();
            let recorded = node.attrs.get_f64("fnd_cnt").unwrap_or(0.0) as usize;
            prop_assert_eq!(recorded, manual);
        }
    }

    /// Link aggregation never increases the number of links and preserves
    /// non-matching links.
    #[test]
    fn link_aggregation_shrinks(g in arb_site()) {
        let cond = Condition::on_attr("type", "tag");
        let out = link_aggregate(&g, &cond, "cnt", &AggregateFn::Count);
        prop_assert!(out.link_count() <= g.link_count());
        for l in g.links() {
            if !cond.satisfied_by_link(l) {
                prop_assert!(out.has_link(l.id));
            }
        }
        prop_assert_eq!(out.node_count(), g.node_count());
    }

    /// Semi-join output is a sub-graph of the left input.
    #[test]
    fn semi_join_is_left_subgraph(g in arb_site()) {
        let friends = link_select(&g, &Condition::on_attr("type", "friend"), None);
        let visits = link_select(&g, &Condition::on_attr("type", "visit"), None);
        let out = semi_join(&friends, &visits, DirectionalCondition::tgt_src());
        for l in out.links() {
            prop_assert!(friends.has_link(l.id));
        }
        for n in out.nodes() {
            prop_assert!(friends.has_node(n.id));
        }
    }

    /// Composition endpoints: every composed link starts at a node of G1 and
    /// ends at a node of G2, and its id is fresh.
    #[test]
    fn composition_endpoints_and_fresh_ids(g in arb_site()) {
        let friends = link_select(&g, &Condition::on_attr("type", "friend"), None);
        let visits = link_select(&g, &Condition::on_attr("type", "visit"), None);
        let out = compose(
            &friends,
            &visits,
            DirectionalCondition::tgt_src(),
            &ComposeSpec::ConstAttrs(vec![("type".into(), socialscope_graph::Value::single("rec"))]),
        );
        for l in out.links() {
            prop_assert!(friends.has_node(l.src));
            prop_assert!(visits.has_node(l.tgt));
            prop_assert!(!g.has_link(l.id));
        }
    }

    /// The optimizer never changes plan semantics on a representative plan
    /// shape (selection over union over selections).
    #[test]
    fn optimizer_preserves_semantics(g in arb_site()) {
        let left = PlanBuilder::base().link_select(Condition::on_attr("type", "visit"));
        let right = PlanBuilder::base().link_select(Condition::on_attr("type", "friend"));
        let plan = left
            .union(&right)
            .node_select(Condition::on_attr("type", "user"))
            .node_select(Condition::any())
            .build();
        let (optimized, _) = Optimizer::new().optimize(&plan);
        let mut ev = Evaluator::new(&g);
        let a = ev.evaluate(&plan).unwrap();
        let b = ev.evaluate(&optimized).unwrap();
        prop_assert_eq!(a.node_id_set(), b.node_id_set());
        prop_assert_eq!(a.link_id_set(), b.link_id_set());
    }
}
