//! A hand-rolled HTTP/1.1 request reader and response writer over any
//! `Read`/`Write` pair — std only, no async runtime, no registry access.
//!
//! The reader is incremental: it tolerates request bytes arriving one at a
//! time across `read()` calls (slow clients, small MTUs, deliberate
//! trickling in tests), buffers leftover bytes between requests so
//! pipelined keep-alive traffic is served in order, and enforces hard size
//! caps on the header block and the body *before* allocating for them.
//! Every malformed input maps to a clean typed error — a 4xx/5xx status
//! for the peer where one can still be written, a silent close where the
//! peer already vanished — never a panic.

use std::io::{Read, Write};

/// Size caps the reader enforces while parsing.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (terminator included);
    /// beyond it the request is rejected with `431`.
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`; beyond it the request is
    /// rejected with `413` before any body byte is read.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_head_bytes: 8 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, verbatim (`/query`).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names are
    /// ASCII-lowercased so lookups are case-insensitive per RFC 9110.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(key, _)| *key == name).map(|(_, value)| value.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|value| value.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. [`HttpError::status`] says which ones
/// still get a response on the wire.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed cleanly between requests — the normal end of a
    /// keep-alive connection, not an error to report.
    Closed,
    /// The peer vanished mid-request; nothing useful can be written back.
    TruncatedRequest,
    /// The request violates HTTP/1.1 framing (`400`).
    Malformed(&'static str),
    /// The header block exceeds [`HttpLimits::max_head_bytes`] (`431`).
    HeadersTooLarge,
    /// The declared body exceeds [`HttpLimits::max_body_bytes`] (`413`).
    BodyTooLarge,
    /// Not HTTP/1.x (`505`).
    UnsupportedVersion,
    /// Transport failure while reading.
    Io(std::io::Error),
}

impl HttpError {
    /// The status line to answer with, or `None` when the connection is
    /// past answering (closed, truncated, transport dead).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(detail) => Some((400, detail)),
            HttpError::HeadersTooLarge => Some((431, "request header fields too large")),
            HttpError::BodyTooLarge => Some((413, "request body too large")),
            HttpError::UnsupportedVersion => Some((505, "HTTP version not supported")),
            HttpError::Closed | HttpError::TruncatedRequest | HttpError::Io(_) => None,
        }
    }
}

/// How many bytes one `read()` call may pull in; small enough that the
/// head cap is enforced within one chunk of slack.
const READ_CHUNK: usize = 4096;

/// An incremental request reader owning the connection's receive buffer:
/// bytes past one request's body (pipelined traffic) carry over to the
/// next [`Self::read_request`] call instead of being dropped.
#[derive(Debug)]
pub struct RequestReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a connection.
    pub fn new(inner: R) -> Self {
        RequestReader { inner, buf: Vec::new() }
    }

    /// Read one full request (head + declared body), blocking until the
    /// peer has sent it all. Tolerates arbitrarily fragmented reads.
    pub fn read_request(&mut self, limits: &HttpLimits) -> Result<Request, HttpError> {
        let head_end = loop {
            if let Some(pos) = find_terminator(&self.buf) {
                break pos;
            }
            if self.buf.len() > limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            if self.fill()? == 0 {
                return Err(if self.buf.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::TruncatedRequest
                });
            }
        };
        if head_end > limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::Malformed("header block is not valid UTF-8"))?;
        let (method, path, headers) = parse_head(head)?;

        // Exactly one Content-Length, plain ASCII digits only: duplicates
        // (even when equal) and sign/whitespace spellings are a
        // request-smuggling hazard behind any proxy that resolves them
        // differently, so they are rejected outright.
        let mut content_lengths = headers.iter().filter(|(name, _)| name == "content-length");
        let body_len = match content_lengths.next() {
            Some((_, value)) => {
                if content_lengths.next().is_some() {
                    return Err(HttpError::Malformed("multiple content-length headers"));
                }
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(HttpError::Malformed("invalid content-length"));
                }
                value
                    .parse::<usize>()
                    .map_err(|_| HttpError::Malformed("invalid content-length"))?
            }
            None => 0,
        };
        if headers.iter().any(|(name, _)| name == "transfer-encoding") {
            return Err(HttpError::Malformed("transfer-encoding is not supported"));
        }
        if body_len > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }

        let body_start = head_end + 4;
        while self.buf.len() < body_start + body_len {
            if self.fill()? == 0 {
                return Err(HttpError::TruncatedRequest);
            }
        }
        let body = self.buf[body_start..body_start + body_len].to_vec();
        // Keep pipelined leftovers for the next request on this connection.
        self.buf.drain(..body_start + body_len);
        Ok(Request { method, path, headers, body })
    }

    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; READ_CHUNK];
        match self.inner.read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => self.fill(),
            Err(e) => Err(HttpError::Io(e)),
        }
    }
}

/// Position of the `\r\n\r\n` head terminator, if buffered yet.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse request line + headers out of the head block (terminator
/// excluded). Header names come back ASCII-lowercased.
#[allow(clippy::type_complexity)]
fn parse_head(head: &str) -> Result<(String, String, Vec<(String, String)>), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::Malformed("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::UnsupportedVersion);
    }
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::Malformed("malformed method token"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("request target must be absolute"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) =
            line.split_once(':').ok_or(HttpError::Malformed("header line without `:`"))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::Malformed("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// The reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write one `application/json` response; `close` adds
/// `Connection: close` so the peer knows the server will hang up.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}\r\n",
        status,
        status_reason(status),
        body.len(),
        if close { "Connection: close\r\n" } else { "" }
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader yielding at most `step` bytes per `read()` call: the
    /// harshest legal fragmentation an OS socket could produce.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(out.len()).min(self.bytes.len() - self.pos);
            out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn read_one(raw: &[u8], step: usize) -> Result<Request, HttpError> {
        let mut reader = RequestReader::new(Trickle { bytes: raw.to_vec(), pos: 0, step });
        reader.read_request(&HttpLimits::default())
    }

    #[test]
    fn requests_survive_one_byte_reads() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        for step in [1usize, 2, 3, 7, 4096] {
            let request = read_one(raw, step).unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/query");
            assert_eq!(request.header("host"), Some("x"));
            assert_eq!(request.header("HOST"), Some("x"));
            assert_eq!(request.body, b"body");
        }
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = RequestReader::new(Trickle { bytes: raw.to_vec(), pos: 0, step: 5 });
        let limits = HttpLimits::default();
        let first = reader.read_request(&limits).unwrap();
        assert_eq!(first.path, "/health");
        assert!(!first.wants_close());
        let second = reader.read_request(&limits).unwrap();
        assert_eq!(second.path, "/stats");
        assert!(second.wants_close());
        assert!(matches!(reader.read_request(&limits), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let raw = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(read_one(raw.as_bytes(), 4096), Err(HttpError::HeadersTooLarge)));
        // The cap fires even when the terminator never arrives.
        let raw = format!("GET / HTTP/1.1\r\nx-pad: {}", "a".repeat(10_000));
        assert!(matches!(read_one(raw.as_bytes(), 512), Err(HttpError::HeadersTooLarge)));
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let err = read_one(raw, 4096).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status(), Some((413, "request body too large")));
    }

    #[test]
    fn malformed_requests_map_to_400_class_errors() {
        let cases: &[&[u8]] = &[
            b"NOT-A-REQUEST\r\n\r\n",
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"G=T / HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: +4\r\n\r\nbody",
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nbody",
            b"POST / HTTP/1.1\r\nContent-Length: 4, 4\r\n\r\nbody",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\n\xff\xfe: x\r\n\r\n",
        ];
        for raw in cases {
            let err = read_one(raw, 3).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed(_)),
                "expected Malformed for {:?}, got {err:?}",
                String::from_utf8_lossy(raw)
            );
            assert_eq!(err.status().unwrap().0, 400);
        }
        let err = read_one(b"GET / HTTP/2\r\n\r\n", 3).unwrap_err();
        assert!(matches!(err, HttpError::UnsupportedVersion));
        assert_eq!(err.status(), Some((505, "HTTP version not supported")));
    }

    #[test]
    fn connection_close_mid_request_is_a_clean_truncation() {
        // Mid-head …
        let err = read_one(b"POST /query HTTP/1.1\r\nContent-Le", 2).unwrap_err();
        assert!(matches!(err, HttpError::TruncatedRequest));
        // … and mid-body: the declared length never arrives.
        let err = read_one(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 2).unwrap_err();
        assert!(matches!(err, HttpError::TruncatedRequest));
        assert!(err.status().is_none(), "truncation gets no response, just a close");
        // A clean pre-request close is not an error at all.
        assert!(matches!(read_one(b"", 1), Err(HttpError::Closed)));
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 409, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 409 Conflict\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
