//! # socialscope-server
//!
//! A real serving front for the SocialScope engines: a hand-rolled,
//! dependency-free HTTP/1.1 layer over `std::net::TcpListener` (no async
//! runtime) that admits single-seeker query and tag-event requests,
//! micro-batches queries by resolved keyword set within a configurable
//! deadline window, and serves each flushed batch through the clustered
//! engine's `query_batch_opts` — with [`BatchOptions::deadline`] carrying
//! the *remaining* per-request SLO budget, so time spent waiting in the
//! batching window counts against the engine's budget, not on top of it.
//!
//! [`BatchOptions::deadline`]: socialscope_content::BatchOptions::deadline
//!
//! The moving parts:
//!
//! * [`http`] — incremental request reader and response writer with hard
//!   size caps; hostile input gets a clean typed `4xx`, never a panic.
//! * The batcher (internal) — groups admitted queries by
//!   `(normalized keyword set, k)` and flushes when the oldest member has
//!   waited the window or the batch hits its size cap. A zero window is
//!   per-request serving through the identical machinery.
//! * [`spawn`] / [`ServerHandle`] — the accept loop, per-connection
//!   handler threads, and the serving-worker pool (each worker owns a
//!   persistent `BatchScratchPool`; a panicking worker is isolated via
//!   `catch_unwind` and poison-free locks).
//!
//! The wire schema ([`wire`]) lives in `socialscope_content` so every
//! layer — server, bench load generator, external clients — shares one
//! set of versioned request/response types; this crate re-exports it.
//!
//! ## Endpoints
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /query` | Admit a [`wire::QueryRequest`]; blocks until its micro-batch is served. Deadline-expired members return HTTP 200 with `degraded: true` and whatever ranking was completed — degradation is in-band, not an error. |
//! | `POST /apply` | Transactional tag-event ingestion; any rejection (unknown user/item, capacity, injected fault) rolls the engine back and returns a typed `409 apply_rejected`. |
//! | `GET /health` | Liveness plus the wire version. |
//! | `GET /stats` | Monotonic serving counters (queries, applies, degraded, batches). |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;

mod batcher;
mod server;

pub use server::{spawn, ServerConfig, ServerHandle};
pub use socialscope_content::wire;
