//! The serving core: a `TcpListener` accept loop, per-connection handler
//! threads speaking the wire schema over [`crate::http`], and a pool of
//! serving workers flushing micro-batches from the [`crate::batcher`]
//! into the clustered engine's `query_batch_opts` — each worker owning a
//! persistent `BatchScratchPool`, all sharing one [`Exec`] and one
//! engine behind a read/write lock.
//!
//! ## Deadline budget
//!
//! Every query is admitted with the configured SLO budget. When its batch
//! flushes, the *remaining* budget (SLO minus time already spent queued in
//! the window) is handed to the engine as [`BatchOptions::deadline`]; a
//! budget that expires mid-batch — or was already gone at flush time —
//! yields the engine's defined `deadline_expired` partial result, which
//! travels the wire as an HTTP 200 with [`QueryResponse::degraded`] set.
//! Failure stays in-band and typed, end to end.
//!
//! ## Apply transactionality
//!
//! `POST /apply` takes the engine write lock and runs the engines'
//! transactional `try_apply_with`: on any error (unknown user/item,
//! capacity, injected fault) the engine — site model, clustered index,
//! exact fallback — is untouched and the client gets a typed `409` with
//! the error detail. A success is visible to every query admitted after
//! the lock releases.

use crate::batcher::{Batcher, Pending, ReadyBatch, ServeOutcome};
use crate::http::{write_response, HttpLimits, Request, RequestReader};
use crate::wire::{
    ApplyRequest, ApplyResponse, ErrorResponse, QueryRequest, QueryResponse, ScoredItem,
    StatsResponse, WIRE_VERSION,
};
use parking_lot::RwLock;
use socialscope_content::{BatchOptions, BatchScratchPool, Layout};
use socialscope_discovery::ClusteredNetworkAwareSearch;
use socialscope_exec::Exec;
use socialscope_graph::NodeId;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Micro-batching window: how long the oldest member of a batch may
    /// wait for company before the batch flushes. Zero serves per-request.
    pub window: Duration,
    /// Flush a batch early once it collects this many members.
    pub max_batch: usize,
    /// Per-request latency budget, counted from admission (queue wait
    /// included); what remains at flush time becomes the engine deadline.
    pub slo: Duration,
    /// Serving worker threads draining the batch queue.
    pub workers: usize,
    /// Largest honored `k`; bigger asks are clamped (a hostile request
    /// must not make the engine rank the whole site).
    pub k_max: usize,
    /// HTTP parser size caps.
    pub limits: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            window: Duration::from_millis(2),
            max_batch: 128,
            slo: Duration::from_millis(50),
            workers: 2,
            k_max: 100,
            limits: HttpLimits::default(),
        }
    }
}

/// Monotonically increasing serving counters (`GET /stats`).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    applies: AtomicU64,
    degraded: AtomicU64,
    batches: AtomicU64,
}

struct Shared {
    engine: RwLock<ClusteredNetworkAwareSearch>,
    batcher: Batcher,
    exec: Exec,
    config: ServerConfig,
    counters: Counters,
    shutdown: AtomicBool,
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain queued queries, and join every serving
    /// thread. In-flight connections are answered with
    /// `Connection: close`.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.batcher.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// Boot a server over a prebuilt engine. The engine should carry an exact
/// fallback ([`ClusteredNetworkAwareSearch::with_exact_fallback`]) so
/// seekers the clustering never saw get real answers; without one they get
/// the engine's defined empty-with-flag result, marked `unclustered`
/// either way.
pub fn spawn(
    config: ServerConfig,
    engine: ClusteredNetworkAwareSearch,
    exec: Exec,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine: RwLock::new(engine),
        batcher: Batcher::new(config.window, config.max_batch),
        exec,
        config,
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
    });

    // Thread spawning can genuinely fail (thread-count rlimits, memory
    // pressure), and `spawn` already returns `io::Result`: a failed boot
    // surfaces as a typed error, never a panic. A partial boot is rolled
    // back first — the workers that did spawn are woken via batcher
    // shutdown and joined, so no thread outlives the error.
    let worker_count = shared.config.workers.max(1);
    let mut worker_threads = Vec::with_capacity(worker_count);
    for index in 0..worker_count {
        let worker_shared = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name(format!("serve-worker-{index}"))
            .spawn(move || worker_loop(&worker_shared))
        {
            Ok(handle) => worker_threads.push(handle),
            Err(error) => {
                shared.batcher.shutdown();
                for handle in worker_threads {
                    let _ = handle.join();
                }
                return Err(error);
            }
        }
    }

    let accept_shared = Arc::clone(&shared);
    let accept_thread = match std::thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || accept_loop(listener, &accept_shared))
    {
        Ok(handle) => handle,
        Err(error) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.batcher.shutdown();
            for handle in worker_threads {
                let _ = handle.join();
            }
            return Err(error);
        }
    };

    Ok(ServerHandle { addr, shared, accept_thread: Some(accept_thread), worker_threads })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // One thread per connection: keep-alive clients (the load
        // generator, production pollers) hold few, long-lived
        // connections, so the thread count tracks the client pool size,
        // not the request rate.
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// The serving worker loop: pop a ripe batch, serve it under the
/// remaining deadline budget, answer every member. A panic inside the
/// engine call is caught and converted to per-member failures — the
/// worker, the queue, and every other connection keep serving
/// (`parking_lot` locks do not poison).
fn worker_loop(shared: &Arc<Shared>) {
    let mut pool = BatchScratchPool::default();
    while let Some(batch) = shared.batcher.next_batch() {
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_batch(shared, &mut pool, &batch)));
        match outcome {
            Ok(responses) => {
                for (member, response) in batch.members.iter().zip(responses) {
                    if response.degraded {
                        shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = member.reply.send(ServeOutcome::Answer(Box::new(response)));
                }
            }
            Err(_) => {
                // The scratch pool may be mid-mutation; drop it for a
                // fresh one rather than reuse possibly-torn state.
                pool = BatchScratchPool::default();
                for member in &batch.members {
                    let _ = member.reply.send(ServeOutcome::Failed);
                }
            }
        }
    }
}

/// Serve one flushed batch through `query_batch_opts`, mapping each
/// member's report to its wire response.
fn serve_batch(
    shared: &Arc<Shared>,
    pool: &mut BatchScratchPool,
    batch: &ReadyBatch,
) -> Vec<QueryResponse> {
    let seekers: Vec<NodeId> = batch.members.iter().map(|m| m.request.seeker).collect();
    let k = batch.key.k.min(shared.config.k_max);
    // The budget left after window wait; zero still reaches the engine —
    // an already-expired deadline degrades every member by contract,
    // which keeps "SLO blown before flush" on the same defined path.
    let remaining = shared.config.slo.saturating_sub(batch.oldest.elapsed());
    let engine = shared.engine.read();
    let reports = engine.query_batch_opts(
        &seekers,
        &batch.key.keywords,
        k,
        BatchOptions::new().exec(&shared.exec).scratch_pool(pool).deadline(remaining),
    );
    batch
        .members
        .iter()
        .zip(reports)
        .map(|(member, report)| {
            let degraded = report.deadline_expired || report.result.deadline_expired;
            QueryResponse {
                version: WIRE_VERSION,
                seeker: member.request.seeker,
                results: report
                    .result
                    .ranked
                    .into_iter()
                    .filter(|(_, score)| *score > 0.0)
                    .map(|(item, score)| ScoredItem { item, score })
                    .collect(),
                degraded,
                unclustered: report.unclustered,
                batch_size: batch.members.len(),
            }
        })
        .collect()
}

/// Per-connection keep-alive loop: read a request, route it, write the
/// response; close on error, `Connection: close`, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = RequestReader::new(stream);
    loop {
        let request = match reader.read_request(&shared.config.limits) {
            Ok(request) => request,
            Err(error) => {
                if let Some((status, detail)) = error.status() {
                    let body = ErrorResponse::new(error_kind(status), detail).to_json();
                    if write_response(&mut writer, status, body.as_bytes(), true).is_ok() {
                        linger_close(writer.get_ref());
                    }
                }
                return;
            }
        };
        let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let (status, body) = route(shared, &request);
        if write_response(&mut writer, status, body.as_bytes(), close).is_err() {
            return;
        }
        if close {
            let _ = writer.flush();
            linger_close(writer.get_ref());
            return;
        }
    }
}

/// Lingering close: half-close the send side, then drain (bounded) until
/// the peer acknowledges EOF. Dropping a socket with unread request bytes
/// still queued makes the kernel send RST, which destroys the response we
/// just wrote before the peer can read it — exactly the case for a
/// rejected oversized request, where the peer is mid-send when we answer.
fn linger_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    let mut reader = stream;
    while let Ok(n) = std::io::Read::read(&mut reader, &mut sink) {
        if n == 0 || drained > (1 << 20) {
            break;
        }
        drained += n;
    }
}

fn error_kind(status: u16) -> &'static str {
    match status {
        400 | 413 | 431 | 505 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        409 => "apply_rejected",
        _ => "internal",
    }
}

/// Dispatch one parsed request to its endpoint.
fn route(shared: &Arc<Shared>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => serve_query(shared, &request.body),
        ("POST", "/apply") => serve_apply(shared, &request.body),
        ("GET", "/health") => (200, format!("{{\"status\":\"ok\",\"version\":{WIRE_VERSION}}}")),
        ("GET", "/stats") => (200, serve_stats(shared).to_json()),
        (_, "/query" | "/apply" | "/health" | "/stats") => (
            405,
            ErrorResponse::new(
                "method_not_allowed",
                format!("{} not allowed here", request.method),
            )
            .to_json(),
        ),
        (_, path) => {
            (404, ErrorResponse::new("not_found", format!("no such endpoint `{path}`")).to_json())
        }
    }
}

/// `GET /stats`: serving counters plus a live memory profile of the engine.
///
/// The memory block is read under the engine read lock, so the bytes always
/// describe the index generation queries are currently served from — a
/// concurrent `/apply` republishes both together.
fn serve_stats(shared: &Arc<Shared>) -> StatsResponse {
    let counters = &shared.counters;
    let engine = shared.engine.read();
    let profile = engine.memory_profile();
    StatsResponse {
        version: WIRE_VERSION,
        queries: counters.queries.load(Ordering::Relaxed),
        applies: counters.applies.load(Ordering::Relaxed),
        degraded: counters.degraded.load(Ordering::Relaxed),
        batches: counters.batches.load(Ordering::Relaxed),
        layout: match engine.index().layout() {
            Layout::Raw => "raw".to_owned(),
            Layout::Compressed => "compressed".to_owned(),
        },
        heap_bytes: profile.total() as u64,
        postings_bytes: profile.postings_bytes as u64,
        pool_bytes: profile.pool_bytes as u64,
        refinement_bytes: profile.refinement_bytes as u64,
        tables_bytes: profile.tables_bytes as u64,
    }
}

/// `POST /query`: admit, micro-batch, block for the answer.
fn serve_query(shared: &Arc<Shared>, body: &[u8]) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, ErrorResponse::new("bad_request", "body is not UTF-8").to_json());
    };
    let request = match QueryRequest::from_json(text) {
        Ok(request) => request,
        Err(error) => {
            return (400, ErrorResponse::new("bad_request", error.to_string()).to_json());
        }
    };
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    let (reply, answer) = mpsc::channel();
    // lint: allow(clock_confined, reason = "admission timestamp: the SLO budget counts from here and is later handed to the engine as a Deadline; this is bookkeeping for the strided clock, not a bypass of it")
    shared.batcher.enqueue(Pending { request, enqueued: Instant::now(), reply });
    // The worker owns the deadline; the handler just waits generously
    // longer than any serving path could take (window + SLO + engine
    // teardown). A missing answer means the worker died or shutdown
    // refused the enqueue: a typed 500 either way.
    let grace = shared.config.slo + shared.config.window + Duration::from_secs(30);
    match answer.recv_timeout(grace) {
        Ok(ServeOutcome::Answer(response)) => (200, response.to_json()),
        Ok(ServeOutcome::Failed) | Err(_) => {
            (500, ErrorResponse::new("internal", "serving worker failed").to_json())
        }
    }
}

/// `POST /apply`: transactional tag-event ingestion under the write lock.
fn serve_apply(shared: &Arc<Shared>, body: &[u8]) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, ErrorResponse::new("bad_request", "body is not UTF-8").to_json());
    };
    let events = match ApplyRequest::from_json(text).and_then(|request| request.to_events()) {
        Ok(events) => events,
        Err(error) => {
            return (400, ErrorResponse::new("bad_request", error.to_string()).to_json());
        }
    };
    shared.counters.applies.fetch_add(1, Ordering::Relaxed);
    let mut engine = shared.engine.write();
    match engine.try_apply_with(&shared.exec, &events) {
        Ok(report) => (
            200,
            ApplyResponse {
                version: WIRE_VERSION,
                changed_entries: report.changed_entries,
                changed_groups: report.changed_groups,
                cluster_joins: report.cluster_joins,
            }
            .to_json(),
        ),
        // The engine rolled back: site model, clustered index and
        // fallback are untouched. Surface the typed reason.
        Err(error) => (409, ErrorResponse::new("apply_rejected", error.to_string()).to_json()),
    }
}
