//! The micro-batching queue between connection handlers and the serving
//! workers: queries are grouped by *resolved keyword set* (plus `k`, since
//! one engine batch call serves one `k`) and flushed to the batch engine
//! when the oldest member has waited the configured window — or sooner,
//! when the batch hits its size cap. A zero window degenerates to
//! per-request serving through the same machinery, which is what the E13
//! sweep's baseline arm measures.
//!
//! ## Concurrency invariants (enforced by `socialscope_analysis`)
//!
//! The batcher is a **dual-lock** design, and its safety rests on three
//! invariants. They are model-checked across every thread interleaving
//! (bounded preemption) by the extracted model in
//! `socialscope_analysis::mc::batcher`, and the lock-order rule is
//! additionally linted lexically; see the README's "Failure semantics"
//! and "Static analysis & model checking" sections.
//!
//! 1. **Why two locks.** Queue *data* ([`State`]: the per-key queues and
//!    the shutdown flag) lives under a `parking_lot::Mutex`, which is
//!    poison-free — a serving worker that panics mid-batch (isolated via
//!    `catch_unwind`) must never wedge the queue for every other
//!    connection. Worker *sleeping* needs a `std::sync::Condvar`, which
//!    only pairs with a `std::sync::Mutex`; that second mutex (the
//!    `gate`) guards exactly one `u64` — the notification epoch — and
//!    nothing else.
//!
//! 2. **What the gate epoch protects.** The classic condvar lost-wakeup
//!    window: a worker evaluates state (under `state`), finds nothing
//!    ripe, releases `state`, and *then* goes to sleep on the condvar. A
//!    notify landing between the release and the sleep would be lost —
//!    this shipped as a real race in PR 8 and was caught in review.
//!    Every state change (enqueue, shutdown) bumps the epoch **under the
//!    gate** before notifying; [`Batcher::next_batch`] snapshots the
//!    epoch *before* evaluating state and re-checks it under the gate
//!    before sleeping. Either the epoch already moved (the worker loops
//!    and re-evaluates) or the notifier is still blocked on the gate
//!    until `Condvar::wait` atomically releases it — the wakeup cannot
//!    be lost. The model checker proves this without relying on the
//!    [`IDLE_WAIT_FALLBACK`] bound, and flags the pre-review-fix mutant
//!    (snapshot removed) with a lost-wakeup counterexample.
//!
//! 3. **Lock order.** The `state` mutex must **never** be held while
//!    acquiring the `gate` mutex. A worker inside `Condvar::wait` holds
//!    the gate (it is reacquired on wakeup, and held between the epoch
//!    re-check and the wait); if a notifier could block on `gate` while
//!    holding `state`, a woken worker reacquiring `state` to re-evaluate
//!    would complete the cycle and deadlock. Acquiring `state` while
//!    holding `gate` is equally forbidden to keep both critical sections
//!    leaf-level. The `lock_order` lint checks this lexically per
//!    function body; every method below takes the two locks strictly in
//!    sequence, never nested.

use crate::wire::{QueryRequest, QueryResponse};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Condvar as StdCondvar;
use std::time::{Duration, Instant};

/// The key one micro-batch forms under: the request's keywords, resolved
/// to a case-normalized sorted set, plus the requested `k`. Two spellings
/// of the same keyword set land in the same batch; the engines normalize
/// again internally, so key resolution affects batching efficiency only,
/// never results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct BatchKey {
    /// Normalized (trimmed, lowercased), sorted, deduplicated keywords.
    pub keywords: Vec<String>,
    /// The requested result count.
    pub k: usize,
}

impl BatchKey {
    pub(crate) fn resolve(request: &QueryRequest) -> Self {
        let mut keywords: Vec<String> =
            request.keywords.iter().map(|kw| kw.trim().to_lowercase()).collect();
        keywords.sort();
        keywords.dedup();
        BatchKey { keywords, k: request.k }
    }
}

/// One admitted query waiting to be served: the request, its admission
/// time (the SLO budget counts from here, queue wait included), and the
/// channel its connection handler blocks on.
pub(crate) struct Pending {
    pub request: QueryRequest,
    pub enqueued: Instant,
    pub reply: mpsc::Sender<ServeOutcome>,
}

/// What the serving worker sends back per member.
pub(crate) enum ServeOutcome {
    /// A served (possibly degraded) answer.
    Answer(Box<QueryResponse>),
    /// The serving worker panicked under this member's batch; the handler
    /// answers 500 and the worker moves on (panic isolation).
    Failed,
}

/// A batch popped by a serving worker: its key, its members, and the
/// admission time of its oldest member.
pub(crate) struct ReadyBatch {
    pub key: BatchKey,
    pub members: Vec<Pending>,
    pub oldest: Instant,
}

/// Bound on the idle wait when no queue exists to ripen. The epoch
/// protocol makes enqueue/shutdown notifications unlosable on their own
/// (model-checked — see the module docs), so this is belt-and-suspenders:
/// any future regression degrades to at most this much added latency,
/// never a wedged worker.
const IDLE_WAIT_FALLBACK: Duration = Duration::from_millis(100);

struct State {
    queues: HashMap<BatchKey, Vec<Pending>>,
    shutdown: bool,
}

/// The shared micro-batch queue. `parking_lot`'s mutex is poison-free, so
/// a panicking serving worker (isolated via `catch_unwind`) can never
/// wedge the queue for every other connection.
pub(crate) struct Batcher {
    state: Mutex<State>,
    // std's Condvar pairs with a raw mutex; the gate guards a notification
    // epoch that enqueue/shutdown bump (under the gate) on every state
    // change. A worker snapshots the epoch before evaluating state and
    // re-checks it under the gate before sleeping: a notify can therefore
    // never land between its state evaluation and its wait — either the
    // epoch already moved (the worker loops and re-evaluates) or the
    // notifier is still blocked on the gate until `Condvar::wait`
    // atomically releases it (the wakeup is delivered).
    gate: std::sync::Mutex<u64>,
    cv: StdCondvar,
    window: Duration,
    max_batch: usize,
}

impl Batcher {
    pub(crate) fn new(window: Duration, max_batch: usize) -> Self {
        Batcher {
            state: Mutex::new(State { queues: HashMap::new(), shutdown: false }),
            gate: std::sync::Mutex::new(0),
            cv: StdCondvar::new(),
            window,
            max_batch: max_batch.max(1),
        }
    }

    fn lock_gate(&self) -> std::sync::MutexGuard<'_, u64> {
        self.gate.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a state change and wake every sleeping worker.
    fn bump_and_notify(&self) {
        *self.lock_gate() += 1;
        self.cv.notify_all();
    }

    /// Admit one query; its handler then blocks on the reply channel.
    pub(crate) fn enqueue(&self, pending: Pending) {
        {
            let mut state = self.state.lock();
            if state.shutdown {
                // Refused at shutdown: dropping the sender unblocks the
                // handler, which answers 500.
                return;
            }
            let key = BatchKey::resolve(&pending.request);
            state.queues.entry(key).or_default().push(pending);
        }
        self.bump_and_notify();
    }

    /// Block until some batch is ripe (its oldest member aged past the
    /// window, or it reached the size cap), pop and return it. Returns
    /// `None` once the batcher is shut down and drained.
    pub(crate) fn next_batch(&self) -> Option<ReadyBatch> {
        loop {
            // Snapshot the notification epoch *before* evaluating state:
            // any enqueue/shutdown that lands after the evaluation bumps
            // it, and the re-check under the gate below catches that.
            let epoch = *self.lock_gate();
            let wait_for = {
                let mut state = self.state.lock();
                // lint: allow(clock_confined, reason = "window-ripeness decision: the batcher compares queue age against the flush window; per-query serving budgets still go through content's strided Deadline clock")
                let now = Instant::now();
                // The ripest queue: lowest due time (oldest + window),
                // with size-capped queues due immediately.
                let ripest = state
                    .queues
                    .iter()
                    .map(|(key, members)| {
                        // lint: allow(no_panic, reason = "true invariant: enqueue pushes >= 1 member and next_batch removes whole entries, so a mapped queue is never empty")
                        let oldest =
                            members.iter().map(|m| m.enqueued).min().expect("queues are non-empty");
                        let due = if members.len() >= self.max_batch || state.shutdown {
                            now
                        } else {
                            oldest + self.window
                        };
                        (due, key.clone())
                    })
                    .min_by(|(a, _), (b, _)| a.cmp(b));
                match ripest {
                    Some((due, key)) if due <= now => {
                        // lint: allow(no_panic, reason = "true invariant: the key was observed in the map in this same critical section, and `state` is still held")
                        let members = state.queues.remove(&key).expect("key just observed");
                        // lint: allow(no_panic, reason = "true invariant: the removed queue is the one observed non-empty above")
                        let oldest =
                            members.iter().map(|m| m.enqueued).min().expect("non-empty batch");
                        return Some(ReadyBatch { key, members, oldest });
                    }
                    Some((due, _)) => Some(due - now),
                    None if state.shutdown => return None,
                    None => None,
                }
            };
            // Nothing ripe: sleep until the earliest due time (or an
            // enqueue/shutdown notification), then re-evaluate — unless
            // the epoch moved since the evaluation, meaning a notify
            // already fired that we would otherwise miss.
            let guard = self.lock_gate();
            if *guard != epoch {
                continue;
            }
            match wait_for {
                Some(timeout) => drop(self.cv.wait_timeout(guard, timeout)),
                // No queue to ripen: only a notification creates work, and
                // the epoch check above makes it unlosable (model-checked
                // without this bound — see the module docs).
                None => drop(self.cv.wait_timeout(guard, IDLE_WAIT_FALLBACK)),
            }
        }
    }

    /// Stop admitting work and wake every worker; queued members are still
    /// flushed (as immediately-due batches) before workers see `None`.
    pub(crate) fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.bump_and_notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::NodeId;
    use std::sync::Arc;

    fn request(seeker: u64, keywords: &[&str], k: usize) -> QueryRequest {
        QueryRequest::new(NodeId(seeker), keywords.iter().map(|s| s.to_string()).collect(), k)
    }

    #[test]
    fn keys_resolve_keyword_spelling_and_order() {
        let a = BatchKey::resolve(&request(1, &["Baseball", " museum ", "baseball"], 5));
        let b = BatchKey::resolve(&request(2, &["museum", "BASEBALL"], 5));
        assert_eq!(a, b);
        assert_eq!(a.keywords, vec!["baseball".to_string(), "museum".to_string()]);
        // k splits the batch: one engine call serves one k.
        let c = BatchKey::resolve(&request(2, &["museum", "baseball"], 6));
        assert_ne!(a, c);
    }

    #[test]
    fn batches_group_by_key_and_flush_by_window() {
        let batcher = Batcher::new(Duration::from_millis(5), 64);
        let (tx, _rx) = mpsc::channel();
        for seeker in 0..3 {
            batcher.enqueue(Pending {
                request: request(seeker, &["a"], 3),
                enqueued: Instant::now(),
                reply: tx.clone(),
            });
        }
        batcher.enqueue(Pending {
            request: request(9, &["b"], 3),
            enqueued: Instant::now(),
            reply: tx.clone(),
        });
        let first = batcher.next_batch().expect("a batch ripens");
        let second = batcher.next_batch().expect("the other key ripens");
        let mut sizes = [first.members.len(), second.members.len()];
        sizes.sort();
        assert_eq!(sizes, [1, 3]);
        assert_ne!(first.key, second.key);
    }

    #[test]
    fn size_cap_flushes_before_the_window() {
        let batcher = Batcher::new(Duration::from_secs(3600), 2);
        let (tx, _rx) = mpsc::channel();
        let start = Instant::now();
        for seeker in 0..2 {
            batcher.enqueue(Pending {
                request: request(seeker, &["a"], 3),
                enqueued: Instant::now(),
                reply: tx.clone(),
            });
        }
        let batch = batcher.next_batch().expect("cap-triggered flush");
        assert_eq!(batch.members.len(), 2);
        assert!(start.elapsed() < Duration::from_secs(60), "did not wait for the hour window");
    }

    #[test]
    fn enqueue_wakes_a_worker_idling_on_empty_queues() {
        let batcher = Arc::new(Batcher::new(Duration::from_millis(1), 64));
        let worker = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || batcher.next_batch())
        };
        // Let the worker reach its idle wait on empty queues first; the
        // enqueue notification (not the bounded fallback wait) must wake
        // it and ripen the batch promptly.
        std::thread::sleep(Duration::from_millis(20));
        let (tx, _rx) = mpsc::channel();
        batcher.enqueue(Pending {
            request: request(1, &["a"], 3),
            enqueued: Instant::now(),
            reply: tx,
        });
        let batch = worker.join().unwrap().expect("woken by enqueue");
        assert_eq!(batch.members.len(), 1);
    }

    #[test]
    fn shutdown_drains_queues_then_yields_none() {
        let batcher = Arc::new(Batcher::new(Duration::from_secs(3600), 64));
        let (tx, _rx) = mpsc::channel();
        batcher.enqueue(Pending {
            request: request(1, &["a"], 3),
            enqueued: Instant::now(),
            reply: tx,
        });
        batcher.shutdown();
        assert_eq!(batcher.next_batch().expect("drain flush").members.len(), 1);
        assert!(batcher.next_batch().is_none());
        // Post-shutdown enqueues are refused (sender dropped → handler 500s).
        let (tx, rx) = mpsc::channel();
        batcher.enqueue(Pending {
            request: request(2, &["a"], 3),
            enqueued: Instant::now(),
            reply: tx,
        });
        assert!(rx.recv().is_err(), "refused enqueue must drop the reply sender");
    }
}
