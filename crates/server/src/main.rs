//! The `socialscope_server` binary: generate a deterministic synthetic
//! site at the requested scale, build the clustered engine with an exact
//! fallback, and serve it over HTTP until killed.

use socialscope_content::cluster::NetworkBasedClustering;
use socialscope_discovery::ClusteredNetworkAwareSearch;
use socialscope_exec::Exec;
use socialscope_server::{spawn, ServerConfig};
use socialscope_workload::{generate_site, SiteConfig};
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: socialscope_server [options]

options:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --scale USERS      synthetic site size in users (default 200)
  --window-us MICROS micro-batching window (default 2000; 0 = per-request)
  --slo-ms MILLIS    per-request latency budget, queue wait included (default 50)
  --max-batch N      flush a batch early at N members (default 128)
  --workers N        serving worker threads (default 2)
  --threads N        engine Exec threads (default 0 = auto)
  --k-max N          largest honored k per query (default 100)
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_num(flag: &str, value: Option<String>) -> u64 {
    let Some(value) = value else { fail(&format!("{flag} needs a value")) };
    match value.parse() {
        Ok(parsed) => parsed,
        Err(_) => fail(&format!("{flag} needs an unsigned integer, got `{value}`")),
    }
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut scale = 200usize;
    let mut window_us = 2_000u64;
    let mut slo_ms = 50u64;
    let mut max_batch = 128usize;
    let mut workers = 2usize;
    let mut threads = 0usize;
    let mut k_max = 100usize;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(value) if !value.trim().is_empty() => addr = value,
                _ => fail("--addr needs a non-empty HOST:PORT value"),
            },
            "--scale" => scale = parse_num("--scale", it.next()) as usize,
            "--window-us" => window_us = parse_num("--window-us", it.next()),
            "--slo-ms" => slo_ms = parse_num("--slo-ms", it.next()),
            "--max-batch" => max_batch = parse_num("--max-batch", it.next()) as usize,
            "--workers" => workers = parse_num("--workers", it.next()) as usize,
            "--threads" => threads = parse_num("--threads", it.next()) as usize,
            "--k-max" => k_max = parse_num("--k-max", it.next()) as usize,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if scale == 0 {
        fail("--scale must be at least 1");
    }
    if max_batch == 0 {
        fail("--max-batch must be at least 1");
    }
    if workers == 0 {
        fail("--workers must be at least 1");
    }
    if k_max == 0 {
        fail("--k-max must be at least 1");
    }
    if slo_ms == 0 {
        fail("--slo-ms must be at least 1 (a zero budget degrades every query)");
    }

    let exec = if threads == 0 {
        Exec::auto()
    } else {
        match Exec::new(threads) {
            Ok(exec) => exec,
            Err(error) => fail(&format!("--threads {threads} rejected: {error}")),
        }
    };

    eprintln!("generating synthetic site at scale {scale} users...");
    let site = generate_site(&SiteConfig {
        users: scale,
        items: scale * 2,
        cities: 10,
        avg_friends: 8,
        tags_per_user: 8,
        visits_per_user: 10,
        ..SiteConfig::default()
    });
    eprintln!("building clustered engine (+ exact fallback for unclustered seekers)...");
    let engine =
        ClusteredNetworkAwareSearch::build_with(&exec, &site.graph, &NetworkBasedClustering, 0.3)
            .with_exact_fallback();

    let config = ServerConfig {
        addr,
        window: Duration::from_micros(window_us),
        slo: Duration::from_millis(slo_ms),
        max_batch,
        workers,
        k_max,
        ..ServerConfig::default()
    };
    let handle = match spawn(config, engine, exec) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("error: could not bind server: {error}");
            exit(1);
        }
    };
    // The line load generators and CI wait for before opening connections.
    println!("listening on {}", handle.addr());

    // Serve until the process is killed; the accept loop owns the work.
    loop {
        std::thread::park();
    }
}
