//! Fault injection against a live server (compiled only with the
//! `failpoints` cargo feature): an injected fault inside a transactional
//! apply must surface as the typed `409 apply_rejected` with the engine
//! rolled back — provably, because post-fault queries answer exactly like
//! pre-fault ones — and an injected deadline expiry inside the content
//! layer must travel the whole serving stack as the in-band degraded
//! HTTP 200, not as an error or a hang.

#![cfg(feature = "failpoints")]

mod common;

use common::{boot, post, Fixture};
use socialscope_content::{faults, TagEvent};
use socialscope_exec::failpoints::{FailAction, FailScenario};
use socialscope_graph::NodeId;
use socialscope_server::wire::{ApplyRequest, ErrorResponse, QueryRequest, QueryResponse};
use socialscope_server::ServerConfig;

/// Ask the live server for every user's ranking (one probe vector to
/// compare across fault states).
fn served_rankings(fixture: &Fixture, keywords: &[String]) -> Vec<Vec<(NodeId, f64)>> {
    fixture
        .users
        .iter()
        .map(|&seeker| {
            let request = QueryRequest::new(seeker, keywords.to_vec(), 3);
            let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
            assert_eq!(status, 200, "{body}");
            let response = QueryResponse::from_json(&body).unwrap();
            assert!(!response.degraded, "probe queries must not be degraded");
            response.results.iter().map(|r| (r.item, r.score)).collect()
        })
        .collect()
}

#[test]
fn an_injected_apply_fault_answers_409_and_rolls_back() {
    let scenario = FailScenario::setup();
    let mut fixture = boot(ServerConfig::default());
    let keywords = vec!["baseball".to_string(), "museum".to_string(), "newtag".to_string()];
    let events = vec![
        TagEvent::assign(fixture.users[0], fixture.items[2], "newtag"),
        TagEvent::retract(fixture.users[1], fixture.items[1], "museum"),
    ];
    let before = served_rankings(&fixture, &keywords);

    scenario.arm(faults::SITE_APPLY, FailAction::Fault { after: 0 });
    let (status, body) =
        post(fixture.server.addr(), "/apply", &ApplyRequest::new(&events).to_json());
    assert_eq!(status, 409, "an injected apply fault must answer 409: {body}");
    let error = ErrorResponse::from_json(&body).unwrap();
    assert_eq!(error.error, "apply_rejected");
    assert!(error.detail.contains("injected fault"), "{}", error.detail);

    // The transaction rolled back: the live engine answers exactly as it
    // did before the rejected apply.
    assert_eq!(served_rankings(&fixture, &keywords), before, "a rejected apply left a tear");

    // Disarmed, the identical request succeeds and its effect is visible.
    scenario.disarm(faults::SITE_APPLY);
    let (status, body) =
        post(fixture.server.addr(), "/apply", &ApplyRequest::new(&events).to_json());
    assert_eq!(status, 200, "{body}");
    let exec = fixture.exec;
    fixture.shadow.try_apply_with(&exec, &events).expect("shadow apply");
    let after = served_rankings(&fixture, &keywords);
    assert_ne!(after, before, "the retried apply must change the rankings");
    for (&seeker, served) in fixture.users.iter().zip(&after) {
        let want: Vec<(NodeId, f64)> = fixture
            .shadow
            .query(seeker, &keywords, 3)
            .result
            .ranked
            .into_iter()
            .filter(|(_, score)| *score > 0.0)
            .collect();
        assert_eq!(*served, want, "post-retry ranking for {seeker:?} diverged");
    }
}

#[test]
fn an_injected_deadline_expiry_degrades_in_band() {
    let scenario = FailScenario::setup();
    let fixture = boot(ServerConfig::default());
    let keywords = vec!["baseball".to_string()];
    let request = QueryRequest::new(fixture.users[0], keywords, 3);

    // Healthy first: a real answer, not degraded.
    let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
    assert_eq!(status, 200);
    let healthy = QueryResponse::from_json(&body).unwrap();
    assert!(!healthy.degraded);
    assert!(!healthy.results.is_empty());

    // Expiry forced at the engine's first cooperative deadline check: the
    // wire still says 200, with the degraded marker and the defined empty
    // partial result.
    scenario.arm(faults::DEADLINE, FailAction::Fault { after: 0 });
    let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
    assert_eq!(status, 200, "degradation must stay in-band: {body}");
    let degraded = QueryResponse::from_json(&body).unwrap();
    assert!(degraded.degraded, "forced expiry must set the marker");
    assert!(degraded.results.is_empty(), "the degraded partial result is the empty ranking");

    // Disarmed, the same server heals with no restart.
    scenario.disarm(faults::DEADLINE);
    let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
    assert_eq!(status, 200);
    let healed = QueryResponse::from_json(&body).unwrap();
    assert!(!healed.degraded);
    assert_eq!(healed.results, healthy.results);
}
