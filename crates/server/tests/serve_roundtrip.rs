//! End-to-end serving tests over real sockets: a booted server must give
//! byte-identical answers to direct engine calls (micro-batching is a
//! scheduling choice, never a semantic one), applies must round-trip the
//! engine's transactional report and become visible to later queries, and
//! every malformed or mis-routed request must come back as the typed
//! error the wire schema promises — degraded answers included, in-band.

mod common;

use common::{boot, post, read_one_response, request, Fixture};
use socialscope_content::TagEvent;
use socialscope_graph::NodeId;
use socialscope_server::wire::{
    ApplyRequest, ApplyResponse, ErrorResponse, QueryRequest, QueryResponse, StatsResponse,
    WIRE_VERSION,
};
use socialscope_server::ServerConfig;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// The positive-score ranking the server is expected to serve for one
/// seeker, straight from the shadow engine.
fn shadow_ranking(
    fixture: &Fixture,
    seeker: NodeId,
    keywords: &[String],
    k: usize,
) -> Vec<(NodeId, f64)> {
    fixture
        .shadow
        .query(seeker, keywords, k)
        .result
        .ranked
        .into_iter()
        .filter(|(_, score)| *score > 0.0)
        .collect()
}

#[test]
fn queries_round_trip_identically_to_the_engine() {
    let fixture = boot(ServerConfig::default());
    let keywords = vec!["baseball".to_string(), "museum".to_string()];
    let mut seekers = fixture.users.clone();
    seekers.push(NodeId(u64::MAX)); // a seeker no layer has ever seen
    for &seeker in &seekers {
        let request = QueryRequest::new(seeker, keywords.clone(), 3);
        let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
        assert_eq!(status, 200, "query for {seeker:?} failed: {body}");
        let response = QueryResponse::from_json(&body).expect("valid response document");
        assert_eq!(response.version, WIRE_VERSION);
        assert_eq!(response.seeker, seeker);
        assert!(!response.degraded);
        assert!(response.batch_size >= 1);

        let report = fixture.shadow.query(seeker, &keywords, 3);
        assert_eq!(response.unclustered, report.unclustered);
        let served: Vec<(NodeId, f64)> =
            response.results.iter().map(|r| (r.item, r.score)).collect();
        assert_eq!(
            served,
            shadow_ranking(&fixture, seeker, &keywords, 3),
            "wire ranking for {seeker:?} diverged from the engine"
        );
    }
}

#[test]
fn applies_round_trip_the_report_and_become_visible() {
    let mut fixture = boot(ServerConfig::default());
    let keywords = vec!["baseball".to_string(), "newtag".to_string()];
    let events = vec![
        TagEvent::assign(fixture.users[0], fixture.items[2], "newtag"),
        TagEvent::assign(fixture.users[3], fixture.items[0], "museum"),
    ];

    let (status, body) =
        post(fixture.server.addr(), "/apply", &ApplyRequest::new(&events).to_json());
    assert_eq!(status, 200, "apply failed: {body}");
    let response = ApplyResponse::from_json(&body).expect("valid apply report");

    let exec = fixture.exec;
    let report = fixture.shadow.try_apply_with(&exec, &events).expect("shadow apply");
    assert_eq!(response.version, WIRE_VERSION);
    assert_eq!(response.changed_entries, report.changed_entries);
    assert_eq!(response.changed_groups, report.changed_groups);
    assert_eq!(response.cluster_joins, report.cluster_joins);

    // Every query admitted after the apply sees the new tags.
    for &seeker in &fixture.users {
        let request = QueryRequest::new(seeker, keywords.clone(), 3);
        let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
        assert_eq!(status, 200);
        let response = QueryResponse::from_json(&body).unwrap();
        let served: Vec<(NodeId, f64)> =
            response.results.iter().map(|r| (r.item, r.score)).collect();
        assert_eq!(served, shadow_ranking(&fixture, seeker, &keywords, 3));
    }
}

#[test]
fn unknown_routes_and_methods_answer_typed_errors() {
    let fixture = boot(ServerConfig::default());
    let addr = fixture.server.addr();

    let (status, body) = request(addr, "GET", "/nope");
    assert_eq!(status, 404);
    assert_eq!(ErrorResponse::from_json(&body).unwrap().error, "not_found");

    for (method, path) in
        [("GET", "/query"), ("GET", "/apply"), ("POST", "/health"), ("DELETE", "/stats")]
    {
        let (status, body) = request(addr, method, path);
        assert_eq!(status, 405, "{method} {path}");
        assert_eq!(ErrorResponse::from_json(&body).unwrap().error, "method_not_allowed");
    }
}

#[test]
fn malformed_and_mismatched_bodies_answer_400() {
    let fixture = boot(ServerConfig::default());
    let addr = fixture.server.addr();
    let cases = [
        ("/query", "not json at all"),
        ("/query", "{\"version\":1,\"seeker\":\"x\",\"keywords\":[],\"k\":1}"),
        // A future schema version must be rejected, not guessed at.
        ("/query", "{\"version\":2,\"seeker\":1,\"keywords\":[\"a\"],\"k\":1}"),
        ("/apply", "{\"version\":1,\"events\":[{\"op\":\"obliterate\",\"tagger\":1,\"item\":2,\"tag\":\"t\"}]}"),
        ("/apply", "{\"version\":99,\"events\":[]}"),
    ];
    for (path, body) in cases {
        let (status, body) = post(addr, path, body);
        assert_eq!(status, 400, "POST {path} accepted: {body}");
        assert_eq!(ErrorResponse::from_json(&body).unwrap().error, "bad_request");
    }
    // The version-mismatch detail names both versions so mismatched
    // deployments are diagnosable from the error alone.
    let (_, body) = post(addr, "/query", "{\"version\":2,\"seeker\":1,\"keywords\":[],\"k\":1}");
    let detail = ErrorResponse::from_json(&body).unwrap().detail;
    assert!(detail.contains("unsupported wire version 2"), "{detail}");
}

#[test]
fn a_blown_slo_degrades_in_band_as_http_200() {
    // An SLO of zero leaves no budget by the time any batch flushes: every
    // answer is the engine's defined degraded partial result.
    let config = ServerConfig {
        slo: Duration::ZERO,
        window: Duration::from_millis(1),
        ..Default::default()
    };
    let fixture = boot(config);
    let query = QueryRequest::new(fixture.users[0], vec!["baseball".to_string()], 3);
    let (status, body) = post(fixture.server.addr(), "/query", &query.to_json());
    assert_eq!(status, 200, "degradation must not change the status: {body}");
    let response = QueryResponse::from_json(&body).unwrap();
    assert!(response.degraded, "zero budget must set the degraded marker");
    assert!(response.results.is_empty(), "the degraded partial result is the empty ranking");

    // The degradation is visible in the counters too.
    let (status, body) = request(fixture.server.addr(), "GET", "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"degraded\":1"), "stats must count the degraded answer: {body}");
}

#[test]
fn health_and_stats_expose_the_serving_state() {
    let fixture = boot(ServerConfig::default());
    let addr = fixture.server.addr();

    let (status, body) = request(addr, "GET", "/health");
    assert_eq!(status, 200);
    assert_eq!(body, format!("{{\"status\":\"ok\",\"version\":{WIRE_VERSION}}}"));

    let query = QueryRequest::new(fixture.users[0], vec!["baseball".to_string()], 2);
    for _ in 0..3 {
        let (status, _) = post(addr, "/query", &query.to_json());
        assert_eq!(status, 200);
    }
    let events = vec![TagEvent::assign(fixture.users[0], fixture.items[0], "stats")];
    let (status, _) = post(addr, "/apply", &ApplyRequest::new(&events).to_json());
    assert_eq!(status, 200);

    let (status, body) = request(addr, "GET", "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"queries\":3"), "{body}");
    assert!(body.contains("\"applies\":1"), "{body}");
    assert!(body.contains("\"batches\":"), "{body}");

    // The body is a well-formed StatsResponse carrying a live memory
    // profile: the layout names a real variant and the component bytes sum
    // to the heap total (a loaded engine is never zero-sized).
    let stats = StatsResponse::from_json(&body).unwrap();
    assert_eq!(stats.version, WIRE_VERSION);
    assert_eq!(stats.queries, 3);
    assert_eq!(stats.applies, 1);
    assert!(stats.layout == "raw" || stats.layout == "compressed", "{}", stats.layout);
    assert!(stats.heap_bytes > 0, "a built engine owns heap");
    assert_eq!(
        stats.heap_bytes,
        stats.postings_bytes + stats.pool_bytes + stats.refinement_bytes + stats.tables_bytes,
        "components must sum to the total: {body}"
    );
}

#[test]
fn keep_alive_connections_serve_many_requests() {
    let fixture = boot(ServerConfig::default());
    let mut stream = TcpStream::connect(fixture.server.addr()).unwrap();
    let mut leftover = Vec::new();
    let query = QueryRequest::new(fixture.users[0], vec!["baseball".to_string()], 3);
    let expected = shadow_ranking(&fixture, fixture.users[0], &query.keywords, 3);

    // Three requests on one connection, no Connection: close.
    for _ in 0..3 {
        let body = query.to_json();
        let head = format!(
            "POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        let (status, body) = read_one_response(&mut stream, &mut leftover);
        assert_eq!(status, 200);
        let response = QueryResponse::from_json(&body).unwrap();
        let served: Vec<(NodeId, f64)> =
            response.results.iter().map(|r| (r.item, r.score)).collect();
        assert_eq!(served, expected);
    }

    // The fourth asks to close; the server answers, then hangs up.
    stream.write_all(b"GET /health HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let (status, _) = read_one_response(&mut stream, &mut leftover);
    assert_eq!(status, 200);
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut rest).unwrap();
    assert!(rest.is_empty(), "nothing follows a Connection: close response");
}

#[test]
fn oversized_k_is_clamped_not_amplified() {
    // A hostile k must not make the engine rank the whole site: the server
    // clamps to k_max and serves that.
    let config = ServerConfig { k_max: 1, ..Default::default() };
    let fixture = boot(config);
    let keywords = vec!["baseball".to_string(), "museum".to_string()];
    let request = QueryRequest::new(fixture.users[0], keywords.clone(), 1_000_000);
    let (status, body) = post(fixture.server.addr(), "/query", &request.to_json());
    assert_eq!(status, 200);
    let response = QueryResponse::from_json(&body).unwrap();
    assert_eq!(
        response.results.iter().map(|r| (r.item, r.score)).collect::<Vec<_>>(),
        shadow_ranking(&fixture, fixture.users[0], &keywords, 1)
    );
}
