//! Shared fixtures for the server integration tests: a deterministic
//! little travel site, a server boot helper, and a deliberately naive
//! HTTP client (fresh connection per call, `Connection: close`) so the
//! tests exercise the server exactly the way an arbitrary peer would —
//! not through the server's own parsing code.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use socialscope_discovery::ClusteredNetworkAwareSearch;
use socialscope_exec::Exec;
use socialscope_graph::{GraphBuilder, NodeId, SocialGraph};
use socialscope_server::{spawn, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Two friends tag different items; a stranger tags a third. Returns the
/// graph plus the user and item ids in creation order.
pub fn site() -> (SocialGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let users: Vec<NodeId> = (0..4).map(|i| b.add_user(&format!("u{i}"))).collect();
    let items: Vec<NodeId> =
        (0..3).map(|i| b.add_item(&format!("i{i}"), &["destination"])).collect();
    b.befriend(users[0], users[1]);
    b.befriend(users[0], users[2]);
    b.tag(users[1], items[0], &["baseball"]);
    b.tag(users[2], items[0], &["baseball"]);
    b.tag(users[1], items[1], &["museum"]);
    b.tag(users[3], items[2], &["baseball", "museum"]);
    (b.build(), users, items)
}

/// A server over the fixture site plus a shadow clone of the exact same
/// engine, so tests can compare wire answers against direct engine calls.
pub struct Fixture {
    pub server: ServerHandle,
    pub shadow: ClusteredNetworkAwareSearch,
    pub exec: Exec,
    pub users: Vec<NodeId>,
    pub items: Vec<NodeId>,
}

/// Boot a server with the given config over the fixture site.
pub fn boot(config: ServerConfig) -> Fixture {
    let (graph, users, items) = site();
    let exec = Exec::new(2).expect("two worker threads");
    let engine = ClusteredNetworkAwareSearch::build_default(&graph).with_exact_fallback();
    let shadow = engine.clone();
    let server = spawn(config, engine, exec).expect("server boots");
    Fixture { server, shadow, exec, users, items }
}

/// Send raw bytes on a fresh connection, half-close, and read everything
/// the server answers before it hangs up.
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    out
}

/// Split one HTTP response into `(status, body)`.
pub fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, body)| body.to_string()).unwrap_or_default();
    (status, body)
}

/// One-shot POST with `Connection: close`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    parse_response(&send_raw(addr, request.as_bytes()))
}

/// One-shot request with an arbitrary method and no body.
pub fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let request = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    parse_response(&send_raw(addr, request.as_bytes()))
}

/// Read exactly one keep-alive response off an open stream (status line,
/// headers for `Content-Length`, then the body); `buf` carries leftover
/// bytes between calls.
pub fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().unwrap())
        })
        .expect("Content-Length header");
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    buf.drain(..body_start + content_length);
    (status, body)
}
