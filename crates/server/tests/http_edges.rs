//! Socket-level robustness: a live server fed trickled bytes, oversized
//! heads and bodies, malformed framing, wrong HTTP versions, and peers
//! that vanish mid-request must answer with the right 4xx/5xx (or close
//! silently where no answer is possible) — and keep serving everyone
//! else. The unit tests in `socialscope_server::http` prove the parser;
//! these prove the wiring of that parser into live connections.

mod common;

use common::{boot, parse_response, request, send_raw};
use socialscope_server::ServerConfig;
use std::io::{Read, Write};
use std::net::TcpStream;

/// After any abuse, the server must still answer a clean health check.
fn assert_still_serving(fixture: &common::Fixture) {
    let (status, body) = request(fixture.server.addr(), "GET", "/health");
    assert_eq!(status, 200, "server stopped serving: {body}");
}

#[test]
fn trickled_requests_are_assembled_and_served() {
    let fixture = boot(ServerConfig::default());
    let raw = b"GET /health HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n";
    let mut stream = TcpStream::connect(fixture.server.addr()).unwrap();
    // One byte per write: the harshest fragmentation a peer can produce.
    for byte in raw {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let (status, body) = parse_response(&out);
    assert_eq!(status, 200, "{body}");
}

#[test]
fn oversized_heads_answer_431_and_close() {
    let fixture = boot(ServerConfig::default());
    let raw = format!("GET /health HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(64 * 1024));
    let (status, body) = parse_response(&send_raw(fixture.server.addr(), raw.as_bytes()));
    assert_eq!(status, 431);
    assert!(body.contains("bad_request"), "{body}");
    assert_still_serving(&fixture);
}

#[test]
fn oversized_bodies_answer_413_before_reading_them() {
    let fixture = boot(ServerConfig::default());
    // Declare a huge body but never send it: the cap must fire on the
    // declaration alone.
    let raw = b"POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: 999999999\r\n\r\n";
    let (status, body) = parse_response(&send_raw(fixture.server.addr(), raw));
    assert_eq!(status, 413);
    assert!(body.contains("bad_request"), "{body}");
    assert_still_serving(&fixture);
}

#[test]
fn malformed_framing_answers_400_and_closes() {
    let fixture = boot(ServerConfig::default());
    let cases: &[&[u8]] = &[
        b"NOT-A-REQUEST\r\n\r\n",
        b"GET nopath HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
        b"POST /query HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
        b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ];
    for raw in cases {
        let (status, body) = parse_response(&send_raw(fixture.server.addr(), raw));
        assert_eq!(status, 400, "for {:?}: {body}", String::from_utf8_lossy(raw));
        assert!(body.contains("bad_request"), "{body}");
    }
    assert_still_serving(&fixture);
}

#[test]
fn unsupported_http_versions_answer_505() {
    let fixture = boot(ServerConfig::default());
    let raw = b"GET /health HTTP/2\r\nHost: test\r\n\r\n";
    let (status, body) = parse_response(&send_raw(fixture.server.addr(), raw));
    assert_eq!(status, 505);
    assert!(body.contains("bad_request"), "{body}");
    assert_still_serving(&fixture);
}

#[test]
fn a_peer_vanishing_mid_request_is_a_silent_close() {
    let fixture = boot(ServerConfig::default());
    // Mid-head: the terminator never arrives.
    let out = send_raw(fixture.server.addr(), b"POST /query HTTP/1.1\r\nContent-Le");
    assert!(out.is_empty(), "truncation gets no response: {:?}", String::from_utf8_lossy(&out));
    // Mid-body: the declared length never arrives.
    let out = send_raw(
        fixture.server.addr(),
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\n{\"ver",
    );
    assert!(out.is_empty(), "truncation gets no response: {:?}", String::from_utf8_lossy(&out));
    assert_still_serving(&fixture);
}

#[test]
fn abuse_on_one_connection_never_blocks_another() {
    let fixture = boot(ServerConfig::default());
    // Park a connection that sent half a request and holds it open …
    let mut parked = TcpStream::connect(fixture.server.addr()).unwrap();
    parked.write_all(b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 999\r\n\r\n").unwrap();
    // … while other clients come and go freely.
    for _ in 0..3 {
        assert_still_serving(&fixture);
    }
    drop(parked);
}

#[test]
fn tight_custom_limits_are_honored() {
    let mut config = ServerConfig::default();
    config.limits.max_head_bytes = 256;
    config.limits.max_body_bytes = 64;
    let fixture = boot(config);
    let raw = format!("GET /health HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(512));
    let (status, _) = parse_response(&send_raw(fixture.server.addr(), raw.as_bytes()));
    assert_eq!(status, 431);
    let raw = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n{}",
        "x".repeat(100)
    );
    let (status, _) = parse_response(&send_raw(fixture.server.addr(), raw.as_bytes()));
    assert_eq!(status, 413);
    // A request inside both caps still flows.
    assert_still_serving(&fixture);
}
