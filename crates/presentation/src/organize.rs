//! Group meaningfulness, group selection, hierarchical exploration and
//! ranking (paper §7.1): the Information Organizer and Result Selector.

use crate::grouping::{group_items, GroupingStrategy, ItemGroup};
use serde::{Deserialize, Serialize};
use socialscope_discovery::MeaningfulSocialGraph;
use socialscope_graph::SocialGraph;

/// The meaningfulness criteria of §7.1 for one grouping: number of groups,
/// average group quality (relevance of members) and group sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupMeaningfulness {
    /// Number of groups produced.
    pub group_count: usize,
    /// Average over groups of the mean member relevance.
    pub avg_quality: f64,
    /// Average group size.
    pub avg_size: f64,
    /// Combined meaningfulness score (higher is better).
    pub score: f64,
}

/// A fully organized result presentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Presentation {
    /// The strategy used.
    pub strategy: GroupingStrategy,
    /// The selected groups (at most `max_groups`), each internally ranked.
    pub groups: Vec<ItemGroup>,
    /// The meaningfulness assessment of the full grouping.
    pub meaningfulness: GroupMeaningfulness,
}

/// The Information Organizer: turns a Meaningful Social Graph into grouped,
/// ranked presentations and decides which grouping is most meaningful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InformationOrganizer {
    /// Maximum number of groups that fit the screen.
    pub max_groups: usize,
    /// Social-grouping threshold θ.
    pub social_theta: f64,
}

impl Default for InformationOrganizer {
    fn default() -> Self {
        InformationOrganizer { max_groups: 5, social_theta: 0.5 }
    }
}

impl InformationOrganizer {
    /// Assess the meaningfulness of a grouping against the result relevance.
    pub fn assess(&self, msg: &MeaningfulSocialGraph, groups: &[ItemGroup]) -> GroupMeaningfulness {
        let group_count = groups.len();
        if group_count == 0 {
            return GroupMeaningfulness {
                group_count: 0,
                avg_quality: 0.0,
                avg_size: 0.0,
                score: 0.0,
            };
        }
        let mut qualities = Vec::new();
        let mut sizes = Vec::new();
        for g in groups {
            let scores: Vec<f64> = g.items.iter().filter_map(|i| msg.score_of(*i)).collect();
            let quality = if scores.is_empty() {
                0.0
            } else {
                scores.iter().sum::<f64>() / scores.len() as f64
            };
            qualities.push(quality);
            sizes.push(g.items.len() as f64);
        }
        let avg_quality = qualities.iter().sum::<f64>() / group_count as f64;
        let avg_size = sizes.iter().sum::<f64>() / group_count as f64;
        // Penalize groupings that exceed the screen budget; reward quality
        // and reasonably sized groups.
        let overflow_penalty = if group_count > self.max_groups {
            self.max_groups as f64 / group_count as f64
        } else {
            1.0
        };
        let score = avg_quality * avg_size.sqrt() * overflow_penalty;
        GroupMeaningfulness { group_count, avg_quality, avg_size, score }
    }

    /// Organize a result under one strategy: group, rank members within each
    /// group by relevance, rank groups by quality, and keep the groups that
    /// fit the screen.
    pub fn organize(
        &self,
        graph: &SocialGraph,
        msg: &MeaningfulSocialGraph,
        strategy: GroupingStrategy,
    ) -> Presentation {
        let items = msg.item_ids();
        let mut groups = group_items(graph, &items, &strategy);
        for g in &mut groups {
            g.items.sort_by(|a, b| {
                msg.score_of(*b)
                    .unwrap_or(0.0)
                    .total_cmp(&msg.score_of(*a).unwrap_or(0.0))
                    .then(a.cmp(b))
            });
        }
        let meaningfulness = self.assess(msg, &groups);
        groups.sort_by(|a, b| {
            let qa = group_quality(msg, a);
            let qb = group_quality(msg, b);
            qb.total_cmp(&qa).then(a.label.cmp(&b.label))
        });
        groups.truncate(self.max_groups);
        Presentation { strategy, groups, meaningfulness }
    }

    /// Organize under every standard strategy and return the presentations
    /// ordered by meaningfulness (most meaningful first) — the decision "which
    /// group is more relevant to the user" the paper assigns to the
    /// Information Organizer.
    pub fn best_presentation(
        &self,
        graph: &SocialGraph,
        msg: &MeaningfulSocialGraph,
        facet_attribute: &str,
    ) -> Vec<Presentation> {
        let mut all = vec![
            self.organize(graph, msg, GroupingStrategy::Social { theta: self.social_theta }),
            self.organize(graph, msg, GroupingStrategy::Topical),
            self.organize(
                graph,
                msg,
                GroupingStrategy::Structural { attribute: facet_attribute.to_string() },
            ),
        ];
        all.sort_by(|a, b| b.meaningfulness.score.total_cmp(&a.meaningfulness.score));
        all
    }

    /// Hierarchical zoom-in (paper §7.1): split one group into sub-groups by
    /// a secondary strategy, so a user can explore a group that interests
    /// them without widening the screen budget.
    pub fn zoom_in(
        &self,
        graph: &SocialGraph,
        group: &ItemGroup,
        strategy: &GroupingStrategy,
    ) -> Vec<ItemGroup> {
        group_items(graph, &group.items, strategy).into_iter().filter(|g| !g.is_empty()).collect()
    }
}

fn group_quality(msg: &MeaningfulSocialGraph, group: &ItemGroup) -> f64 {
    let scores: Vec<f64> = group.items.iter().filter_map(|i| msg.score_of(*i)).collect();
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_discovery::{InformationDiscoverer, UserQuery};
    use socialscope_graph::{GraphBuilder, NodeId};

    /// Alexia's exploratory "American history" query.
    fn alexia_site() -> (SocialGraph, NodeId) {
        let mut b = GraphBuilder::new();
        let alexia = b.add_user("Alexia");
        let classmates: Vec<_> = (0..3).map(|i| b.add_user(&format!("class{i}"))).collect();
        let team: Vec<_> = (0..2).map(|i| b.add_user(&format!("team{i}"))).collect();
        for &c in &classmates {
            b.befriend(alexia, c);
        }
        for &t in &team {
            b.befriend(alexia, t);
        }
        let gettysburg = b.add_item_with_keywords(
            "Gettysburg",
            &["destination"],
            &["american", "history", "war"],
        );
        let liberty = b.add_item_with_keywords(
            "Liberty Bell",
            &["destination"],
            &["american", "history", "independence"],
        );
        let mount_vernon =
            b.add_item_with_keywords("Mount Vernon", &["destination"], &["american", "history"]);
        for &c in &classmates {
            b.visit(c, gettysburg);
            b.visit(c, liberty);
        }
        for &t in &team {
            b.visit(t, mount_vernon);
        }
        let topic = b.add_topic("independence war");
        b.belongs_to(gettysburg, topic);
        b.belongs_to(liberty, topic);
        (b.build(), alexia)
    }

    fn msg_for(g: &SocialGraph, user: NodeId) -> MeaningfulSocialGraph {
        InformationDiscoverer::default()
            .discover(g, &UserQuery::keywords_for(user, "american history"))
    }

    #[test]
    fn organize_groups_and_ranks_results() {
        let (g, alexia) = alexia_site();
        let msg = msg_for(&g, alexia);
        assert!(msg.len() >= 3);
        let organizer = InformationOrganizer::default();
        let p = organizer.organize(&g, &msg, GroupingStrategy::Social { theta: 0.5 });
        assert!(!p.groups.is_empty());
        assert!(p.groups.len() <= organizer.max_groups);
        // Within each group items are sorted by combined relevance.
        for group in &p.groups {
            let scores: Vec<f64> =
                group.items.iter().map(|i| msg.score_of(*i).unwrap_or(0.0)).collect();
            assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        }
        assert!(p.meaningfulness.score > 0.0);
    }

    #[test]
    fn best_presentation_orders_strategies_by_meaningfulness() {
        let (g, alexia) = alexia_site();
        let msg = msg_for(&g, alexia);
        let organizer = InformationOrganizer::default();
        let ranked = organizer.best_presentation(&g, &msg, "keywords");
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].meaningfulness.score >= ranked[1].meaningfulness.score);
        assert!(ranked[1].meaningfulness.score >= ranked[2].meaningfulness.score);
    }

    #[test]
    fn zoom_in_refines_a_group() {
        let (g, alexia) = alexia_site();
        let msg = msg_for(&g, alexia);
        let organizer = InformationOrganizer::default();
        let p = organizer.organize(&g, &msg, GroupingStrategy::Social { theta: 0.0 });
        let big = p.groups.iter().max_by_key(|g| g.items.len()).unwrap();
        let sub = organizer.zoom_in(
            &g,
            big,
            &GroupingStrategy::Structural { attribute: "keywords".into() },
        );
        assert!(!sub.is_empty());
        let covered: usize = sub.iter().map(|g| g.items.len()).sum();
        assert!(covered >= big.items.len());
    }

    #[test]
    fn empty_results_produce_empty_presentation() {
        let (g, _) = alexia_site();
        let msg = MeaningfulSocialGraph::default();
        let organizer = InformationOrganizer::default();
        let p = organizer.organize(&g, &msg, GroupingStrategy::Topical);
        assert!(p.groups.is_empty());
        assert_eq!(p.meaningfulness.score, 0.0);
    }

    #[test]
    fn max_groups_caps_the_presentation() {
        let (g, alexia) = alexia_site();
        let msg = msg_for(&g, alexia);
        let organizer = InformationOrganizer { max_groups: 1, social_theta: 0.9 };
        let p = organizer.organize(&g, &msg, GroupingStrategy::Social { theta: 0.9 });
        assert!(p.groups.len() <= 1);
    }
}
