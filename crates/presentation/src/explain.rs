//! Recommendation and group explanations (paper §7.2).
//!
//! An explanation depends on the strategy that produced a result:
//!
//! * content-based: `Expl(u, i) = { i' | ItemSim(i, i') > 0 ∧ i' ∈ Items(u) }`
//!   — the items the user rated that are similar to the recommended item,
//!   optionally weighted by `ItemSim(i, i') × rating(u, i')`;
//! * collaborative filtering: `Expl(u, i) = { u' | UserSim(u, u') > 0 ∧
//!   i ∈ Items(u') }` — the users similar (or connected) to `u` who endorsed
//!   the item;
//! * aggregate forms: "60% of your friends endorsed this item";
//! * group explanations: an aggregation of the member items' explanations.

use crate::grouping::ItemGroup;
use serde::{Deserialize, Serialize};
use socialscope_discovery::recommend::item_cf::item_similarity;
use socialscope_graph::{HasAttrs, NodeId, SocialGraph};
use std::collections::BTreeSet;

/// One weighted element of an explanation (an item or a user).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplanationEntry {
    /// The explaining node (an item for content-based, a user for CF).
    pub node: NodeId,
    /// Its weight (`ItemSim × rating` or `UserSim × rating`).
    pub weight: f64,
}

/// An explanation of a recommended item (or of a group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The explained item, when item-level (None for group explanations).
    pub item: Option<NodeId>,
    /// The explaining nodes with weights, strongest first.
    pub entries: Vec<ExplanationEntry>,
    /// A rendered natural-language summary.
    pub summary: String,
}

/// Content-based explanation: the items the user has acted on that are
/// similar to the recommended item.
pub fn item_based_explanation(graph: &SocialGraph, user: NodeId, item: NodeId) -> Explanation {
    let mut entries: Vec<ExplanationEntry> = graph
        .out_links(user)
        .filter(|l| l.has_type("act"))
        .map(|l| (l.tgt, l.attrs.get_f64("rating").unwrap_or(1.0)))
        .filter(|(past, _)| *past != item)
        .map(|(past, rating)| ExplanationEntry {
            node: past,
            weight: item_similarity(graph, item, past) * rating,
        })
        .filter(|e| e.weight > 0.0)
        .collect();
    entries.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.node.cmp(&b.node)));
    let summary = match entries.len() {
        0 => "No similar item in your history".to_string(),
        n => format!("Similar to {n} item(s) you visited before"),
    };
    Explanation { item: Some(item), entries, summary }
}

/// Collaborative-filtering explanation: the users connected to (or similar
/// to) the asking user who endorsed the item.
pub fn user_based_explanation(graph: &SocialGraph, user: NodeId, item: NodeId) -> Explanation {
    // UserSim: 1.0 for direct connections, the `sim` attribute for derived
    // match links, 0 otherwise.
    let mut entries = Vec::new();
    let endorsers: BTreeSet<NodeId> =
        graph.in_links(item).filter(|l| l.has_type("act")).map(|l| l.src).collect();
    for &other in &endorsers {
        let mut sim: f64 = 0.0;
        for l in graph.links_between(user, other).chain(graph.links_between(other, user)) {
            if l.has_type("connect") {
                sim = sim.max(1.0);
            }
            if l.has_type("match") {
                sim = sim.max(l.attrs.get_f64("sim").unwrap_or(0.0));
            }
        }
        let rating = graph
            .links_between(other, item)
            .filter_map(|l| l.attrs.get_f64("rating"))
            .fold(1.0, f64::max);
        if sim > 0.0 {
            entries.push(ExplanationEntry { node: other, weight: sim * rating });
        }
    }
    entries.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.node.cmp(&b.node)));
    let summary = match entries.len() {
        0 => "Nobody you know endorsed this yet".to_string(),
        n => format!("{n} people you know endorsed this"),
    };
    Explanation { item: Some(item), entries, summary }
}

/// Aggregate explanation: "X% of your friends endorsed this item".
pub fn aggregate_explanation(graph: &SocialGraph, user: NodeId, item: NodeId) -> Explanation {
    let friends: BTreeSet<NodeId> = graph
        .links_of(user)
        .filter(|l| l.has_type("connect"))
        .map(|l| if l.src == user { l.tgt } else { l.src })
        .collect();
    let endorsers: BTreeSet<NodeId> =
        graph.in_links(item).filter(|l| l.has_type("act")).map(|l| l.src).collect();
    let endorsing_friends: Vec<NodeId> = friends.intersection(&endorsers).copied().collect();
    let percent = if friends.is_empty() {
        0.0
    } else {
        100.0 * endorsing_friends.len() as f64 / friends.len() as f64
    };
    Explanation {
        item: Some(item),
        entries: endorsing_friends
            .iter()
            .map(|&f| ExplanationEntry { node: f, weight: 1.0 })
            .collect(),
        summary: format!("{percent:.0}% of your friends endorsed this item"),
    }
}

/// Group explanation: aggregate the member items' user-based explanations
/// into one concise statement ("endorsed by N people you know, most often
/// …").
pub fn group_explanation(graph: &SocialGraph, user: NodeId, group: &ItemGroup) -> Explanation {
    let mut endorser_counts: std::collections::BTreeMap<NodeId, usize> = Default::default();
    for &item in &group.items {
        for entry in user_based_explanation(graph, user, item).entries {
            *endorser_counts.entry(entry.node).or_default() += 1;
        }
    }
    let mut entries: Vec<ExplanationEntry> = endorser_counts
        .into_iter()
        .map(|(node, count)| ExplanationEntry { node, weight: count as f64 })
        .collect();
    entries.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.node.cmp(&b.node)));
    let summary = if entries.is_empty() {
        format!("`{}`: no social endorsement", group.label)
    } else {
        format!("`{}`: endorsed by {} people you know", group.label, entries.len())
    };
    Explanation { item: None, entries, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::GraphBuilder;

    /// John rated Coors Field; friends Mary and Pete visited the museum;
    /// stranger visited the opera.
    fn site() -> (SocialGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let john = b.add_user("John");
        let mary = b.add_user("Mary");
        let pete = b.add_user("Pete");
        let stranger = b.add_user("Stranger");
        let coors = b.add_item("Coors Field", &["destination"]);
        let museum = b.add_item("Ballpark Museum", &["destination"]);
        let opera = b.add_item("Opera", &["destination"]);
        b.befriend(john, mary);
        b.befriend(john, pete);
        b.rate(john, coors, 5.0);
        b.visit(mary, museum);
        b.visit(mary, coors);
        b.visit(pete, museum);
        b.visit(stranger, opera);
        (b.build(), john, coors, museum, opera)
    }

    #[test]
    fn item_based_explanation_lists_similar_history() {
        let (g, john, coors, museum, _) = site();
        let expl = item_based_explanation(&g, john, museum);
        // John's history contains Coors Field, which shares Mary with the
        // museum, so it explains the recommendation.
        assert_eq!(expl.entries.len(), 1);
        assert_eq!(expl.entries[0].node, coors);
        assert!(expl.entries[0].weight > 0.0);
        assert!(expl.summary.contains("1 item"));
    }

    #[test]
    fn user_based_explanation_lists_endorsing_connections() {
        let (g, john, _, museum, opera) = site();
        let expl = user_based_explanation(&g, john, museum);
        assert_eq!(expl.entries.len(), 2);
        assert!(expl.summary.contains("2 people"));
        let none = user_based_explanation(&g, john, opera);
        assert!(none.entries.is_empty());
        assert!(none.summary.contains("Nobody"));
    }

    #[test]
    fn aggregate_explanation_reports_percentages() {
        let (g, john, coors, museum, _) = site();
        let expl = aggregate_explanation(&g, john, museum);
        assert!(expl.summary.starts_with("100%"));
        let expl = aggregate_explanation(&g, john, coors);
        assert!(expl.summary.starts_with("50%"));
        // A user with no friends gets 0%.
        let loner_expl = aggregate_explanation(&g, NodeId(999), museum);
        assert!(loner_expl.summary.starts_with("0%"));
    }

    #[test]
    fn group_explanation_aggregates_member_items() {
        let (g, john, coors, museum, opera) = site();
        let group = ItemGroup { label: "baseball places".into(), items: vec![coors, museum] };
        let expl = group_explanation(&g, john, &group);
        assert_eq!(expl.entries.len(), 2);
        assert!(expl.summary.contains("baseball places"));
        let empty_group = ItemGroup { label: "nightlife".into(), items: vec![opera] };
        let expl = group_explanation(&g, john, &empty_group);
        assert!(expl.entries.is_empty());
        assert!(expl.summary.contains("no social endorsement"));
    }
}
