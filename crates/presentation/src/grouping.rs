//! Result grouping (paper §7.1).

use serde::{Deserialize, Serialize};
use socialscope_graph::{HasAttrs, NodeId, SocialGraph};
use std::collections::{BTreeMap, BTreeSet};

/// A group of result items with a human-readable label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemGroup {
    /// Display label (an attribute value, a topic label, or a social anchor).
    pub label: String,
    /// Items in the group.
    pub items: Vec<NodeId>,
}

impl ItemGroup {
    /// Number of items in the group.
    pub fn len(&self) -> usize {
        self.items.len()
    }
    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Which grouping mechanism to apply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupingStrategy {
    /// Social grouping (Def. 14) at a Jaccard threshold θ.
    Social {
        /// The threshold θ over shared taggers.
        theta: f64,
    },
    /// Topical grouping by derived `topic` nodes.
    Topical,
    /// Structural grouping by the values of an item attribute (faceting).
    Structural {
        /// Attribute to facet on (e.g. `type`, `city`).
        attribute: String,
    },
}

/// Users who tagged (or otherwise acted on) an item — the `taggers(i)` of
/// Def. 14.
fn taggers(graph: &SocialGraph, item: NodeId) -> BTreeSet<NodeId> {
    graph.in_links(item).filter(|l| l.has_type("act")).map(|l| l.src).collect()
}

fn jaccard(a: &BTreeSet<NodeId>, b: &BTreeSet<NodeId>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Social grouping (Def. 14): two items belong to the same group when the
/// sets of users who endorsed them overlap with Jaccard ≥ θ. Groups are
/// formed greedily with the first item of a group acting as its anchor; the
/// group label names the anchor item. Items endorsed by nobody fall into a
/// trailing "unendorsed" group.
pub fn social_grouping(graph: &SocialGraph, items: &[NodeId], theta: f64) -> Vec<ItemGroup> {
    let mut groups: Vec<(BTreeSet<NodeId>, ItemGroup)> = Vec::new();
    let mut unendorsed = ItemGroup { label: "unendorsed".to_string(), items: Vec::new() };
    for &item in items {
        let t = taggers(graph, item);
        if t.is_empty() {
            unendorsed.items.push(item);
            continue;
        }
        let mut placed = false;
        for (anchor_taggers, group) in groups.iter_mut() {
            if jaccard(anchor_taggers, &t) >= theta {
                group.items.push(item);
                placed = true;
                break;
            }
        }
        if !placed {
            let label = graph
                .node(item)
                .and_then(|n| n.name().map(|s| format!("endorsed like {s}")))
                .unwrap_or_else(|| format!("group {}", groups.len() + 1));
            groups.push((t, ItemGroup { label, items: vec![item] }));
        }
    }
    let mut out: Vec<ItemGroup> = groups.into_iter().map(|(_, g)| g).collect();
    if !unendorsed.is_empty() {
        out.push(unendorsed);
    }
    out
}

/// Topical grouping: group items by the `topic` nodes they `belong` to
/// (items attached to several topics appear in each; items without a topic
/// fall into "other topics").
pub fn topical_grouping(graph: &SocialGraph, items: &[NodeId]) -> Vec<ItemGroup> {
    let mut by_topic: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let mut untopical = Vec::new();
    for &item in items {
        let topics: Vec<NodeId> = graph
            .out_links(item)
            .filter(|l| l.has_type("belong"))
            .map(|l| l.tgt)
            .filter(|t| graph.node(*t).map(|n| n.has_type("topic")).unwrap_or(false))
            .collect();
        if topics.is_empty() {
            untopical.push(item);
        } else {
            for t in topics {
                by_topic.entry(t).or_default().push(item);
            }
        }
    }
    let mut out: Vec<ItemGroup> = by_topic
        .into_iter()
        .map(|(topic, items)| ItemGroup {
            label: graph
                .node(topic)
                .and_then(|n| n.attrs.get_str("label").map(str::to_string))
                .unwrap_or_else(|| topic.to_string()),
            items,
        })
        .collect();
    if !untopical.is_empty() {
        out.push(ItemGroup { label: "other topics".to_string(), items: untopical });
    }
    out
}

/// Structural (faceted) grouping: group items by each value of an attribute.
/// Multi-valued attributes place the item in every value's group.
pub fn structural_grouping(
    graph: &SocialGraph,
    items: &[NodeId],
    attribute: &str,
) -> Vec<ItemGroup> {
    let mut by_value: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
    let mut missing = Vec::new();
    for &item in items {
        let Some(node) = graph.node(item) else { continue };
        match node.attrs.get(attribute) {
            Some(value) if !value.is_empty() => {
                for scalar in value.iter() {
                    by_value.entry(scalar.as_text()).or_default().push(item);
                }
            }
            _ => missing.push(item),
        }
    }
    let mut out: Vec<ItemGroup> =
        by_value.into_iter().map(|(label, items)| ItemGroup { label, items }).collect();
    if !missing.is_empty() {
        out.push(ItemGroup { label: format!("no {attribute}"), items: missing });
    }
    out
}

/// Apply a grouping strategy.
pub fn group_items(
    graph: &SocialGraph,
    items: &[NodeId],
    strategy: &GroupingStrategy,
) -> Vec<ItemGroup> {
    match strategy {
        GroupingStrategy::Social { theta } => social_grouping(graph, items, *theta),
        GroupingStrategy::Topical => topical_grouping(graph, items),
        GroupingStrategy::Structural { attribute } => structural_grouping(graph, items, attribute),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::GraphBuilder;

    /// Alexia's field-trip scenario: history places endorsed by classmates,
    /// soccer places endorsed by team mates, plus an unendorsed item.
    fn site() -> (SocialGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let classmates: Vec<_> = (0..3).map(|i| b.add_user(&format!("class{i}"))).collect();
        let team: Vec<_> = (0..3).map(|i| b.add_user(&format!("team{i}"))).collect();
        let gettysburg = b.add_item_with_keywords("Gettysburg", &["destination"], &["history"]);
        let liberty = b.add_item_with_keywords("Liberty Bell", &["destination"], &["history"]);
        let stadium = b.add_item_with_keywords("Soccer Stadium", &["destination"], &["soccer"]);
        let obscure = b.add_item("Obscure Place", &["destination"]);
        for &c in &classmates {
            b.visit(c, gettysburg);
            b.visit(c, liberty);
        }
        for &t in &team {
            b.visit(t, stadium);
        }
        let topic_history = b.add_topic("american history");
        b.belongs_to(gettysburg, topic_history);
        b.belongs_to(liberty, topic_history);
        (b.build(), vec![gettysburg, liberty, stadium, obscure])
    }

    #[test]
    fn social_grouping_separates_endorser_communities() {
        let (g, items) = site();
        let groups = social_grouping(&g, &items, 0.5);
        // history group (classmates), soccer group (team), unendorsed group.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].items.len(), 2);
        assert_eq!(groups[1].items.len(), 1);
        assert_eq!(groups.last().unwrap().label, "unendorsed");
    }

    #[test]
    fn social_grouping_theta_zero_merges_endorsed_items() {
        let (g, items) = site();
        let groups = social_grouping(&g, &items, 0.0);
        // All endorsed items share one group (Jaccard >= 0 always holds).
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].items.len(), 3);
    }

    #[test]
    fn topical_grouping_uses_belong_links() {
        let (g, items) = site();
        let groups = topical_grouping(&g, &items);
        assert_eq!(groups.len(), 2);
        let history = groups.iter().find(|g| g.label == "american history").unwrap();
        assert_eq!(history.items.len(), 2);
        let other = groups.iter().find(|g| g.label == "other topics").unwrap();
        assert_eq!(other.items.len(), 2);
    }

    #[test]
    fn structural_grouping_facets_on_attribute_values() {
        let (g, items) = site();
        let groups = structural_grouping(&g, &items, "keywords");
        let labels: Vec<&str> = groups.iter().map(|g| g.label.as_str()).collect();
        assert!(labels.contains(&"history"));
        assert!(labels.contains(&"soccer"));
        assert!(labels.contains(&"no keywords"));
        // Faceting on type: every destination falls into the same groups.
        let by_type = structural_grouping(&g, &items, "type");
        assert!(by_type.iter().any(|g| g.label == "destination" && g.items.len() == 4));
    }

    #[test]
    fn group_items_dispatches_on_strategy() {
        let (g, items) = site();
        assert_eq!(
            group_items(&g, &items, &GroupingStrategy::Topical),
            topical_grouping(&g, &items)
        );
        assert_eq!(
            group_items(&g, &items, &GroupingStrategy::Social { theta: 0.5 }),
            social_grouping(&g, &items, 0.5)
        );
        assert_eq!(
            group_items(&g, &items, &GroupingStrategy::Structural { attribute: "type".into() }),
            structural_grouping(&g, &items, "type")
        );
    }

    #[test]
    fn grouping_covers_every_item_at_least_once() {
        let (g, items) = site();
        for strategy in [
            GroupingStrategy::Social { theta: 0.5 },
            GroupingStrategy::Topical,
            GroupingStrategy::Structural { attribute: "type".into() },
        ] {
            let groups = group_items(&g, &items, &strategy);
            for item in &items {
                assert!(
                    groups.iter().any(|g| g.items.contains(item)),
                    "{item} missing under {strategy:?}"
                );
            }
        }
    }
}
