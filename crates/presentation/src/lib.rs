//! # socialscope-presentation
//!
//! The Information Presentation layer of SocialScope (paper §7).
//!
//! Search engines present a single ranked list; SocialScope argues that
//! exploratory queries over social content need richer presentation:
//!
//! * **grouping** ([`grouping`]) — social grouping by shared endorsers
//!   (Def. 14), topical grouping by derived topics, and structural (faceted)
//!   grouping by item attributes;
//! * **organization** ([`organize`]) — scoring group *meaningfulness*
//!   (count, quality, size), selecting which groups fit the screen,
//!   hierarchical zoom-in, and within/across-group ranking (the Information
//!   Organizer and Result Selector of the architecture);
//! * **explanations** ([`explain`]) — item-based and user-based
//!   recommendation explanations, aggregate forms ("60% of your friends
//!   endorsed this item") and group-level explanations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explain;
pub mod grouping;
pub mod organize;

pub use explain::{
    aggregate_explanation, group_explanation, item_based_explanation, user_based_explanation,
    Explanation,
};
pub use grouping::{
    social_grouping, structural_grouping, topical_grouping, GroupingStrategy, ItemGroup,
};
pub use organize::{GroupMeaningfulness, InformationOrganizer, Presentation};
