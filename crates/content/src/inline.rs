//! A tiny inline-first vector shared by the query hot path.
//!
//! Queries rarely carry more than a handful of keywords, so the per-query
//! collections — resolved [`crate::tags::TagId`]s, gathered posting lists,
//! resolved refinement maps — should live on the stack. All three used to
//! hand-roll the same inline-array-plus-spill buffer; [`InlineVec`] is the
//! single shared implementation.

/// A copy-on-overflow small vector: the first `N` elements live in an
/// inline array, and pushing past `N` moves everything to a heap `Vec`
/// once, after which pushes append there.
#[derive(Debug, Clone)]
pub(crate) struct InlineVec<T, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// An empty buffer. `fill` initializes the unused inline slots (never
    /// observable through [`Self::as_slice`]); it exists because reference
    /// element types have no `Default`.
    pub(crate) fn new(fill: T) -> Self {
        InlineVec { inline: [fill; N], len: 0, spill: Vec::new() }
    }

    /// Append an element, spilling the inline prefix to the heap on first
    /// overflow.
    pub(crate) fn push(&mut self, value: T) {
        if !self.spill.is_empty() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(value);
        }
    }

    /// The pushed elements, in push order.
    pub(crate) fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_below_capacity_and_spills_past_it() {
        let mut v: InlineVec<u32, 4> = InlineVec::default();
        assert!(v.as_slice().is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.spill.is_empty(), "still inline at capacity");
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        for i in 4..10 {
            v.push(i);
        }
        assert!(!v.spill.is_empty(), "spilled past capacity");
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn fill_value_is_never_observable() {
        let mut v: InlineVec<u32, 2> = InlineVec::new(99);
        v.push(1);
        assert_eq!(v.as_slice(), &[1]);
        v.push(2);
        v.push(3);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }
}
