//! Error type for the content management layer.

use std::fmt;

/// Errors raised by content-management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentError {
    /// A referenced user is not known to the site model.
    UnknownUser(socialscope_graph::NodeId),
    /// A referenced item is not known to the site model.
    UnknownItem(socialscope_graph::NodeId),
    /// A remote site could not be reached (simulated outage).
    RemoteUnavailable(String),
    /// The user has not granted the content site permission to read their
    /// social data from the remote site (Open Cartel model).
    PermissionDenied {
        /// The remote site.
        site: String,
        /// The user whose data was requested.
        user: socialscope_graph::NodeId,
    },
    /// An index was queried for a tag it does not contain.
    UnknownTag(String),
    /// A generic invariant violation.
    Invariant(String),
    /// A build or apply would overflow an internal capacity limit (e.g.
    /// more than `u32::MAX - 1` indexed users or bound lists). The
    /// operation is rejected *before* any state changes — the site and
    /// indexes are untouched — instead of aborting the process.
    CapacityExceeded {
        /// What ran out of representable room (e.g. `"indexed users"`).
        what: &'static str,
        /// The capacity limit that would have been exceeded.
        limit: u64,
    },
    /// A deterministic fault injected by the `failpoints` test harness
    /// (only ever constructed with the `failpoints` cargo feature on).
    FaultInjected {
        /// The failpoint site that fired.
        site: String,
    },
}

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentError::UnknownUser(u) => write!(f, "unknown user {u}"),
            ContentError::UnknownItem(i) => write!(f, "unknown item {i}"),
            ContentError::RemoteUnavailable(s) => write!(f, "remote site `{s}` is unavailable"),
            ContentError::PermissionDenied { site, user } => {
                write!(f, "user {user} has not granted `{site}` access to their social data")
            }
            ContentError::UnknownTag(t) => write!(f, "tag `{t}` is not indexed"),
            ContentError::Invariant(msg) => write!(f, "content invariant violated: {msg}"),
            ContentError::CapacityExceeded { what, limit } => {
                write!(f, "capacity exceeded: more than {limit} {what}")
            }
            ContentError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
        }
    }
}

impl std::error::Error for ContentError {}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::NodeId;

    #[test]
    fn display_messages() {
        assert!(ContentError::UnknownUser(NodeId(1)).to_string().contains("n1"));
        assert!(ContentError::RemoteUnavailable("facebook".into())
            .to_string()
            .contains("facebook"));
        let e = ContentError::PermissionDenied { site: "flickr".into(), user: NodeId(2) };
        assert!(e.to_string().contains("flickr"));
        let e = ContentError::CapacityExceeded { what: "indexed users", limit: 42 };
        assert_eq!(e.to_string(), "capacity exceeded: more than 42 indexed users");
        let e = ContentError::FaultInjected { site: "content::site_apply".into() };
        assert!(e.to_string().contains("content::site_apply"));
    }
}
