//! The site primitives of §6.2: `items(u)`, `network(u)`, `taggers(i, k)`
//! and the network-aware scoring model built on them.
//!
//! For a del.icio.us-style site where users connect with other users and tag
//! items, the paper defines the score of an item `i` for user `u` and
//! keyword `k` as `score_k(i, u) = f(network(u) ∩ taggers(i, k))` with `f`
//! a monotone function (count, for exposition), and the overall score of `i`
//! for query `Q_u = k1,…,kn` as a monotone aggregate `g` of the per-keyword
//! scores (sum, for exposition). [`SiteModel`] materializes those primitives
//! from a social content graph once and serves them to the inverted indexes,
//! the clustering strategies and the top-k processor.

use serde::{Deserialize, Serialize};
use socialscope_graph::{FxHashMap, HasAttrs, NodeId, SocialGraph};
use std::collections::{BTreeMap, BTreeSet};

/// Materialized view of a social content site used by network-aware search.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteModel {
    users: BTreeSet<NodeId>,
    items: BTreeSet<NodeId>,
    tags: BTreeSet<String>,
    /// `items(u)`: items tagged by `u`.
    items_of: FxHashMap<NodeId, BTreeSet<NodeId>>,
    /// `network(u)`: users connected to `u` (undirected over connect links).
    network_of: FxHashMap<NodeId, BTreeSet<NodeId>>,
    /// `taggers(i, k)`: users who tagged item `i` with tag `k`.
    taggers_of: FxHashMap<(NodeId, String), BTreeSet<NodeId>>,
    /// `tags(u)`: tags used by `u` (for behavior statistics).
    tags_of: FxHashMap<NodeId, BTreeSet<String>>,
    /// Items carrying each tag (user-independent), for candidate generation.
    items_with_tag: BTreeMap<String, BTreeSet<NodeId>>,
}

impl SiteModel {
    /// Build the model from a social content graph: users and items come
    /// from node types, `network(u)` from `connect` links, `items(u)` and
    /// `taggers(i, k)` from `tag` activity links.
    pub fn from_graph(graph: &SocialGraph) -> Self {
        let mut model = SiteModel::default();
        for node in graph.nodes() {
            if node.has_type("user") {
                model.users.insert(node.id);
            }
            if node.has_type("item") {
                model.items.insert(node.id);
            }
        }
        for link in graph.links() {
            if link.type_values().iter().any(|t| socialscope_graph::types::is_connection_type(t))
                && model.users.contains(&link.src)
                && model.users.contains(&link.tgt)
            {
                model.network_of.entry(link.src).or_default().insert(link.tgt);
                model.network_of.entry(link.tgt).or_default().insert(link.src);
            }
            if link.has_type("tag") {
                let user = link.src;
                let item = link.tgt;
                if !model.users.contains(&user) || !model.items.contains(&item) {
                    continue;
                }
                model.items_of.entry(user).or_default().insert(item);
                let tags = link.attrs.get("tags").map(|v| v.string_tokens()).unwrap_or_default();
                for tag in tags {
                    model.tags.insert(tag.clone());
                    model.taggers_of.entry((item, tag.clone())).or_default().insert(user);
                    model.tags_of.entry(user).or_default().insert(tag.clone());
                    model.items_with_tag.entry(tag).or_default().insert(item);
                }
            }
        }
        model
    }

    /// All users, in id order.
    pub fn users(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.users.iter().copied()
    }

    /// All items, in id order.
    pub fn items(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.items.iter().copied()
    }

    /// All distinct tags, in lexical order.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().map(String::as_str)
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
    /// Number of items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }
    /// Number of distinct tags.
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// `items(u)`: the items tagged by a user.
    pub fn items_of(&self, user: NodeId) -> &BTreeSet<NodeId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
        self.items_of.get(&user).unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// `network(u)`: the users connected to a user.
    pub fn network_of(&self, user: NodeId) -> &BTreeSet<NodeId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
        self.network_of.get(&user).unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// `taggers(i, k)`: the users who tagged item `i` with tag `k`.
    pub fn taggers_of(&self, item: NodeId, tag: &str) -> &BTreeSet<NodeId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
        self.taggers_of
            .get(&(item, tag.to_lowercase()))
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Tags used by a user.
    pub fn tags_of(&self, user: NodeId) -> &BTreeSet<String> {
        static EMPTY: std::sync::OnceLock<BTreeSet<String>> = std::sync::OnceLock::new();
        self.tags_of.get(&user).unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Items carrying a tag, independently of who asks.
    pub fn items_with_tag(&self, tag: &str) -> &BTreeSet<NodeId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
        self.items_with_tag
            .get(&tag.to_lowercase())
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// `score_k(i, u) = |network(u) ∩ taggers(i, k)|` — the paper's
    /// exposition choice `f = count`.
    pub fn keyword_score(&self, item: NodeId, user: NodeId, tag: &str) -> f64 {
        let network = self.network_of(user);
        let taggers = self.taggers_of(item, tag);
        network.intersection(taggers).count() as f64
    }

    /// `score(i, u) = Σ_j score_kj(i, u)` — the paper's exposition choice
    /// `g = sum`.
    pub fn query_score(&self, item: NodeId, user: NodeId, keywords: &[String]) -> f64 {
        keywords.iter().map(|k| self.keyword_score(item, user, k)).sum()
    }

    /// Jaccard similarity of two users' networks (Def. 11 predicate).
    pub fn network_jaccard(&self, a: NodeId, b: NodeId) -> f64 {
        jaccard(self.network_of(a), self.network_of(b))
    }

    /// Jaccard similarity of two users' tagged item sets (Def. 12 predicate).
    pub fn behavior_jaccard(&self, a: NodeId, b: NodeId) -> f64 {
        jaccard(self.items_of(a), self.items_of(b))
    }
}

/// Jaccard similarity of two ordered sets.
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::GraphBuilder;

    /// u0–u1–u2 chain of friendships; u1 and u2 tag item a with "baseball";
    /// u2 tags item b with "museum".
    fn model() -> (SiteModel, Vec<NodeId>, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let a = b.add_item("a", &["destination"]);
        let bb = b.add_item("b", &["destination"]);
        b.befriend(u0, u1);
        b.befriend(u1, u2);
        b.tag(u1, a, &["baseball"]);
        b.tag(u2, a, &["baseball", "stadium"]);
        b.tag(u2, bb, &["museum"]);
        let g = b.build();
        (SiteModel::from_graph(&g), vec![u0, u1, u2], vec![a, bb])
    }

    #[test]
    fn primitives_are_derived_from_the_graph() {
        let (m, users, items) = model();
        assert_eq!(m.user_count(), 3);
        assert_eq!(m.item_count(), 2);
        assert_eq!(m.tag_count(), 3);
        assert_eq!(m.network_of(users[1]).len(), 2);
        assert_eq!(m.items_of(users[2]).len(), 2);
        assert_eq!(m.taggers_of(items[0], "baseball").len(), 2);
        assert_eq!(m.taggers_of(items[0], "museum").len(), 0);
        assert!(m.tags_of(users[2]).contains("museum"));
        assert_eq!(m.items_with_tag("baseball").len(), 1);
    }

    #[test]
    fn keyword_score_counts_network_taggers() {
        let (m, users, items) = model();
        // u0's network is {u1}; u1 tagged item a with baseball -> score 1.
        assert_eq!(m.keyword_score(items[0], users[0], "baseball"), 1.0);
        // u1's network is {u0, u2}; only u2 tagged a with baseball -> 1.
        assert_eq!(m.keyword_score(items[0], users[1], "baseball"), 1.0);
        // u2's network is {u1}; u1 tagged a with baseball -> 1.
        assert_eq!(m.keyword_score(items[0], users[2], "baseball"), 1.0);
        // Nobody in u0's network tagged item b.
        assert_eq!(m.keyword_score(items[1], users[0], "museum"), 0.0);
    }

    #[test]
    fn query_score_sums_over_keywords() {
        let (m, users, items) = model();
        let q = vec!["baseball".to_string(), "stadium".to_string()];
        // u1's network: u0 (no tags), u2 (baseball + stadium on item a).
        assert_eq!(m.query_score(items[0], users[1], &q), 2.0);
        assert_eq!(m.query_score(items[1], users[1], &q), 0.0);
    }

    #[test]
    fn jaccard_similarities() {
        let (m, users, _) = model();
        // networks: u0 {u1}, u1 {u0,u2}, u2 {u1} -> J(u0,u2) = 1.0.
        assert_eq!(m.network_jaccard(users[0], users[2]), 1.0);
        assert_eq!(m.network_jaccard(users[0], users[1]), 0.0);
        // items: u1 {a}, u2 {a,b} -> 1/2.
        assert_eq!(m.behavior_jaccard(users[1], users[2]), 0.5);
        // A user with no activity has Jaccard 0 with everyone.
        assert_eq!(m.behavior_jaccard(users[0], users[1]), 0.0);
    }

    #[test]
    fn missing_users_yield_empty_sets() {
        let (m, ..) = model();
        let ghost = NodeId(999);
        assert!(m.items_of(ghost).is_empty());
        assert!(m.network_of(ghost).is_empty());
        assert_eq!(m.keyword_score(NodeId(998), ghost, "x"), 0.0);
    }
}
