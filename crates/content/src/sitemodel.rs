//! The site primitives of §6.2: `items(u)`, `network(u)`, `taggers(i, k)`
//! and the network-aware scoring model built on them.
//!
//! For a del.icio.us-style site where users connect with other users and tag
//! items, the paper defines the score of an item `i` for user `u` and
//! keyword `k` as `score_k(i, u) = f(network(u) ∩ taggers(i, k))` with `f`
//! a monotone function (count, for exposition), and the overall score of `i`
//! for query `Q_u = k1,…,kn` as a monotone aggregate `g` of the per-keyword
//! scores (sum, for exposition). [`SiteModel`] materializes those primitives
//! from a social content graph once and serves them to the inverted indexes,
//! the clustering strategies and the top-k processor.

use crate::events::TagEvent;
use crate::tags::normalize;
use serde::{Deserialize, Serialize};
use socialscope_graph::{FxHashMap, HasAttrs, NodeId, SocialGraph};
use std::collections::{BTreeMap, BTreeSet};

/// Materialized view of a social content site used by network-aware search.
///
/// The per-user / per-item id sets of the scoring hot path (`network(u)`,
/// `taggers(i, k)`, `items(u)`) are frozen into sorted vectors at build
/// time: `score_k` then intersects two contiguous sorted runs instead of
/// walking two B-trees — the dominant cost of clustered query processing
/// and of the exhaustive baseline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteModel {
    users: BTreeSet<NodeId>,
    items: BTreeSet<NodeId>,
    tags: BTreeSet<String>,
    /// `items(u)`: items tagged by `u`, in ascending id order.
    items_of: FxHashMap<NodeId, Vec<NodeId>>,
    /// `network(u)`: users connected to `u` (undirected over connect
    /// links), in ascending id order.
    network_of: FxHashMap<NodeId, Vec<NodeId>>,
    /// `taggers(i, k)`: users who tagged item `i` with tag `k` (ascending),
    /// keyed item-first so tag lookups can borrow the probe string.
    taggers_of: FxHashMap<NodeId, FxHashMap<String, Vec<NodeId>>>,
    /// `tags(u)`: tags used by `u` (for behavior statistics).
    tags_of: FxHashMap<NodeId, BTreeSet<String>>,
    /// Items carrying each tag (user-independent), for candidate generation.
    items_with_tag: BTreeMap<String, BTreeSet<NodeId>>,
}

/// Freeze a dedup set map into sorted-vector form.
fn freeze<K: std::hash::Hash + Eq>(
    sets: FxHashMap<K, BTreeSet<NodeId>>,
) -> FxHashMap<K, Vec<NodeId>> {
    sets.into_iter().map(|(k, set)| (k, set.into_iter().collect())).collect()
}

impl SiteModel {
    /// Build the model from a social content graph: users and items come
    /// from node types, `network(u)` from `connect` links, `items(u)` and
    /// `taggers(i, k)` from `tag` activity links.
    pub fn from_graph(graph: &SocialGraph) -> Self {
        let mut model = SiteModel::default();
        let mut items_of: FxHashMap<NodeId, BTreeSet<NodeId>> = FxHashMap::default();
        let mut network_of: FxHashMap<NodeId, BTreeSet<NodeId>> = FxHashMap::default();
        let mut taggers_of: FxHashMap<NodeId, FxHashMap<String, BTreeSet<NodeId>>> =
            FxHashMap::default();
        for node in graph.nodes() {
            if node.has_type("user") {
                model.users.insert(node.id);
            }
            if node.has_type("item") {
                model.items.insert(node.id);
            }
        }
        for link in graph.links() {
            if link.type_values().iter().any(|t| socialscope_graph::types::is_connection_type(t))
                && model.users.contains(&link.src)
                && model.users.contains(&link.tgt)
            {
                network_of.entry(link.src).or_default().insert(link.tgt);
                network_of.entry(link.tgt).or_default().insert(link.src);
            }
            if link.has_type("tag") {
                let user = link.src;
                let item = link.tgt;
                if !model.users.contains(&user) || !model.items.contains(&item) {
                    continue;
                }
                items_of.entry(user).or_default().insert(item);
                let tags = link.attrs.get("tags").map(|v| v.string_tokens()).unwrap_or_default();
                for tag in tags {
                    model.tags.insert(tag.clone());
                    taggers_of
                        .entry(item)
                        .or_default()
                        .entry(tag.clone())
                        .or_default()
                        .insert(user);
                    model.tags_of.entry(user).or_default().insert(tag.clone());
                    model.items_with_tag.entry(tag).or_default().insert(item);
                }
            }
        }
        model.items_of = freeze(items_of);
        model.network_of = freeze(network_of);
        model.taggers_of =
            taggers_of.into_iter().map(|(item, by_tag)| (item, freeze(by_tag))).collect();
        model
    }

    /// All users, in id order.
    pub fn users(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.users.iter().copied()
    }

    /// All items, in id order.
    pub fn items(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.items.iter().copied()
    }

    /// All distinct tags, in lexical order.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().map(String::as_str)
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
    /// Number of items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }
    /// Number of distinct tags.
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// `items(u)`: the items tagged by a user, ascending.
    pub fn items_of(&self, user: NodeId) -> &[NodeId] {
        self.items_of.get(&user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `network(u)`: the users connected to a user, ascending.
    pub fn network_of(&self, user: NodeId) -> &[NodeId] {
        self.network_of.get(&user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `taggers(i, k)`: the users who tagged item `i` with tag `k`,
    /// ascending. Allocation-free when the probe tag is already lowercase.
    pub fn taggers_of(&self, item: NodeId, tag: &str) -> &[NodeId] {
        self.taggers_of
            .get(&item)
            .and_then(|by_tag| by_tag.get(normalize(tag).as_ref()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate every `(item, tag, taggers)` group once — the raw material
    /// the inverted-index builds accumulate over, without the
    /// items × tags cross-product probing `taggers_of` per pair costs.
    pub fn tag_assignments(&self) -> impl Iterator<Item = (NodeId, &str, &[NodeId])> {
        self.taggers_of.iter().flat_map(|(&item, by_tag)| {
            by_tag.iter().map(move |(tag, taggers)| (item, tag.as_str(), taggers.as_slice()))
        })
    }

    /// The tags carried by one item together with their tagger groups, in
    /// arbitrary order. This is the item-first view the clustered index's
    /// recluster-on-join path enumerates to fold a late joiner's non-zero
    /// scores into its new cluster's bounds.
    pub fn item_tags(&self, item: NodeId) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.taggers_of.get(&item).into_iter().flat_map(|by_tag| {
            by_tag.iter().map(|(tag, taggers)| (tag.as_str(), taggers.as_slice()))
        })
    }

    /// Apply a batch of tagging events in order, mutating the frozen
    /// primitives in place, and return how many events were *effective*
    /// (changed the site). Assigning an already-present `(tagger, item,
    /// tag)` triple and retracting an absent one are no-ops; an assign-only
    /// history applied here yields exactly the model
    /// [`Self::from_graph`] builds from the equivalent graph. Networks
    /// never change under tag events — connection links are a different
    /// activity — which is what lets the index delta paths treat
    /// `network(u)` as stable.
    pub fn apply(&mut self, events: &[TagEvent]) -> usize {
        // lint: allow(no_panic, reason = "documented panicking convenience wrapper; serving paths use the adjacent try_ form and get a typed error")
        self.try_apply(events).unwrap_or_else(|error| panic!("{error}"))
    }

    /// [`Self::apply`] with an error channel for the fault-injection
    /// harness. The site model is all-or-nothing by construction: every
    /// fallible step (here, the [`crate::faults::SITE_APPLY`] failpoint)
    /// runs *before* the first mutation, so an `Err` return guarantees the
    /// model is byte-identical to its pre-call state.
    pub fn try_apply(&mut self, events: &[TagEvent]) -> crate::Result<usize> {
        crate::faults::fire(crate::faults::SITE_APPLY)?;
        let mut effective = 0usize;
        for event in events {
            let tag = normalize(event.tag()).into_owned();
            let (tagger, item) = (event.tagger(), event.item());
            match event {
                TagEvent::Assign { .. } => {
                    let taggers =
                        self.taggers_of.entry(item).or_default().entry(tag.clone()).or_default();
                    let Err(pos) = taggers.binary_search(&tagger) else {
                        // Duplicate assignment: the (possibly just-created)
                        // group already lists the tagger, so nothing below
                        // can have changed either.
                        continue;
                    };
                    taggers.insert(pos, tagger);
                    self.users.insert(tagger);
                    self.items.insert(item);
                    let items = self.items_of.entry(tagger).or_default();
                    if let Err(pos) = items.binary_search(&item) {
                        items.insert(pos, item);
                    }
                    self.tags_of.entry(tagger).or_default().insert(tag.clone());
                    self.items_with_tag.entry(tag.clone()).or_default().insert(item);
                    self.tags.insert(tag);
                    effective += 1;
                }
                TagEvent::Retract { .. } => {
                    let Some(by_tag) = self.taggers_of.get_mut(&item) else { continue };
                    let Some(taggers) = by_tag.get_mut(&tag) else { continue };
                    let Ok(pos) = taggers.binary_search(&tagger) else { continue };
                    taggers.remove(pos);
                    let group_emptied = taggers.is_empty();
                    if group_emptied {
                        by_tag.remove(&tag);
                        if by_tag.is_empty() {
                            self.taggers_of.remove(&item);
                        }
                        if let Some(items) = self.items_with_tag.get_mut(&tag) {
                            items.remove(&item);
                            if items.is_empty() {
                                self.items_with_tag.remove(&tag);
                                self.tags.remove(&tag);
                            }
                        }
                    }
                    // `items(u)` drops the item only once the tagger has no
                    // remaining tag on it.
                    let still_tags_item = self.taggers_of.get(&item).is_some_and(|by_tag| {
                        by_tag.values().any(|t| t.binary_search(&tagger).is_ok())
                    });
                    if !still_tags_item {
                        if let Some(items) = self.items_of.get_mut(&tagger) {
                            if let Ok(pos) = items.binary_search(&item) {
                                items.remove(pos);
                            }
                            if items.is_empty() {
                                self.items_of.remove(&tagger);
                            }
                        }
                    }
                    // `tags(u)` drops the tag only once the tagger uses it
                    // on no item at all.
                    let still_uses_tag = self.items_with_tag.get(&tag).is_some_and(|items| {
                        items.iter().any(|i| {
                            self.taggers_of
                                .get(i)
                                .and_then(|by_tag| by_tag.get(&tag))
                                .is_some_and(|t| t.binary_search(&tagger).is_ok())
                        })
                    });
                    if !still_uses_tag {
                        if let Some(tags) = self.tags_of.get_mut(&tagger) {
                            tags.remove(&tag);
                            if tags.is_empty() {
                                self.tags_of.remove(&tagger);
                            }
                        }
                    }
                    effective += 1;
                }
            }
        }
        Ok(effective)
    }

    /// Tags used by a user.
    pub fn tags_of(&self, user: NodeId) -> &BTreeSet<String> {
        static EMPTY: std::sync::OnceLock<BTreeSet<String>> = std::sync::OnceLock::new();
        self.tags_of.get(&user).unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Items carrying a tag, independently of who asks.
    pub fn items_with_tag(&self, tag: &str) -> &BTreeSet<NodeId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
        self.items_with_tag
            .get(normalize(tag).as_ref())
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// `score_k(i, u) = |network(u) ∩ taggers(i, k)|` — the paper's
    /// exposition choice `f = count`, computed by merging two sorted runs.
    pub fn keyword_score(&self, item: NodeId, user: NodeId, tag: &str) -> f64 {
        let network = self.network_of(user);
        let taggers = self.taggers_of(item, tag);
        count_intersection(network, taggers) as f64
    }

    /// `score(i, u) = Σ_j score_kj(i, u)` — the paper's exposition choice
    /// `g = sum`, taken over the *distinct* keywords of the query: a query
    /// is a keyword set, so repeating a keyword (in any casing) does not
    /// double its contribution. This matches the inverted indexes, which
    /// collapse duplicate keywords at `TagId` resolution.
    pub fn query_score(&self, item: NodeId, user: NodeId, keywords: &[String]) -> f64 {
        self.query_score_distinct(item, user, &distinct_keywords(keywords))
    }

    /// [`Self::query_score`] over keywords the caller has already
    /// deduplicated (e.g. via [`distinct_keywords`]). Top-k callers score
    /// many candidate items against one fixed keyword set — deduplicating
    /// once per query instead of once per candidate keeps the per-item
    /// scorer a bare sum.
    pub fn query_score_distinct(&self, item: NodeId, user: NodeId, keywords: &[&str]) -> f64 {
        keywords.iter().map(|k| self.keyword_score(item, user, k)).sum()
    }

    /// Jaccard similarity of two users' networks (Def. 11 predicate).
    pub fn network_jaccard(&self, a: NodeId, b: NodeId) -> f64 {
        jaccard(self.network_of(a), self.network_of(b))
    }

    /// Jaccard similarity of two users' tagged item sets (Def. 12 predicate).
    pub fn behavior_jaccard(&self, a: NodeId, b: NodeId) -> f64 {
        jaccard(self.items_of(a), self.items_of(b))
    }
}

/// The distinct keywords of a query in first-occurrence order, comparing
/// case-insensitively exactly as [`SiteModel::query_score`] does. Borrowed
/// from the input, so deduplicating a query once up front costs two small
/// vectors, not a string clone per keyword. Each keyword is normalized
/// exactly once: the normalized forms accumulate alongside the output and
/// later keywords compare against them directly, instead of re-normalizing
/// every earlier keyword per comparison.
pub fn distinct_keywords(keywords: &[String]) -> Vec<&str> {
    let mut normed: Vec<std::borrow::Cow<'_, str>> = Vec::with_capacity(keywords.len());
    let mut distinct: Vec<&str> = Vec::with_capacity(keywords.len());
    for keyword in keywords {
        let norm = normalize(keyword);
        if !normed.contains(&norm) {
            distinct.push(keyword);
            normed.push(norm);
        }
    }
    distinct
}

/// Size of the intersection of two ascending id slices (two-pointer merge).
pub(crate) fn count_intersection(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity of two sorted id slices.
pub fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = count_intersection(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialscope_graph::GraphBuilder;

    /// u0–u1–u2 chain of friendships; u1 and u2 tag item a with "baseball";
    /// u2 tags item b with "museum".
    fn model() -> (SiteModel, Vec<NodeId>, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let a = b.add_item("a", &["destination"]);
        let bb = b.add_item("b", &["destination"]);
        b.befriend(u0, u1);
        b.befriend(u1, u2);
        b.tag(u1, a, &["baseball"]);
        b.tag(u2, a, &["baseball", "stadium"]);
        b.tag(u2, bb, &["museum"]);
        let g = b.build();
        (SiteModel::from_graph(&g), vec![u0, u1, u2], vec![a, bb])
    }

    #[test]
    fn primitives_are_derived_from_the_graph() {
        let (m, users, items) = model();
        assert_eq!(m.user_count(), 3);
        assert_eq!(m.item_count(), 2);
        assert_eq!(m.tag_count(), 3);
        assert_eq!(m.network_of(users[1]).len(), 2);
        assert_eq!(m.items_of(users[2]).len(), 2);
        assert_eq!(m.taggers_of(items[0], "baseball").len(), 2);
        assert_eq!(m.taggers_of(items[0], "museum").len(), 0);
        assert!(m.tags_of(users[2]).contains("museum"));
        assert_eq!(m.items_with_tag("baseball").len(), 1);
    }

    #[test]
    fn keyword_score_counts_network_taggers() {
        let (m, users, items) = model();
        // u0's network is {u1}; u1 tagged item a with baseball -> score 1.
        assert_eq!(m.keyword_score(items[0], users[0], "baseball"), 1.0);
        // u1's network is {u0, u2}; only u2 tagged a with baseball -> 1.
        assert_eq!(m.keyword_score(items[0], users[1], "baseball"), 1.0);
        // u2's network is {u1}; u1 tagged a with baseball -> 1.
        assert_eq!(m.keyword_score(items[0], users[2], "baseball"), 1.0);
        // Nobody in u0's network tagged item b.
        assert_eq!(m.keyword_score(items[1], users[0], "museum"), 0.0);
    }

    #[test]
    fn query_score_sums_over_keywords() {
        let (m, users, items) = model();
        let q = vec!["baseball".to_string(), "stadium".to_string()];
        // u1's network: u0 (no tags), u2 (baseball + stadium on item a).
        assert_eq!(m.query_score(items[0], users[1], &q), 2.0);
        assert_eq!(m.query_score(items[1], users[1], &q), 0.0);
    }

    #[test]
    fn query_score_counts_duplicate_keywords_once() {
        let (m, users, items) = model();
        let q = vec!["baseball".to_string(), "stadium".to_string()];
        let dup = vec![
            "baseball".to_string(),
            "Stadium".to_string(),
            "BASEBALL".to_string(),
            "stadium".to_string(),
        ];
        assert_eq!(m.query_score(items[0], users[1], &dup), m.query_score(items[0], users[1], &q));
    }

    #[test]
    fn distinct_keywords_keeps_first_occurrences_case_insensitively() {
        let q: Vec<String> = ["Baseball", "BASEBALL", "baseball", "Museum", "baseBALL", "museum"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(distinct_keywords(&q), vec!["Baseball", "Museum"]);
        assert!(distinct_keywords(&[]).is_empty());
    }

    #[test]
    fn duplicate_heavy_queries_score_identically() {
        let (m, users, items) = model();
        let q = vec!["baseball".to_string(), "stadium".to_string()];
        // A pathologically duplicate-heavy query: every keyword repeated
        // many times in alternating casings.
        let mut heavy = Vec::new();
        for i in 0..50 {
            for word in &q {
                heavy.push(if i % 2 == 0 { word.to_uppercase() } else { word.clone() });
            }
        }
        for &u in &users {
            for &i in &items {
                assert_eq!(m.query_score(i, u, &heavy), m.query_score(i, u, &q));
            }
        }
    }

    #[test]
    fn jaccard_similarities() {
        let (m, users, _) = model();
        // networks: u0 {u1}, u1 {u0,u2}, u2 {u1} -> J(u0,u2) = 1.0.
        assert_eq!(m.network_jaccard(users[0], users[2]), 1.0);
        assert_eq!(m.network_jaccard(users[0], users[1]), 0.0);
        // items: u1 {a}, u2 {a,b} -> 1/2.
        assert_eq!(m.behavior_jaccard(users[1], users[2]), 0.5);
        // A user with no activity has Jaccard 0 with everyone.
        assert_eq!(m.behavior_jaccard(users[0], users[1]), 0.0);
    }

    #[test]
    fn tag_assignments_cover_every_tagger_group() {
        let (m, _, items) = model();
        let mut seen = std::collections::BTreeSet::new();
        for (item, tag, taggers) in m.tag_assignments() {
            assert!(!taggers.is_empty());
            assert_eq!(taggers, m.taggers_of(item, tag));
            seen.insert((item, tag.to_string()));
        }
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&(items[0], "baseball".to_string())));
        assert!(seen.contains(&(items[0], "stadium".to_string())));
        assert!(seen.contains(&(items[1], "museum".to_string())));
    }

    #[test]
    fn tag_lookups_normalize_case() {
        let (m, _, items) = model();
        assert_eq!(m.taggers_of(items[0], "BaseBall").len(), 2);
        assert_eq!(m.items_with_tag("MUSEUM").len(), 1);
    }

    #[test]
    fn missing_users_yield_empty_sets() {
        let (m, ..) = model();
        let ghost = NodeId(999);
        assert!(m.items_of(ghost).is_empty());
        assert!(m.network_of(ghost).is_empty());
        assert_eq!(m.keyword_score(NodeId(998), ghost, "x"), 0.0);
    }
}
