//! Keyword-first refinement index for clustered query processing.
//!
//! The clustered index (§6.2, Eq. 1) surfaces candidates through score
//! *upper bounds* and must recompute the exact score `score_k(i, u)` per
//! candidate. Recomputing through [`crate::sitemodel::SiteModel`]'s
//! item-first `taggers(i, k)` orientation hashes the keyword *string* for
//! every candidate — the dominant cost of the clustered row in the E8
//! sweep. [`RefinementIndex`] stores the same tagger groups in a
//! keyword-first orientation, `tag → item → taggers`, keyed on interned
//! [`TagId`]s: a query resolves its tags to per-tag item maps **once**
//! ([`RefinementIndex::resolve`]), and each candidate's exact score is then
//! a handful of integer-keyed probes plus merge intersections of sorted id
//! slices — zero string hashing and zero allocation per candidate.
//!
//! This is the cheap random access the threshold-algorithm lineage (Fagin
//! et al.) assumes; clustering violated it, and this orientation restores
//! it without giving up the clustered index's space savings.

use crate::index::IndexStats;
use crate::inline::InlineVec;
use crate::posting::BYTES_PER_ENTRY;
use crate::sitemodel::count_intersection;
use crate::tags::TagId;
use serde::{Deserialize, Serialize};
use socialscope_graph::{FxHashMap, NodeId};
use std::sync::OnceLock;

/// Location of one `(tag, item)` tagger group inside the shared arena.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Span {
    start: u32,
    len: u32,
}

/// The keyword-first `tag → item → taggers` orientation of a site's tag
/// assignments. Tagger groups live in one flat arena (each group a
/// contiguous ascending run), with a per-tag integer-keyed map from item to
/// its group's span.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RefinementIndex {
    /// Flat arena of tagger ids; each `(tag, item)` group is one contiguous
    /// ascending run.
    taggers: Vec<NodeId>,
    /// `tag → (item → span)`, indexed densely by [`TagId`].
    by_tag: Vec<FxHashMap<NodeId, Span>>,
}

/// The shared empty per-tag map unknown tags resolve to.
fn empty_map() -> &'static FxHashMap<NodeId, Span> {
    static EMPTY: OnceLock<FxHashMap<NodeId, Span>> = OnceLock::new();
    EMPTY.get_or_init(FxHashMap::default)
}

/// Stack capacity of [`ResolvedRefinement`]: queries rarely carry more than
/// a handful of keywords, so resolving one should not touch the heap.
const INLINE_RESOLVED: usize = 8;

impl RefinementIndex {
    /// Record one `(tag, item)` tagger group. `taggers` must be ascending
    /// (the site model's frozen order) and each `(tag, item)` pair must be
    /// inserted at most once — both hold for
    /// [`crate::sitemodel::SiteModel::tag_assignments`], the only feed.
    pub(crate) fn insert(&mut self, tag: TagId, item: NodeId, taggers: &[NodeId]) {
        // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
        let start = u32::try_from(self.taggers.len()).expect("fewer than 2^32 tagger references");
        // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
        let len = u32::try_from(taggers.len()).expect("fewer than 2^32 taggers per group");
        self.taggers.extend_from_slice(taggers);
        let slot = tag.0 as usize;
        if self.by_tag.len() <= slot {
            self.by_tag.resize_with(slot + 1, FxHashMap::default);
        }
        self.by_tag[slot].insert(item, Span { start, len });
    }

    /// Splice another index's groups in after this one's, preserving both
    /// insertion orders: the arenas concatenate (spans of the appended index
    /// shift by this one's arena length) and the per-tag maps merge. The
    /// sharded clustered build accumulates one partial index per worker
    /// over a contiguous run of `tag_assignments` groups and appends them
    /// **in shard order**, which reproduces the sequential build's arena
    /// byte for byte — the `(tag, item)` disjointness contract of
    /// [`Self::insert`] extends across the appended indexes.
    pub(crate) fn append(&mut self, other: RefinementIndex) {
        // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
        let base = u32::try_from(self.taggers.len()).expect("fewer than 2^32 tagger references");
        self.taggers.extend_from_slice(&other.taggers);
        if self.by_tag.len() < other.by_tag.len() {
            self.by_tag.resize_with(other.by_tag.len(), FxHashMap::default);
        }
        for (slot, by_item) in other.by_tag.into_iter().enumerate() {
            for (item, span) in by_item {
                // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
                let start =
                    base.checked_add(span.start).expect("fewer than 2^32 tagger references");
                self.by_tag[slot].insert(item, Span { start, len: span.len });
            }
        }
    }

    /// Splice a batch of group changes into the index: each `(tag, item)`
    /// key maps to the group's *new* tagger set (ascending; empty = the
    /// group disappeared). The arena is rebuilt hole-free in one pass —
    /// surviving groups keep their relative arena order (changed ones
    /// replaced in place), emptied groups are dropped, and brand-new groups
    /// are appended at the end in ascending `(tag, item)` order — so
    /// [`Self::stats`] stays exact (`entries` is the arena length) and
    /// every group answers [`Self::taggers`] exactly as a from-scratch
    /// rebuild of the post-change site would.
    pub(crate) fn splice(&mut self, changes: &FxHashMap<(TagId, NodeId), Vec<NodeId>>) {
        // Existing groups in arena order, so survivors keep their layout.
        let mut groups: Vec<(u32, TagId, NodeId)> = Vec::new();
        for (slot, by_item) in self.by_tag.iter().enumerate() {
            for (&item, span) in by_item {
                groups.push((span.start, TagId(slot as u32), item));
            }
        }
        groups.sort_unstable_by_key(|&(start, ..)| start);
        let mut arena: Vec<NodeId> = Vec::with_capacity(self.taggers.len());
        for (_, tag, item) in groups {
            let slice: &[NodeId] = match changes.get(&(tag, item)) {
                Some(taggers) => taggers.as_slice(),
                None => {
                    let span = self.by_tag[tag.0 as usize][&item];
                    &self.taggers[span.start as usize..][..span.len as usize]
                }
            };
            if slice.is_empty() {
                self.by_tag[tag.0 as usize].remove(&item);
                continue;
            }
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let start = u32::try_from(arena.len()).expect("fewer than 2^32 tagger references");
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let len = u32::try_from(slice.len()).expect("fewer than 2^32 taggers per group");
            arena.extend_from_slice(slice);
            self.by_tag[tag.0 as usize].insert(item, Span { start, len });
        }
        // Groups the changes introduce (not present even after the walk
        // re-inserted every survivor) append at the end, deterministically.
        let mut fresh: Vec<(TagId, NodeId, &[NodeId])> = changes
            .iter()
            .filter(|&(&(tag, item), taggers)| {
                !taggers.is_empty()
                    && !self.by_tag.get(tag.0 as usize).is_some_and(|m| m.contains_key(&item))
            })
            .map(|(&(tag, item), taggers)| (tag, item, taggers.as_slice()))
            .collect();
        fresh.sort_unstable_by_key(|&(tag, item, _)| (tag, item));
        for (tag, item, taggers) in fresh {
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let start = u32::try_from(arena.len()).expect("fewer than 2^32 tagger references");
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let len = u32::try_from(taggers.len()).expect("fewer than 2^32 taggers per group");
            arena.extend_from_slice(taggers);
            let slot = tag.0 as usize;
            if self.by_tag.len() <= slot {
                self.by_tag.resize_with(slot + 1, FxHashMap::default);
            }
            self.by_tag[slot].insert(item, Span { start, len });
        }
        self.taggers = arena;
    }

    /// `taggers(i, k)` for an interned tag, ascending. Empty for unknown
    /// tags or untagged items.
    pub fn taggers(&self, tag: TagId, item: NodeId) -> &[NodeId] {
        self.by_tag
            .get(tag.0 as usize)
            .and_then(|by_item| by_item.get(&item))
            .map(|span| &self.taggers[span.start as usize..][..span.len as usize])
            .unwrap_or(&[])
    }

    /// Number of `(tag, item)` groups stored.
    pub fn group_count(&self) -> usize {
        self.by_tag.iter().map(FxHashMap::len).sum()
    }

    /// Space statistics under the paper's 10-bytes-per-entry model: one
    /// list per `(tag, item)` group, one entry per tagger reference. This
    /// is the storage the clustered deployment carries *instead of*
    /// probing the site model's item-first tagger maps at query time — the
    /// honest space accounting reports it next to the bound lists (see
    /// [`crate::index::ClusteredIndex::stats_with_refinement`]).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            lists: self.group_count(),
            entries: self.taggers.len(),
            bytes: self.taggers.len() * BYTES_PER_ENTRY,
        }
    }

    /// Pre-resolve one query's tags to their per-tag item maps — once per
    /// query (once per *batch* in the batch paths), so per-candidate exact
    /// scoring does no per-query work at all. `tags` must already be
    /// deduplicated ([`crate::tags::QueryTags`] resolution guarantees it);
    /// tags the index has never seen contribute nothing, exactly like an
    /// unknown keyword in [`crate::sitemodel::SiteModel::query_score`].
    pub fn resolve(&self, tags: &[TagId]) -> ResolvedRefinement<'_> {
        let mut resolved =
            ResolvedRefinement { arena: &self.taggers, maps: InlineVec::new(empty_map()) };
        for &tag in tags {
            if let Some(by_item) = self.by_tag.get(tag.0 as usize) {
                resolved.maps.push(by_item);
            }
        }
        resolved
    }
}

/// One query's pre-resolved view of a [`RefinementIndex`]: the per-tag item
/// maps of the query's (deduplicated) tags, gathered once. Inline for up to
/// eight tags.
#[derive(Debug)]
pub struct ResolvedRefinement<'a> {
    arena: &'a [NodeId],
    maps: InlineVec<&'a FxHashMap<NodeId, Span>, INLINE_RESOLVED>,
}

impl ResolvedRefinement<'_> {
    fn maps(&self) -> &[&FxHashMap<NodeId, Span>] {
        self.maps.as_slice()
    }

    /// Whether no query tag resolved to any stored tagger group (the
    /// defined-empty case: every score is 0).
    pub fn is_empty(&self) -> bool {
        self.maps().is_empty()
    }

    /// The exact score `Σ_k |network ∩ taggers(i, k)|` of one candidate
    /// item for a seeker with the given (ascending) network — the paper's
    /// exposition choice `f = count`, `g = sum`, element-wise equal to
    /// [`crate::sitemodel::SiteModel::query_score`] on the site the index
    /// was built from. Per candidate: one integer-keyed probe and one merge
    /// intersection per query tag; no strings, no allocation.
    pub fn score(&self, network: &[NodeId], item: NodeId) -> f64 {
        let mut total = 0usize;
        for by_item in self.maps() {
            if let Some(span) = by_item.get(&item) {
                let taggers = &self.arena[span.start as usize..][..span.len as usize];
                total += count_intersection(network, taggers);
            }
        }
        total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::TagInterner;

    fn ids(raw: &[u64]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId).collect()
    }

    /// Two tags over two items with interleaved tagger groups.
    fn index() -> (RefinementIndex, TagId, TagId) {
        let mut tags = TagInterner::new();
        let baseball = tags.intern("baseball");
        let museum = tags.intern("museum");
        let mut index = RefinementIndex::default();
        index.insert(baseball, NodeId(100), &ids(&[1, 2, 5]));
        index.insert(museum, NodeId(100), &ids(&[2]));
        index.insert(baseball, NodeId(101), &ids(&[3]));
        (index, baseball, museum)
    }

    #[test]
    fn taggers_come_back_per_tag_and_item() {
        let (index, baseball, museum) = index();
        assert_eq!(index.taggers(baseball, NodeId(100)), ids(&[1, 2, 5]));
        assert_eq!(index.taggers(museum, NodeId(100)), ids(&[2]));
        assert_eq!(index.taggers(baseball, NodeId(101)), ids(&[3]));
        assert!(index.taggers(museum, NodeId(101)).is_empty());
        assert!(index.taggers(TagId(99), NodeId(100)).is_empty());
        assert_eq!(index.group_count(), 3);
    }

    #[test]
    fn resolved_scores_sum_intersections_per_tag() {
        let (index, baseball, museum) = index();
        let resolved = index.resolve(&[baseball, museum]);
        // network {2, 5}: baseball taggers of i100 contribute 2, museum 1.
        assert_eq!(resolved.score(&ids(&[2, 5]), NodeId(100)), 3.0);
        assert_eq!(resolved.score(&ids(&[2, 5]), NodeId(101)), 0.0);
        assert_eq!(resolved.score(&ids(&[3]), NodeId(101)), 1.0);
        assert_eq!(resolved.score(&[], NodeId(100)), 0.0);
    }

    #[test]
    fn unknown_tags_resolve_to_nothing() {
        let (index, baseball, _) = index();
        let resolved = index.resolve(&[TagId(7)]);
        assert!(resolved.is_empty());
        assert_eq!(resolved.score(&ids(&[1, 2, 5]), NodeId(100)), 0.0);
        let resolved = index.resolve(&[baseball, TagId(7)]);
        assert!(!resolved.is_empty());
        assert_eq!(resolved.score(&ids(&[1, 9]), NodeId(100)), 1.0);
    }

    #[test]
    fn append_reproduces_a_single_pass_build() {
        let mut tags = TagInterner::new();
        let baseball = tags.intern("baseball");
        let museum = tags.intern("museum");
        // The group sequence a sequential build would insert in order.
        let groups: Vec<(TagId, NodeId, Vec<NodeId>)> = vec![
            (baseball, NodeId(100), ids(&[1, 2, 5])),
            (museum, NodeId(100), ids(&[2])),
            (baseball, NodeId(101), ids(&[3])),
            (museum, NodeId(102), ids(&[1, 4])),
        ];
        let mut sequential = RefinementIndex::default();
        for (tag, item, taggers) in &groups {
            sequential.insert(*tag, *item, taggers);
        }
        // Two partial indexes over contiguous runs, appended in shard order.
        let mut merged = RefinementIndex::default();
        let mut tail = RefinementIndex::default();
        for (tag, item, taggers) in &groups[..2] {
            merged.insert(*tag, *item, taggers);
        }
        for (tag, item, taggers) in &groups[2..] {
            tail.insert(*tag, *item, taggers);
        }
        merged.append(tail);
        assert_eq!(merged.group_count(), sequential.group_count());
        assert_eq!(merged.stats(), sequential.stats());
        for (tag, item, taggers) in &groups {
            assert_eq!(merged.taggers(*tag, *item), taggers.as_slice());
            assert_eq!(merged.taggers(*tag, *item), sequential.taggers(*tag, *item));
        }
    }

    #[test]
    fn resolve_spills_past_the_inline_capacity() {
        let mut tags = TagInterner::new();
        let mut index = RefinementIndex::default();
        let tag_ids: Vec<TagId> = (0..2 * INLINE_RESOLVED)
            .map(|i| {
                let tag = tags.intern(&format!("tag{i}"));
                index.insert(tag, NodeId(500), &ids(&[i as u64]));
                tag
            })
            .collect();
        let resolved = index.resolve(&tag_ids);
        // The seeker knows every tagger, so each tag contributes exactly 1.
        let network: Vec<NodeId> = (0..2 * INLINE_RESOLVED as u64).map(NodeId).collect();
        assert_eq!(resolved.score(&network, NodeId(500)), (2 * INLINE_RESOLVED) as f64);
    }
}
