//! Keyword-first refinement index for clustered query processing.
//!
//! The clustered index (§6.2, Eq. 1) surfaces candidates through score
//! *upper bounds* and must recompute the exact score `score_k(i, u)` per
//! candidate. Recomputing through [`crate::sitemodel::SiteModel`]'s
//! item-first `taggers(i, k)` orientation hashes the keyword *string* for
//! every candidate — the dominant cost of the clustered row in the E8
//! sweep. [`RefinementIndex`] stores the same tagger groups in a
//! keyword-first orientation, `tag → item → taggers`, keyed on interned
//! [`TagId`]s: a query resolves its tags to per-tag item maps **once**
//! ([`RefinementIndex::resolve`]), and each candidate's exact score is then
//! a handful of integer-keyed probes plus merge intersections of sorted id
//! runs — zero string hashing and zero allocation per candidate.
//!
//! This is the cheap random access the threshold-algorithm lineage (Fagin
//! et al.) assumes; clustering violated it, and this orientation restores
//! it without giving up the clustered index's space savings.
//!
//! The arena itself has two physical layouts ([`crate::posting::Layout`]):
//! raw (`Vec<NodeId>`, zero decode cost) and compressed (each group's
//! ascending tagger run varint delta-encoded independently — first id
//! absolute, the rest gaps — so the hot merge-intersection of
//! [`ResolvedRefinement::score`] stays a sequential decode and every
//! group's byte size is a pure function of its contents, independent of
//! arena order: delta-maintained and rebuilt compressed arenas occupy
//! identical bytes). Groups longer than `SKIP_EVERY` carry a per-block
//! skip header (the block's last tagger plus its payload byte length), so
//! an intersection against a small seeker network hops over blocks that
//! cannot match without decoding them — the Zipf-head `(tag, item)` groups
//! of a large site are exactly the ones a query's refinement probes most.

use crate::index::IndexStats;
use crate::inline::InlineVec;
use crate::posting::{Layout, BYTES_PER_ENTRY, SKIP_EVERY};
use crate::sitemodel::count_intersection;
use crate::tags::TagId;
use crate::varint::{get_u64, put_u64};
use serde::{Deserialize, Serialize};
use socialscope_graph::{FxHashMap, NodeId};
use std::borrow::Cow;
use std::sync::OnceLock;

/// Location of one `(tag, item)` tagger group inside the shared arena:
/// `start` is an element index into the raw arena or a byte offset into the
/// compressed one; `len` is always the tagger *count*.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Span {
    start: u32,
    len: u32,
}

/// The arena's physical form (see [`Layout`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ArenaRepr {
    /// Flat tagger ids; each group a contiguous ascending run.
    Raw(Vec<NodeId>),
    /// Per-group varint delta encodings, concatenated; `len` is the total
    /// logical tagger-reference count (what [`ArenaRepr::Raw`] would hold).
    Packed {
        /// The concatenated group encodings.
        bytes: Vec<u8>,
        /// Total tagger references across all groups.
        len: usize,
    },
}

impl Default for ArenaRepr {
    fn default() -> Self {
        ArenaRepr::Raw(Vec::new())
    }
}

/// Append one group's ascending tagger run. Canonical — a pure function of
/// the run. Two forms, selected by the group's *length* (part of the span,
/// so decoders know which to expect):
///
/// * `len <= SKIP_EVERY`: a flat gap stream — first id absolute, the rest
///   gaps from the previous id;
/// * `len > SKIP_EVERY`: blocks of up to `SKIP_EVERY` ids, each prefixed
///   by a skip header — `varint(block_last - prev_block_last)` then
///   `varint(payload_byte_len)` — over the same continuous gap stream, so a
///   sequential decode just steps past the headers while an intersection
///   can hop over whole blocks whose last id falls below its next probe.
fn encode_group(out: &mut Vec<u8>, taggers: &[NodeId]) {
    let mut prev = 0u64;
    if taggers.len() <= SKIP_EVERY {
        for (idx, &tagger) in taggers.iter().enumerate() {
            put_u64(out, if idx == 0 { tagger.0 } else { tagger.0 - prev });
            prev = tagger.0;
        }
        return;
    }
    let mut first = true;
    let mut prev_last = 0u64;
    let mut payload = Vec::new();
    for block in taggers.chunks(SKIP_EVERY) {
        payload.clear();
        for &tagger in block {
            put_u64(&mut payload, if first { tagger.0 } else { tagger.0 - prev });
            first = false;
            prev = tagger.0;
        }
        // `prev` is now the block's last id; ascending runs keep the header
        // delta non-negative.
        put_u64(out, prev - prev_last);
        put_u64(out, payload.len() as u64);
        out.extend_from_slice(&payload);
        prev_last = prev;
    }
}

/// Decode one group encoded by [`encode_group`].
fn decode_group(bytes: &[u8], span: Span) -> Vec<NodeId> {
    let len = span.len as usize;
    let mut out = Vec::with_capacity(len);
    let mut pos = span.start as usize;
    let mut prev = 0u64;
    if len <= SKIP_EVERY {
        for idx in 0..len {
            let raw = get_u64(bytes, &mut pos);
            prev = if idx == 0 { raw } else { prev + raw };
            out.push(NodeId(prev));
        }
        return out;
    }
    let mut first = true;
    let mut remaining = len;
    while remaining > 0 {
        let _block_last = get_u64(bytes, &mut pos);
        let _payload_len = get_u64(bytes, &mut pos);
        for _ in 0..remaining.min(SKIP_EVERY) {
            let raw = get_u64(bytes, &mut pos);
            prev = if first { raw } else { prev + raw };
            first = false;
            out.push(NodeId(prev));
        }
        remaining -= remaining.min(SKIP_EVERY);
    }
    out
}

/// `|network ∩ group|` with the group decoded on the fly — the compressed
/// counterpart of [`count_intersection`], zero allocation. On long groups
/// the skip headers let the scan jump whole blocks whose last id is below
/// the next undecided network member; a seeker's network is typically tiny
/// next to a Zipf-head tagger group, so most blocks are never decoded.
fn count_packed_intersection(network: &[NodeId], bytes: &[u8], span: Span) -> usize {
    let len = span.len as usize;
    let mut pos = span.start as usize;
    let mut prev = 0u64;
    let mut ni = 0usize;
    let mut count = 0usize;
    if len <= SKIP_EVERY {
        for idx in 0..len {
            let raw = get_u64(bytes, &mut pos);
            prev = if idx == 0 { raw } else { prev + raw };
            while ni < network.len() && network[ni].0 < prev {
                ni += 1;
            }
            if ni == network.len() {
                break;
            }
            if network[ni].0 == prev {
                count += 1;
                ni += 1;
            }
        }
        return count;
    }
    let mut first = true;
    let mut prev_last = 0u64;
    let mut remaining = len;
    while remaining > 0 && ni < network.len() {
        let block_last = prev_last + get_u64(bytes, &mut pos);
        let payload_len = get_u64(bytes, &mut pos) as usize;
        let in_block = remaining.min(SKIP_EVERY);
        if network[ni].0 > block_last {
            // Nothing in this block can match: hop the payload, and let the
            // next block's first gap resolve against this block's last id.
            pos += payload_len;
            prev = block_last;
            first = false;
        } else {
            for _ in 0..in_block {
                let raw = get_u64(bytes, &mut pos);
                prev = if first { raw } else { prev + raw };
                first = false;
                while ni < network.len() && network[ni].0 < prev {
                    ni += 1;
                }
                if ni == network.len() {
                    break;
                }
                if network[ni].0 == prev {
                    count += 1;
                    ni += 1;
                }
            }
        }
        prev_last = block_last;
        remaining -= in_block;
    }
    count
}

/// The keyword-first `tag → item → taggers` orientation of a site's tag
/// assignments. Tagger groups live in one flat arena (raw or compressed,
/// see [`Layout`]), with a per-tag integer-keyed map from item to its
/// group's span.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RefinementIndex {
    /// The arena of tagger ids, in one of the two physical layouts.
    arena: ArenaRepr,
    /// `tag → (item → span)`, indexed densely by [`TagId`].
    by_tag: Vec<FxHashMap<NodeId, Span>>,
}

/// The shared empty per-tag map unknown tags resolve to.
fn empty_map() -> &'static FxHashMap<NodeId, Span> {
    static EMPTY: OnceLock<FxHashMap<NodeId, Span>> = OnceLock::new();
    EMPTY.get_or_init(FxHashMap::default)
}

/// Stack capacity of [`ResolvedRefinement`]: queries rarely carry more than
/// a handful of keywords, so resolving one should not touch the heap.
const INLINE_RESOLVED: usize = 8;

impl RefinementIndex {
    /// The arena's current physical layout.
    pub fn layout(&self) -> Layout {
        match &self.arena {
            ArenaRepr::Raw(_) => Layout::Raw,
            ArenaRepr::Packed { .. } => Layout::Compressed,
        }
    }

    /// Convert the arena to `layout` in place (no-op when already there).
    /// Groups keep their relative arena order; spans are rewritten between
    /// element-index and byte-offset forms. Lossless and canonical per
    /// group, so conversion commutes with [`Self::splice`] byte-for-byte.
    pub(crate) fn set_layout(&mut self, layout: Layout) {
        if self.layout() == layout {
            return;
        }
        // Groups in arena order, so the relative layout survives the trip.
        let mut groups: Vec<(u32, TagId, NodeId, u32)> = Vec::new();
        for (slot, by_item) in self.by_tag.iter().enumerate() {
            for (&item, span) in by_item {
                groups.push((span.start, TagId(slot as u32), item, span.len));
            }
        }
        groups.sort_unstable_by_key(|&(start, ..)| start);
        match std::mem::take(&mut self.arena) {
            ArenaRepr::Raw(taggers) => {
                let mut bytes = Vec::new();
                for (start, tag, item, len) in groups {
                    // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
                    let new_start =
                        u32::try_from(bytes.len()).expect("fewer than 2^32 arena bytes");
                    encode_group(&mut bytes, &taggers[start as usize..][..len as usize]);
                    self.by_tag[tag.0 as usize].insert(item, Span { start: new_start, len });
                }
                self.arena = ArenaRepr::Packed { bytes, len: taggers.len() };
            }
            ArenaRepr::Packed { bytes, len } => {
                let mut taggers: Vec<NodeId> = Vec::with_capacity(len);
                for (start, tag, item, count) in groups {
                    // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
                    let new_start =
                        u32::try_from(taggers.len()).expect("fewer than 2^32 tagger references");
                    taggers.extend(decode_group(&bytes, Span { start, len: count }));
                    self.by_tag[tag.0 as usize].insert(item, Span { start: new_start, len: count });
                }
                self.arena = ArenaRepr::Raw(taggers);
            }
        }
    }

    /// Record one `(tag, item)` tagger group. `taggers` must be ascending
    /// (the site model's frozen order) and each `(tag, item)` pair must be
    /// inserted at most once — both hold for
    /// [`crate::sitemodel::SiteModel::tag_assignments`], the only feed.
    /// Mutations patch the raw form (a compressed arena converts first and
    /// the caller re-compresses once at the end of the build; the codec is
    /// canonical, so the round trip is exact).
    pub(crate) fn insert(&mut self, tag: TagId, item: NodeId, taggers: &[NodeId]) {
        self.set_layout(Layout::Raw);
        let ArenaRepr::Raw(arena) = &mut self.arena else {
            return;
        };
        // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
        let start = u32::try_from(arena.len()).expect("fewer than 2^32 tagger references");
        // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
        let len = u32::try_from(taggers.len()).expect("fewer than 2^32 taggers per group");
        arena.extend_from_slice(taggers);
        let slot = tag.0 as usize;
        if self.by_tag.len() <= slot {
            self.by_tag.resize_with(slot + 1, FxHashMap::default);
        }
        self.by_tag[slot].insert(item, Span { start, len });
    }

    /// Splice another index's groups in after this one's, preserving both
    /// insertion orders: the arenas concatenate (spans of the appended index
    /// shift by this one's arena length) and the per-tag maps merge. The
    /// sharded clustered build accumulates one partial index per worker
    /// over a contiguous run of `tag_assignments` groups and appends them
    /// **in shard order**, which reproduces the sequential build's arena
    /// byte for byte — the `(tag, item)` disjointness contract of
    /// [`Self::insert`] extends across the appended indexes.
    pub(crate) fn append(&mut self, mut other: RefinementIndex) {
        other.set_layout(Layout::Raw);
        let ArenaRepr::Raw(other_taggers) = other.arena else {
            return;
        };
        self.set_layout(Layout::Raw);
        let ArenaRepr::Raw(arena) = &mut self.arena else {
            return;
        };
        // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
        let base = u32::try_from(arena.len()).expect("fewer than 2^32 tagger references");
        arena.extend_from_slice(&other_taggers);
        if self.by_tag.len() < other.by_tag.len() {
            self.by_tag.resize_with(other.by_tag.len(), FxHashMap::default);
        }
        for (slot, by_item) in other.by_tag.into_iter().enumerate() {
            for (item, span) in by_item {
                // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
                let start =
                    base.checked_add(span.start).expect("fewer than 2^32 tagger references");
                self.by_tag[slot].insert(item, Span { start, len: span.len });
            }
        }
    }

    /// Splice a batch of group changes into the index: each `(tag, item)`
    /// key maps to the group's *new* tagger set (ascending; empty = the
    /// group disappeared). The arena is rebuilt hole-free in one pass —
    /// surviving groups keep their relative arena order (changed ones
    /// replaced in place), emptied groups are dropped, and brand-new groups
    /// are appended at the end in ascending `(tag, item)` order — so
    /// [`Self::stats`] stays exact (`entries` is the arena length) and
    /// every group answers [`Self::taggers`] exactly as a from-scratch
    /// rebuild of the post-change site would. A compressed arena is
    /// re-encoded after the splice (the whole arena is the touched run —
    /// the raw splice already rewrites it end to end), and because every
    /// group encodes independently, the re-encoded arena occupies exactly
    /// the bytes a from-scratch compressed rebuild would.
    pub(crate) fn splice(&mut self, changes: &FxHashMap<(TagId, NodeId), Vec<NodeId>>) {
        let restore = self.layout();
        self.set_layout(Layout::Raw);
        let ArenaRepr::Raw(old) = std::mem::take(&mut self.arena) else {
            return;
        };
        // Existing groups in arena order, so survivors keep their layout.
        let mut groups: Vec<(u32, TagId, NodeId)> = Vec::new();
        for (slot, by_item) in self.by_tag.iter().enumerate() {
            for (&item, span) in by_item {
                groups.push((span.start, TagId(slot as u32), item));
            }
        }
        groups.sort_unstable_by_key(|&(start, ..)| start);
        let mut arena: Vec<NodeId> = Vec::with_capacity(old.len());
        for (_, tag, item) in groups {
            let slice: &[NodeId] = match changes.get(&(tag, item)) {
                Some(taggers) => taggers.as_slice(),
                None => {
                    let span = self.by_tag[tag.0 as usize][&item];
                    &old[span.start as usize..][..span.len as usize]
                }
            };
            if slice.is_empty() {
                self.by_tag[tag.0 as usize].remove(&item);
                continue;
            }
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let start = u32::try_from(arena.len()).expect("fewer than 2^32 tagger references");
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let len = u32::try_from(slice.len()).expect("fewer than 2^32 taggers per group");
            arena.extend_from_slice(slice);
            self.by_tag[tag.0 as usize].insert(item, Span { start, len });
        }
        // Groups the changes introduce (not present even after the walk
        // re-inserted every survivor) append at the end, deterministically.
        let mut fresh: Vec<(TagId, NodeId, &[NodeId])> = changes
            .iter()
            .filter(|&(&(tag, item), taggers)| {
                !taggers.is_empty()
                    && !self.by_tag.get(tag.0 as usize).is_some_and(|m| m.contains_key(&item))
            })
            .map(|(&(tag, item), taggers)| (tag, item, taggers.as_slice()))
            .collect();
        fresh.sort_unstable_by_key(|&(tag, item, _)| (tag, item));
        for (tag, item, taggers) in fresh {
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let start = u32::try_from(arena.len()).expect("fewer than 2^32 tagger references");
            // lint: allow(no_panic, reason = "true invariant: u32 arena spans are the documented design envelope; a site with 2^32 tagger references cannot be built at all")
            let len = u32::try_from(taggers.len()).expect("fewer than 2^32 taggers per group");
            arena.extend_from_slice(taggers);
            let slot = tag.0 as usize;
            if self.by_tag.len() <= slot {
                self.by_tag.resize_with(slot + 1, FxHashMap::default);
            }
            self.by_tag[slot].insert(item, Span { start, len });
        }
        self.arena = ArenaRepr::Raw(arena);
        self.set_layout(restore);
    }

    /// `taggers(i, k)` for an interned tag, ascending. Empty for unknown
    /// tags or untagged items. Borrowed straight out of a raw arena;
    /// decoded (one short allocation) out of a compressed one — the hot
    /// query path never calls this, it streams through
    /// [`ResolvedRefinement::score`] instead.
    pub fn taggers(&self, tag: TagId, item: NodeId) -> Cow<'_, [NodeId]> {
        let Some(span) =
            self.by_tag.get(tag.0 as usize).and_then(|by_item| by_item.get(&item)).copied()
        else {
            return Cow::Borrowed(&[]);
        };
        match &self.arena {
            ArenaRepr::Raw(taggers) => {
                Cow::Borrowed(&taggers[span.start as usize..][..span.len as usize])
            }
            ArenaRepr::Packed { bytes, .. } => Cow::Owned(decode_group(bytes, span)),
        }
    }

    /// Number of `(tag, item)` groups stored.
    pub fn group_count(&self) -> usize {
        self.by_tag.iter().map(FxHashMap::len).sum()
    }

    /// Total tagger references across all groups (the logical arena
    /// length, whatever the layout).
    fn entry_count(&self) -> usize {
        match &self.arena {
            ArenaRepr::Raw(taggers) => taggers.len(),
            ArenaRepr::Packed { len, .. } => *len,
        }
    }

    /// Actual heap bytes of the arena and its span maps — the refinement
    /// component of [`crate::index::MemoryProfile`]. Length-based (never
    /// capacity-based), so maintained and rebuilt indexes report identical
    /// footprints; and per-group compressed encodings are order-
    /// independent, so the compressed byte count is too.
    pub(crate) fn heap_bytes(&self) -> usize {
        let arena = match &self.arena {
            ArenaRepr::Raw(taggers) => taggers.len() * std::mem::size_of::<NodeId>(),
            ArenaRepr::Packed { bytes, .. } => bytes.len(),
        };
        let maps: usize =
            self.by_tag.iter().map(|m| m.len() * (std::mem::size_of::<(NodeId, Span)>() + 1)).sum();
        arena + maps + self.by_tag.len() * std::mem::size_of::<FxHashMap<NodeId, Span>>()
    }

    /// Space statistics under the paper's 10-bytes-per-entry model: one
    /// list per `(tag, item)` group, one entry per tagger reference. This
    /// is the storage the clustered deployment carries *instead of*
    /// probing the site model's item-first tagger maps at query time — the
    /// honest space accounting reports it next to the bound lists (see
    /// [`crate::index::ClusteredIndex::stats_with_refinement`]).
    pub fn stats(&self) -> IndexStats {
        let entries = self.entry_count();
        IndexStats {
            lists: self.group_count(),
            entries,
            bytes: entries * BYTES_PER_ENTRY,
            heap_bytes: self.heap_bytes(),
        }
    }

    /// Pre-resolve one query's tags to their per-tag item maps — once per
    /// query (once per *batch* in the batch paths), so per-candidate exact
    /// scoring does no per-query work at all. `tags` must already be
    /// deduplicated ([`crate::tags::QueryTags`] resolution guarantees it);
    /// tags the index has never seen contribute nothing, exactly like an
    /// unknown keyword in [`crate::sitemodel::SiteModel::query_score`].
    pub fn resolve(&self, tags: &[TagId]) -> ResolvedRefinement<'_> {
        let mut resolved =
            ResolvedRefinement { arena: &self.arena, maps: InlineVec::new(empty_map()) };
        for &tag in tags {
            if let Some(by_item) = self.by_tag.get(tag.0 as usize) {
                resolved.maps.push(by_item);
            }
        }
        resolved
    }
}

/// One query's pre-resolved view of a [`RefinementIndex`]: the per-tag item
/// maps of the query's (deduplicated) tags, gathered once. Inline for up to
/// eight tags.
#[derive(Debug)]
pub struct ResolvedRefinement<'a> {
    arena: &'a ArenaRepr,
    maps: InlineVec<&'a FxHashMap<NodeId, Span>, INLINE_RESOLVED>,
}

impl ResolvedRefinement<'_> {
    fn maps(&self) -> &[&FxHashMap<NodeId, Span>] {
        self.maps.as_slice()
    }

    /// Whether no query tag resolved to any stored tagger group (the
    /// defined-empty case: every score is 0).
    pub fn is_empty(&self) -> bool {
        self.maps().is_empty()
    }

    /// The exact score `Σ_k |network ∩ taggers(i, k)|` of one candidate
    /// item for a seeker with the given (ascending) network — the paper's
    /// exposition choice `f = count`, `g = sum`, element-wise equal to
    /// [`crate::sitemodel::SiteModel::query_score`] on the site the index
    /// was built from. Per candidate: one integer-keyed probe and one merge
    /// intersection per query tag — streamed straight off the compressed
    /// arena when packed; no strings, no allocation, either layout.
    pub fn score(&self, network: &[NodeId], item: NodeId) -> f64 {
        let mut total = 0usize;
        for by_item in self.maps() {
            if let Some(&span) = by_item.get(&item) {
                total += match self.arena {
                    ArenaRepr::Raw(taggers) => count_intersection(
                        network,
                        &taggers[span.start as usize..][..span.len as usize],
                    ),
                    ArenaRepr::Packed { bytes, .. } => {
                        count_packed_intersection(network, bytes, span)
                    }
                };
            }
        }
        total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::TagInterner;

    fn ids(raw: &[u64]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId).collect()
    }

    /// Two tags over two items with interleaved tagger groups.
    fn index() -> (RefinementIndex, TagId, TagId) {
        let mut tags = TagInterner::new();
        let baseball = tags.intern("baseball");
        let museum = tags.intern("museum");
        let mut index = RefinementIndex::default();
        index.insert(baseball, NodeId(100), &ids(&[1, 2, 5]));
        index.insert(museum, NodeId(100), &ids(&[2]));
        index.insert(baseball, NodeId(101), &ids(&[3]));
        (index, baseball, museum)
    }

    #[test]
    fn taggers_come_back_per_tag_and_item() {
        let (index, baseball, museum) = index();
        assert_eq!(index.taggers(baseball, NodeId(100)), ids(&[1, 2, 5]));
        assert_eq!(index.taggers(museum, NodeId(100)), ids(&[2]));
        assert_eq!(index.taggers(baseball, NodeId(101)), ids(&[3]));
        assert!(index.taggers(museum, NodeId(101)).is_empty());
        assert!(index.taggers(TagId(99), NodeId(100)).is_empty());
        assert_eq!(index.group_count(), 3);
    }

    #[test]
    fn resolved_scores_sum_intersections_per_tag() {
        let (index, baseball, museum) = index();
        let resolved = index.resolve(&[baseball, museum]);
        // network {2, 5}: baseball taggers of i100 contribute 2, museum 1.
        assert_eq!(resolved.score(&ids(&[2, 5]), NodeId(100)), 3.0);
        assert_eq!(resolved.score(&ids(&[2, 5]), NodeId(101)), 0.0);
        assert_eq!(resolved.score(&ids(&[3]), NodeId(101)), 1.0);
        assert_eq!(resolved.score(&[], NodeId(100)), 0.0);
    }

    #[test]
    fn unknown_tags_resolve_to_nothing() {
        let (index, baseball, _) = index();
        let resolved = index.resolve(&[TagId(7)]);
        assert!(resolved.is_empty());
        assert_eq!(resolved.score(&ids(&[1, 2, 5]), NodeId(100)), 0.0);
        let resolved = index.resolve(&[baseball, TagId(7)]);
        assert!(!resolved.is_empty());
        assert_eq!(resolved.score(&ids(&[1, 9]), NodeId(100)), 1.0);
    }

    #[test]
    fn append_reproduces_a_single_pass_build() {
        let mut tags = TagInterner::new();
        let baseball = tags.intern("baseball");
        let museum = tags.intern("museum");
        // The group sequence a sequential build would insert in order.
        let groups: Vec<(TagId, NodeId, Vec<NodeId>)> = vec![
            (baseball, NodeId(100), ids(&[1, 2, 5])),
            (museum, NodeId(100), ids(&[2])),
            (baseball, NodeId(101), ids(&[3])),
            (museum, NodeId(102), ids(&[1, 4])),
        ];
        let mut sequential = RefinementIndex::default();
        for (tag, item, taggers) in &groups {
            sequential.insert(*tag, *item, taggers);
        }
        // Two partial indexes over contiguous runs, appended in shard order.
        let mut merged = RefinementIndex::default();
        let mut tail = RefinementIndex::default();
        for (tag, item, taggers) in &groups[..2] {
            merged.insert(*tag, *item, taggers);
        }
        for (tag, item, taggers) in &groups[2..] {
            tail.insert(*tag, *item, taggers);
        }
        merged.append(tail);
        assert_eq!(merged.group_count(), sequential.group_count());
        assert_eq!(merged.stats(), sequential.stats());
        for (tag, item, taggers) in &groups {
            assert_eq!(merged.taggers(*tag, *item), taggers.as_slice());
            assert_eq!(
                merged.taggers(*tag, *item).as_ref(),
                sequential.taggers(*tag, *item).as_ref()
            );
        }
    }

    #[test]
    fn resolve_spills_past_the_inline_capacity() {
        let mut tags = TagInterner::new();
        let mut index = RefinementIndex::default();
        let tag_ids: Vec<TagId> = (0..2 * INLINE_RESOLVED)
            .map(|i| {
                let tag = tags.intern(&format!("tag{i}"));
                index.insert(tag, NodeId(500), &ids(&[i as u64]));
                tag
            })
            .collect();
        let resolved = index.resolve(&tag_ids);
        // The seeker knows every tagger, so each tag contributes exactly 1.
        let network: Vec<NodeId> = (0..2 * INLINE_RESOLVED as u64).map(NodeId).collect();
        assert_eq!(resolved.score(&network, NodeId(500)), (2 * INLINE_RESOLVED) as f64);
    }

    /// The compressed arena answers every access identically and survives
    /// the round trip.
    #[test]
    fn compressed_arena_round_trips_every_access_path() {
        let (mut index, baseball, museum) = index();
        let raw = index.clone();
        index.set_layout(Layout::Compressed);
        assert_eq!(index.layout(), Layout::Compressed);
        assert_eq!(index.group_count(), raw.group_count());
        assert_eq!(index.stats().entries, raw.stats().entries);
        for &(tag, item) in
            &[(baseball, NodeId(100)), (museum, NodeId(100)), (baseball, NodeId(101))]
        {
            assert_eq!(index.taggers(tag, item).as_ref(), raw.taggers(tag, item).as_ref());
        }
        let resolved = index.resolve(&[baseball, museum]);
        let raw_resolved = raw.resolve(&[baseball, museum]);
        for network in [ids(&[2, 5]), ids(&[1]), ids(&[]), ids(&[1, 2, 3, 4, 5, 9])] {
            for item in [NodeId(100), NodeId(101), NodeId(999)] {
                assert_eq!(
                    resolved.score(&network, item),
                    raw_resolved.score(&network, item),
                    "network {network:?} item {item}"
                );
            }
        }
        index.set_layout(Layout::Raw);
        assert_eq!(index.taggers(baseball, NodeId(100)).as_ref(), ids(&[1, 2, 5]).as_slice());
    }

    /// Splicing a compressed arena re-encodes canonically: the bytes match
    /// a from-scratch compressed build of the post-change state.
    #[test]
    fn compressed_splice_is_canonical() {
        let (mut maintained, baseball, museum) = index();
        maintained.set_layout(Layout::Compressed);
        let mut changes: FxHashMap<(TagId, NodeId), Vec<NodeId>> = FxHashMap::default();
        changes.insert((baseball, NodeId(100)), ids(&[1, 2, 5, 9]));
        changes.insert((museum, NodeId(100)), Vec::new());
        changes.insert((museum, NodeId(102)), ids(&[4, 7]));
        maintained.splice(&changes);
        assert_eq!(maintained.layout(), Layout::Compressed);

        let mut tags = TagInterner::new();
        let b2 = tags.intern("baseball");
        let m2 = tags.intern("museum");
        assert_eq!((b2, m2), (baseball, museum));
        let mut rebuilt = RefinementIndex::default();
        rebuilt.insert(baseball, NodeId(100), &ids(&[1, 2, 5, 9]));
        rebuilt.insert(baseball, NodeId(101), &ids(&[3]));
        rebuilt.insert(museum, NodeId(102), &ids(&[4, 7]));
        rebuilt.set_layout(Layout::Compressed);

        assert_eq!(maintained.group_count(), rebuilt.group_count());
        assert_eq!(maintained.stats(), rebuilt.stats(), "entries and heap bytes must agree");
        for &(tag, item) in &[
            (baseball, NodeId(100)),
            (baseball, NodeId(101)),
            (museum, NodeId(100)),
            (museum, NodeId(102)),
        ] {
            assert_eq!(
                maintained.taggers(tag, item).as_ref(),
                rebuilt.taggers(tag, item).as_ref(),
                "group ({tag:?}, {item})"
            );
        }
    }

    /// Groups longer than `SKIP_EVERY` take the block-skip form: they
    /// must round-trip, answer intersections identically to raw for
    /// networks that land in any block (or none), and splice canonically.
    #[test]
    fn block_skip_groups_match_raw_on_every_network() {
        let mut tags = TagInterner::new();
        let tag = tags.intern("popular");
        let other = tags.intern("niche");
        // One huge group (several blocks, irregular gaps), one exactly at
        // the flat/blocked boundary, one just past it, and a tiny one.
        // Strictly ascending with irregular gaps (steps of 3/6/6 repeating).
        let huge: Vec<NodeId> = (0..200u64).map(|t| NodeId(t * 5 + (t % 3))).collect();
        let edge: Vec<NodeId> = (0..SKIP_EVERY as u64).map(|t| NodeId(t * 7)).collect();
        let past: Vec<NodeId> = (0..SKIP_EVERY as u64 + 1).map(|t| NodeId(t * 7)).collect();
        let mut raw = RefinementIndex::default();
        raw.insert(tag, NodeId(1_000), &huge);
        raw.insert(tag, NodeId(1_001), &edge);
        raw.insert(other, NodeId(1_002), &past);
        raw.insert(other, NodeId(1_003), &ids(&[5]));
        let mut packed = raw.clone();
        packed.set_layout(Layout::Compressed);

        for (tag, item, expected) in [
            (tag, NodeId(1_000), &huge),
            (tag, NodeId(1_001), &edge),
            (other, NodeId(1_002), &past),
        ] {
            assert_eq!(packed.taggers(tag, item).as_ref(), expected.as_slice());
        }

        let raw_resolved = raw.resolve(&[tag, other]);
        let packed_resolved = packed.resolve(&[tag, other]);
        let networks: Vec<Vec<NodeId>> = vec![
            Vec::new(),
            ids(&[0]),                                     // first block only
            ids(&[995, 996, 997, 998]),                    // last block only (996 = max)
            ids(&[9_999]),                                 // beyond every block
            vec![huge[1], huge[60], huge[120], huge[199]], // sparse across blocks
            ids(&[2, 4, 8]),                               // misses between entries
            huge.clone(),                                  // every tagger
        ];
        for network in &networks {
            for item in [NodeId(1_000), NodeId(1_001), NodeId(1_002), NodeId(1_003)] {
                assert_eq!(
                    packed_resolved.score(network, item),
                    raw_resolved.score(network, item),
                    "network {network:?} item {item}"
                );
            }
        }

        // Splicing a blocked group re-encodes canonically.
        let mut grown = huge.clone();
        grown.push(NodeId(10_000));
        let mut changes: FxHashMap<(TagId, NodeId), Vec<NodeId>> = FxHashMap::default();
        changes.insert((tag, NodeId(1_000)), grown.clone());
        packed.splice(&changes);
        let mut rebuilt = raw.clone();
        let mut rebuild_changes: FxHashMap<(TagId, NodeId), Vec<NodeId>> = FxHashMap::default();
        rebuild_changes.insert((tag, NodeId(1_000)), grown.clone());
        rebuilt.splice(&rebuild_changes);
        rebuilt.set_layout(Layout::Compressed);
        assert_eq!(packed.stats(), rebuilt.stats(), "splice must stay canonical");
        assert_eq!(packed.taggers(tag, NodeId(1_000)).as_ref(), grown.as_slice());
    }

    /// The compressed arena is actually smaller on dense ascending runs.
    #[test]
    fn compressed_arena_shrinks() {
        let mut tags = TagInterner::new();
        let tag = tags.intern("popular");
        let mut index = RefinementIndex::default();
        for item in 0..50u64 {
            let taggers: Vec<NodeId> = (0..40).map(|t| NodeId(item * 100 + t)).collect();
            index.insert(tag, NodeId(10_000 + item), &taggers);
        }
        let raw_bytes = index.heap_bytes();
        index.set_layout(Layout::Compressed);
        let packed_bytes = index.heap_bytes();
        assert!(packed_bytes * 2 < raw_bytes, "compressed {packed_bytes} vs raw {raw_bytes}");
    }
}
