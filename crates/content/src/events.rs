//! Tagging events: the unit of live index maintenance.
//!
//! The paper models a social content site as a continuous stream of social
//! activity — users keep tagging (and un-tagging) items after any index
//! snapshot is built. A [`TagEvent`] is one such action. Batches of events
//! drive the whole delta path: [`crate::sitemodel::SiteModel::apply`]
//! updates the frozen site primitives in place, and
//! [`crate::index::ExactIndex::apply`] /
//! [`crate::index::ClusteredIndex::apply`] then patch the inverted indexes
//! to exactly the state a from-scratch rebuild would produce — without the
//! rebuild.

use serde::{Deserialize, Serialize};
use socialscope_graph::NodeId;

/// One tagging action on the site: a user assigning a tag to an item, or
/// retracting a previous assignment.
///
/// Events are idempotent at application time: assigning a `(tagger, item,
/// tag)` triple that is already present, or retracting one that is absent,
/// is a no-op everywhere in the delta path (site model and indexes alike),
/// so replaying a batch — or interleaving duplicates into one — cannot
/// drift the maintained state away from a rebuild.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagEvent {
    /// A user tagged an item.
    Assign {
        /// The user performing the tagging.
        tagger: NodeId,
        /// The item being tagged.
        item: NodeId,
        /// The tag text (normalized to lowercase at application time).
        tag: String,
    },
    /// A user removed their tag from an item.
    Retract {
        /// The user retracting their assignment.
        tagger: NodeId,
        /// The item the tag is removed from.
        item: NodeId,
        /// The tag text (normalized to lowercase at application time).
        tag: String,
    },
}

impl TagEvent {
    /// Build an [`TagEvent::Assign`] event.
    pub fn assign(tagger: NodeId, item: NodeId, tag: impl Into<String>) -> Self {
        TagEvent::Assign { tagger, item, tag: tag.into() }
    }

    /// Build a [`TagEvent::Retract`] event.
    pub fn retract(tagger: NodeId, item: NodeId, tag: impl Into<String>) -> Self {
        TagEvent::Retract { tagger, item, tag: tag.into() }
    }

    /// The user performing the action.
    pub fn tagger(&self) -> NodeId {
        match self {
            TagEvent::Assign { tagger, .. } | TagEvent::Retract { tagger, .. } => *tagger,
        }
    }

    /// The item acted on.
    pub fn item(&self) -> NodeId {
        match self {
            TagEvent::Assign { item, .. } | TagEvent::Retract { item, .. } => *item,
        }
    }

    /// The raw tag text of the event (not yet normalized).
    pub fn tag(&self) -> &str {
        match self {
            TagEvent::Assign { tag, .. } | TagEvent::Retract { tag, .. } => tag.as_str(),
        }
    }

    /// Whether this is an [`TagEvent::Assign`] event.
    pub fn is_assign(&self) -> bool {
        matches!(self, TagEvent::Assign { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_both_variants() {
        let a = TagEvent::assign(NodeId(1), NodeId(2), "Baseball");
        let r = TagEvent::retract(NodeId(3), NodeId(4), "museum");
        assert!(a.is_assign());
        assert!(!r.is_assign());
        assert_eq!((a.tagger(), a.item(), a.tag()), (NodeId(1), NodeId(2), "Baseball"));
        assert_eq!((r.tagger(), r.item(), r.tag()), (NodeId(3), NodeId(4), "museum"));
    }
}
