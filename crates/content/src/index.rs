//! Inverted indexes for network-aware search (paper §6.2).
//!
//! * [`ExactIndex`] — one inverted list per `(tag, user)` pair holding exact
//!   scores `score_k(i, u)`. Fast at query time, enormous in space: the
//!   paper's back-of-envelope for a moderate site is ≈ 1 TB.
//! * [`ClusteredIndex`] — one list per `(tag, cluster)` holding score
//!   *upper bounds* over the cluster's members (Eq. 1). Much smaller, but
//!   exact scores must be recomputed at query time for the candidates the
//!   bounds surface. Recomputation goes through an embedded keyword-first
//!   [`RefinementIndex`] (`tag → item → taggers` on interned [`TagId`]s):
//!   each query pre-resolves its tags once — once per *batch* in the batch
//!   path — and every candidate then costs one integer-keyed probe plus one
//!   sorted merge intersection per tag, with no string hashing and no
//!   per-candidate allocation.
//!
//! Both intern tags through a [`TagInterner`] and key their lists on
//! `(TagId, …)`, so building clones each distinct tag once and lookups
//! hash two integers instead of a string (and allocate nothing — the
//! `to_lowercase()` normalization happens at intern time).
//!
//! Both expose the same query interface returning a
//! [`crate::topk::TopKResult`] with cost counters, which is what experiment
//! E5 sweeps across clustering strategies and thresholds θ.

use crate::cluster::{ClusterId, UserClustering};
use crate::inline::InlineVec;
use crate::posting::{PostingList, BYTES_PER_ENTRY};
use crate::refinement::{RefinementIndex, ResolvedRefinement};
use crate::sitemodel::SiteModel;
use crate::tags::{QueryTags, TagId, TagInterner};
use crate::topk::{top_k_hinted_with, top_k_with, TopKResult, TopKScratch};
use serde::{Deserialize, Serialize};
use socialscope_graph::{FxBuildHasher, FxHashMap, NodeId};

/// Space statistics of an index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of inverted lists.
    pub lists: usize,
    /// Total number of entries across all lists.
    pub entries: usize,
    /// Estimated size in bytes (10 bytes per entry, as in the paper).
    pub bytes: usize,
}

fn stats_of<K>(lists: &FxHashMap<K, PostingList>) -> IndexStats {
    let entries = lists.values().map(PostingList::len).sum();
    IndexStats { lists: lists.len(), entries, bytes: entries * BYTES_PER_ENTRY }
}

/// Stack buffer for the per-keyword lists of one query: queries rarely carry
/// more than a handful of keywords, so gathering their lists should not
/// touch the heap.
const INLINE_KEYWORDS: usize = 8;

/// Lists at most this long answer random accesses by scanning their (cache-
/// warm) sorted entries; longer ones bisect the item-ordered companion.
const SCAN_ENTRIES_MAX: usize = 16;

/// Find a tag's list in a user's tag-sorted vector. Users rarely hold more
/// than a handful of tags, so a linear scan wins over bisection.
fn find_tag(by_tag: &[(TagId, PostingList)], tag: TagId) -> Option<&PostingList> {
    by_tag.iter().find(|(t, _)| *t == tag).map(|(_, l)| l)
}
static EMPTY_LIST: PostingList = PostingList::new();

/// The per-keyword posting lists of one query, inline for the usual small
/// keyword counts.
struct QueryLists<'a> {
    lists: InlineVec<&'a PostingList, INLINE_KEYWORDS>,
}

impl<'a> QueryLists<'a> {
    fn gather(found: impl Iterator<Item = &'a PostingList>) -> Self {
        let mut lists = QueryLists { lists: InlineVec::new(&EMPTY_LIST) };
        for list in found {
            lists.lists.push(list);
        }
        lists
    }

    fn as_slice(&self) -> &[&'a PostingList] {
        self.lists.as_slice()
    }
}

/// Accumulate the per-user exact scores of one `(item, tag)` assignment
/// group into `per_user` (cleared first): every user whose network contains
/// a tagger gains +1 per such tagger.
fn accumulate_per_user(
    site: &SiteModel,
    taggers: &[NodeId],
    per_user: &mut FxHashMap<NodeId, f64>,
) {
    per_user.clear();
    for &tagger in taggers {
        for &user in site.network_of(tagger) {
            *per_user.entry(user).or_default() += 1.0;
        }
    }
}

/// The tag-sorted posting lists of one user (the exact index's per-user
/// row).
type UserLists = Vec<(TagId, PostingList)>;

/// Reusable scratch arena for batch query evaluation: the slot-resolution
/// buffer that orders a batch by index layout, plus the top-k evaluation
/// state (candidate heap + seen set) threaded through every query of the
/// batch. One arena serves any number of `query_batch_with` calls — a
/// serving thread keeps one per worker and pays the setup allocations
/// once, not once per query.
#[derive(Default)]
pub struct BatchScratch {
    /// `(layout key, original batch position)` pairs, sorted so the batch
    /// walks the index in storage order.
    order: Vec<(u32, u32)>,
    /// Shared threshold-evaluation state.
    topk: TopKScratch,
    /// Cluster-span buffer for the clustered engine's per-user report.
    spans: Vec<ClusterId>,
}

/// Layout key marking a batch member with no row in the index (unknown
/// user / unclustered user): sorts after every real slot.
const NO_SLOT: u32 = u32::MAX;

/// Borrowed scratch pieces one clustered query evaluation threads through
/// [`ClusteredIndex::query_gathered`]: the top-k state plus the reusable
/// cluster-span sort-dedup buffer (the batch path refills one allocation
/// across the whole batch).
struct ClusterScratch<'a> {
    topk: &'a mut TopKScratch,
    spans: &'a mut Vec<ClusterId>,
}

/// One cluster group's evaluation inputs, gathered once and shared by
/// every seeker of the group: the cluster's upper-bound lists, the query's
/// pre-resolved refinement view, and whether the group is the unclustered
/// one (`cluster_of` → `None`).
struct GatheredQuery<'q, 'i> {
    lists: &'q QueryLists<'i>,
    resolved: &'q ResolvedRefinement<'i>,
    unclustered: bool,
}

/// The exact per-`(tag, user)` index. Lists are grouped user-first and
/// packed densely in ascending user-id order: a query resolves its user to
/// a slot once in the outer table, then each keyword scans the user's
/// small tag-sorted vector — one or two cache lines instead of a hash
/// probe per keyword — and batch queries walk the slots in layout order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactIndex {
    tags: TagInterner,
    /// Maps a user to their slot in `users` — the single hash probe of a
    /// query.
    slots: FxHashMap<NodeId, u32>,
    /// Per-user rows, ascending by user id (the batch walk order).
    users: Vec<(NodeId, UserLists)>,
}

impl ExactIndex {
    /// Build the index from a site model: an entry `(k, u) → (i, s)` exists
    /// for every item `i` with non-zero score `s = score_k(i, u)`.
    ///
    /// Each `(item, tag)` assignment group is accumulated exactly once into
    /// a reused per-user scratch map, then scattered into the per-
    /// `(tag, user)` lists — no per-pair probing of the site's cross
    /// product, and no tag cloning beyond the one interning.
    pub fn build(site: &SiteModel) -> Self {
        /// Build-time accumulator: user → tag → item → score.
        type ScoreAcc = FxHashMap<NodeId, FxHashMap<TagId, FxHashMap<NodeId, f64>>>;
        let mut tags = TagInterner::new();
        let mut lists: ScoreAcc =
            FxHashMap::with_capacity_and_hasher(site.user_count(), FxBuildHasher::default());
        let mut per_user: FxHashMap<NodeId, f64> =
            FxHashMap::with_capacity_and_hasher(64, FxBuildHasher::default());
        for (item, tag, taggers) in site.tag_assignments() {
            let tag = tags.intern(tag);
            accumulate_per_user(site, taggers, &mut per_user);
            for (&user, &score) in &per_user {
                lists
                    .entry(user)
                    .or_insert_with(|| {
                        FxHashMap::with_capacity_and_hasher(8, FxBuildHasher::default())
                    })
                    .entry(tag)
                    .or_insert_with(|| {
                        FxHashMap::with_capacity_and_hasher(8, FxBuildHasher::default())
                    })
                    .insert(item, score);
            }
        }
        let mut users: Vec<(NodeId, UserLists)> = lists
            .into_iter()
            .map(|(user, by_tag)| {
                let mut by_tag: UserLists = by_tag
                    .into_iter()
                    .map(|(tag, items)| (tag, PostingList::from_entries(items)))
                    .collect();
                by_tag.sort_unstable_by_key(|(tag, _)| *tag);
                (user, by_tag)
            })
            .collect();
        users.sort_unstable_by_key(|(user, _)| *user);
        let slots = users
            .iter()
            .enumerate()
            .map(|(slot, (user, _))| {
                // NO_SLOT (u32::MAX) is reserved for "not indexed", so the
                // bound excludes it, not just anything past u32.
                let slot = u32::try_from(slot)
                    .ok()
                    .filter(|&s| s != NO_SLOT)
                    .expect("fewer than 2^32 - 1 indexed users");
                (*user, slot)
            })
            .collect();
        ExactIndex { tags, slots, users }
    }

    /// The tag symbol table the index is keyed on.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// The list for a `(tag, user)` pair, if any item scores above zero.
    /// Allocation-free when the probe tag is already lowercase.
    pub fn list(&self, tag: &str, user: NodeId) -> Option<&PostingList> {
        self.list_by_id(self.tags.get(tag)?, user)
    }

    /// The list for an interned `(tag, user)` pair.
    pub fn list_by_id(&self, tag: TagId, user: NodeId) -> Option<&PostingList> {
        find_tag(self.user_lists(user)?, tag)
    }

    /// The tag-sorted rows of one user, if indexed.
    fn user_lists(&self, user: NodeId) -> Option<&[(TagId, PostingList)]> {
        self.slots.get(&user).map(|&slot| self.users[slot as usize].1.as_slice())
    }

    /// Space statistics.
    pub fn stats(&self) -> IndexStats {
        let entries: usize =
            self.users.iter().flat_map(|(_, row)| row.iter()).map(|(_, l)| l.len()).sum();
        let lists: usize = self.users.iter().map(|(_, row)| row.len()).sum();
        IndexStats { lists, entries, bytes: entries * BYTES_PER_ENTRY }
    }

    /// Top-k query for a user: merge the user's per-keyword lists; the
    /// stored scores are exact, so the total score of a candidate is the sum
    /// of its stored scores across the query's lists. Duplicate keywords
    /// (in any casing) count once — a query is a keyword set. A query whose
    /// keyword set is empty — or resolves to nothing, e.g. all-stopword text
    /// after workload tokenization — returns the defined empty result
    /// (empty ranking, zero counters) without touching the user table,
    /// identically in the single and batch paths.
    pub fn query(&self, user: NodeId, keywords: &[String], k: usize) -> TopKResult {
        let tag_ids = QueryTags::resolve(&self.tags, keywords);
        if tag_ids.as_slice().is_empty() {
            return TopKResult::default();
        }
        self.query_resolved(
            self.user_lists(user),
            tag_ids.as_slice(),
            k,
            &mut TopKScratch::default(),
        )
    }

    /// Evaluate one resolved query against one user's rows. Shared verbatim
    /// by [`Self::query`] and the batch path, so batch results are
    /// element-wise identical — ranking and counters — to single calls.
    fn query_resolved(
        &self,
        user_lists: Option<&[(TagId, PostingList)]>,
        tag_ids: &[TagId],
        k: usize,
        scratch: &mut TopKScratch,
    ) -> TopKResult {
        // One probe of the big user table happened in the caller; each
        // keyword now scans the user's small tag-sorted vector.
        let lists =
            QueryLists::gather(tag_ids.iter().filter_map(|&tag| find_tag(user_lists?, tag)));
        let lists = lists.as_slice();
        let total: usize = lists.iter().map(|l| l.len()).sum();
        if total < k {
            return Self::merge_scan(lists, total);
        }
        // Stored scores are exact, so a candidate's total is the sum of its
        // stored scores; the score in the discovering list arrives as the
        // sorted-access hint, leaving one random access per *other* list.
        // (Summation order puts the hinted score first — indistinguishable
        // for the integral count scores of the paper's model.)
        let exact = |item: NodeId, found_in: usize, stored: f64| {
            let mut total = stored;
            for (li, list) in lists.iter().enumerate() {
                if li != found_in {
                    let entries = list.entries();
                    if entries.len() <= SCAN_ENTRIES_MAX {
                        // Short list: scan the entries the sorted accesses
                        // just pulled through the cache, with no early exit
                        // to mispredict.
                        for p in entries {
                            total += if p.item == item { p.score } else { 0.0 };
                        }
                    } else if let Some(s) = list.score_of(item) {
                        total += s;
                    }
                }
            }
            total
        };
        top_k_hinted_with(scratch, lists, k, exact)
    }

    /// Top-k for a whole batch of users sharing one keyword set — the
    /// paper's network-aware scoring ranks the *same* keywords differently
    /// per seeker, which makes the multi-user batch the natural serving
    /// unit. Keywords resolve to [`TagId`]s once for the batch, evaluation
    /// state is reused across users, and users are visited in index-layout
    /// order so the user-first storage is walked cache-friendly. Results
    /// arrive in input order and each equals the corresponding
    /// [`Self::query`] call exactly.
    pub fn query_batch(&self, users: &[NodeId], keywords: &[String], k: usize) -> Vec<TopKResult> {
        self.query_batch_with(&mut BatchScratch::default(), users, keywords, k)
    }

    /// [`Self::query_batch`] through a caller-owned [`BatchScratch`], so a
    /// serving loop pays the arena's allocations once, not per batch.
    pub fn query_batch_with(
        &self,
        scratch: &mut BatchScratch,
        users: &[NodeId],
        keywords: &[String],
        k: usize,
    ) -> Vec<TopKResult> {
        let tag_ids = QueryTags::resolve(&self.tags, keywords);
        let tag_ids = tag_ids.as_slice();
        let mut results: Vec<TopKResult> = Vec::with_capacity(users.len());
        // No keyword resolved to an indexed tag: every member's answer is
        // the same empty result a single query would produce, and the
        // whole batch is served without touching the per-user table — the
        // amortization a per-user loop structurally cannot have.
        if tag_ids.is_empty() {
            results.resize_with(users.len(), TopKResult::default);
            return results;
        }
        let BatchScratch { order, topk, .. } = scratch;
        order.clear();
        order.extend(users.iter().enumerate().map(|(position, user)| {
            (self.slots.get(user).copied().unwrap_or(NO_SLOT), position as u32)
        }));
        order.sort_unstable();
        results.resize_with(users.len(), TopKResult::default);
        for &(slot, position) in order.iter() {
            let rows = (slot != NO_SLOT).then(|| self.users[slot as usize].1.as_slice());
            results[position as usize] = self.query_resolved(rows, tag_ids, k, topk);
        }
        results
    }

    /// Degenerate top-k where the lists hold fewer than k entries: every
    /// entry is sorted-accessed, no candidate can be evicted and the
    /// threshold can never fire early (the buffer never fills), so the
    /// per-item sums can be accumulated in one merge over the lists —
    /// counters and ranking come out exactly as threshold processing would
    /// produce, with zero random accesses.
    fn merge_scan(lists: &[&PostingList], total: usize) -> TopKResult {
        let mut items: Vec<(NodeId, f64)> = Vec::with_capacity(total);
        let mut sorted_accesses = 0usize;
        if let Some((first, rest)) = lists.split_first() {
            // Items within one list are distinct: the first list bulk-loads.
            items.extend(first.entries().iter().map(|p| (p.item, p.score)));
            sorted_accesses += first.len();
            for list in rest {
                for p in list.entries() {
                    sorted_accesses += 1;
                    // Contributions arrive in list order, matching the
                    // order the per-candidate summation would add them in.
                    match items.iter_mut().find(|(i, _)| *i == p.item) {
                        Some((_, s)) => *s += p.score,
                        None => items.push((p.item, p.score)),
                    }
                }
            }
        }
        items.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let exact_computations = items.len();
        TopKResult::from_parts(items, sorted_accesses, exact_computations, false)
    }
}

/// The clustered index: one list per `(tag, cluster)` with score upper
/// bounds (Eq. 1), plus the keyword-first [`RefinementIndex`] the exact
/// per-candidate scores are recomputed from at query time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusteredIndex {
    tags: TagInterner,
    lists: FxHashMap<(TagId, ClusterId), PostingList>,
    refinement: RefinementIndex,
    /// The clustering the index was built for.
    pub clustering: UserClustering,
}

/// Cost counters specific to clustered query processing, reported alongside
/// the top-k result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusteredQueryReport {
    /// The top-k evaluation result and generic counters.
    pub result: TopKResult,
    /// How many distinct clusters the querying user's network members fall
    /// into — the fragmentation effect the paper attributes to
    /// behavior-based clustering.
    pub network_clusters_spanned: usize,
    /// Whether the seeker has no cluster (`cluster_of` → `None`): a user
    /// the site never saw, or one added after the clustering was built.
    /// The chosen semantic is **empty-with-flag**: such a user gets the
    /// defined empty ranking with zeroed counters — no upper-bound list
    /// exists to surface candidates from — and this flag set, identically
    /// in the single and batch paths, so callers can tell "no matches"
    /// from "not clustered yet, recluster or fall back to the exact
    /// index". `network_clusters_spanned` is still reported: the seeker's
    /// *network* may be clustered even when the seeker is not.
    pub unclustered: bool,
}

impl ClusteredIndex {
    /// Build the clustered index for a given clustering: the bound stored
    /// for `(k, C, i)` is `max_{u ∈ C} score_k(i, u)`. The same pass feeds
    /// every `(tag, item)` tagger group into the keyword-first
    /// [`RefinementIndex`] under the same interned ids, so query-time
    /// refinement never touches tag strings.
    pub fn build(site: &SiteModel, clustering: UserClustering) -> Self {
        let mut tags = TagInterner::new();
        let mut refinement = RefinementIndex::default();
        let mut bounds: FxHashMap<(TagId, ClusterId), FxHashMap<NodeId, f64>> =
            FxHashMap::with_capacity_and_hasher(
                clustering.cluster_count().saturating_mul(site.tag_count()) / 4 + 16,
                FxBuildHasher::default(),
            );
        let mut per_user: FxHashMap<NodeId, f64> =
            FxHashMap::with_capacity_and_hasher(64, FxBuildHasher::default());
        for (item, tag, taggers) in site.tag_assignments() {
            let tag = tags.intern(tag);
            refinement.insert(tag, item, taggers);
            // Per-user scores for this (item, tag), then max per cluster.
            accumulate_per_user(site, taggers, &mut per_user);
            for (&user, &score) in &per_user {
                let Some(cluster) = clustering.cluster_of(user) else {
                    continue;
                };
                let entry = bounds
                    .entry((tag, cluster))
                    .or_insert_with(|| {
                        FxHashMap::with_capacity_and_hasher(8, FxBuildHasher::default())
                    })
                    .entry(item)
                    .or_default();
                if score > *entry {
                    *entry = score;
                }
            }
        }
        let lists = bounds
            .into_iter()
            .map(|(key, items)| (key, PostingList::from_entries(items)))
            .collect();
        ClusteredIndex { tags, lists, refinement, clustering }
    }

    /// The tag symbol table the index is keyed on.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// The keyword-first `tag → item → taggers` refinement index exact
    /// scores are recomputed from.
    pub fn refinement(&self) -> &RefinementIndex {
        &self.refinement
    }

    /// The list for a `(tag, cluster)` pair. Allocation-free when the probe
    /// tag is already lowercase.
    pub fn list(&self, tag: &str, cluster: ClusterId) -> Option<&PostingList> {
        self.list_by_id(self.tags.get(tag)?, cluster)
    }

    /// The list for an interned `(tag, cluster)` pair.
    pub fn list_by_id(&self, tag: TagId, cluster: ClusterId) -> Option<&PostingList> {
        self.lists.get(&(tag, cluster))
    }

    /// Space statistics of the *upper-bound lists* alone — the quantity
    /// Eq. 1's space/exactness trade-off bounds against the exact index
    /// (clustered bound entries never exceed exact entries, a proptest
    /// invariant). The embedded refinement index is accounted separately:
    /// see [`Self::stats_with_refinement`].
    pub fn stats(&self) -> IndexStats {
        stats_of(&self.lists)
    }

    /// Space statistics of the full clustered deployment: the upper-bound
    /// lists *plus* the keyword-first refinement index. The refinement
    /// arena stores the same tagger groups the site model already holds —
    /// query-time refinement used to probe those at string-hashing cost —
    /// so this is storage *reoriented* for cheap random access, not new
    /// data; but it is what the clustered index actually occupies, and the
    /// honest number to weigh against [`ExactIndex::stats`].
    pub fn stats_with_refinement(&self) -> IndexStats {
        let bounds = self.stats();
        let refinement = self.refinement.stats();
        IndexStats {
            lists: bounds.lists + refinement.lists,
            entries: bounds.entries + refinement.entries,
            bytes: bounds.bytes + refinement.bytes,
        }
    }

    /// Top-k query for a user. Candidate generation uses the upper-bound
    /// lists of the user's own cluster; exact scores are recomputed at
    /// query time (the processing overhead the clustering trade-off
    /// accepts) through the keyword-first [`RefinementIndex`], whose tags
    /// the query pre-resolves exactly once. Duplicate keywords (in any
    /// casing) count once — a query is a keyword set — and an empty or
    /// fully-unknown keyword set returns the defined empty result (empty
    /// ranking, zero counters). `site` must be the model the index was
    /// built from. An unclustered user gets the empty-with-flag semantic
    /// documented on [`ClusteredQueryReport::unclustered`].
    pub fn query(
        &self,
        site: &SiteModel,
        user: NodeId,
        keywords: &[String],
        k: usize,
    ) -> ClusteredQueryReport {
        let tag_ids = QueryTags::resolve(&self.tags, keywords);
        let resolved = self.refinement.resolve(tag_ids.as_slice());
        let cluster = self.clustering.cluster_of(user);
        let lists = self.gather_cluster_lists(cluster, tag_ids.as_slice());
        let (mut topk, mut spans) = (TopKScratch::default(), Vec::new());
        let scratch = ClusterScratch { topk: &mut topk, spans: &mut spans };
        let gathered =
            GatheredQuery { lists: &lists, resolved: &resolved, unclustered: cluster.is_none() };
        self.query_gathered(site, user, &gathered, k, scratch)
    }

    /// The upper-bound lists of one cluster for a resolved keyword set.
    fn gather_cluster_lists(
        &self,
        cluster: Option<ClusterId>,
        tag_ids: &[TagId],
    ) -> QueryLists<'_> {
        QueryLists::gather(
            tag_ids.iter().filter_map(|&tag| cluster.and_then(|c| self.list_by_id(tag, c))),
        )
    }

    /// Evaluate one user against one gathered cluster group. Shared by
    /// [`Self::query`] and the batch path, so batch results are
    /// element-wise identical to single calls. The gathered refinement view
    /// is resolved once per query (per batch in the batch path) —
    /// exact-score recomputation runs once per candidate, so per-query
    /// work must stay out of it: the closure handed to the top-k kernel
    /// closes over the pre-gathered per-tag maps and the seeker's frozen
    /// network slice, nothing else.
    fn query_gathered(
        &self,
        site: &SiteModel,
        user: NodeId,
        gathered: &GatheredQuery<'_, '_>,
        k: usize,
        scratch: ClusterScratch<'_>,
    ) -> ClusteredQueryReport {
        let ClusterScratch { topk, spans } = scratch;
        let network = site.network_of(user);
        let resolved = gathered.resolved;
        let result =
            top_k_with(topk, gathered.lists.as_slice(), k, |item| resolved.score(network, item));
        spans.clear();
        spans.extend(network.iter().filter_map(|v| self.clustering.cluster_of(*v)));
        spans.sort_unstable();
        spans.dedup();
        ClusteredQueryReport {
            result,
            network_clusters_spanned: spans.len(),
            unclustered: gathered.unclustered,
        }
    }

    /// Top-k for a whole batch of users sharing one keyword set. Keywords
    /// resolve once and the refinement index's per-tag maps are
    /// pre-resolved once *for the whole batch*, users are grouped by
    /// cluster so each cluster's upper-bound lists are gathered a single
    /// time and walked while hot, and the evaluation scratch is reused
    /// across the batch. Results arrive in input order and each equals the
    /// corresponding [`Self::query`] call exactly — unclustered members
    /// included (empty-with-flag, see
    /// [`ClusteredQueryReport::unclustered`]).
    pub fn query_batch(
        &self,
        site: &SiteModel,
        users: &[NodeId],
        keywords: &[String],
        k: usize,
    ) -> Vec<ClusteredQueryReport> {
        self.query_batch_with(&mut BatchScratch::default(), site, users, keywords, k)
    }

    /// [`Self::query_batch`] through a caller-owned [`BatchScratch`].
    pub fn query_batch_with(
        &self,
        scratch: &mut BatchScratch,
        site: &SiteModel,
        users: &[NodeId],
        keywords: &[String],
        k: usize,
    ) -> Vec<ClusteredQueryReport> {
        let tag_ids = QueryTags::resolve(&self.tags, keywords);
        let resolved = self.refinement.resolve(tag_ids.as_slice());
        let BatchScratch { order, topk, spans } = scratch;
        order.clear();
        order.extend(users.iter().enumerate().map(|(position, user)| {
            let cluster = self
                .clustering
                .cluster_of(*user)
                // NO_SLOT (u32::MAX) is reserved for "unclustered", so the
                // bound excludes it, not just anything past u32.
                .map(|c| {
                    u32::try_from(c.0)
                        .ok()
                        .filter(|&s| s != NO_SLOT)
                        .expect("fewer than 2^32 - 1 clusters")
                })
                .unwrap_or(NO_SLOT);
            (cluster, position as u32)
        }));
        order.sort_unstable();
        let mut results: Vec<ClusteredQueryReport> = Vec::with_capacity(users.len());
        results.resize_with(users.len(), ClusteredQueryReport::default);
        let mut start = 0usize;
        while start < order.len() {
            let key = order[start].0;
            let end = start
                + order[start..].iter().position(|&(c, _)| c != key).unwrap_or(order.len() - start);
            let cluster = (key != NO_SLOT).then_some(ClusterId(key as usize));
            let lists = self.gather_cluster_lists(cluster, tag_ids.as_slice());
            let gathered = GatheredQuery {
                lists: &lists,
                resolved: &resolved,
                unclustered: cluster.is_none(),
            };
            for &(_, position) in &order[start..end] {
                let user = users[position as usize];
                let scratch = ClusterScratch { topk: &mut *topk, spans: &mut *spans };
                results[position as usize] = self.query_gathered(site, user, &gathered, k, scratch);
            }
            start = end;
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{BehaviorBasedClustering, ClusteringStrategy, NetworkBasedClustering};
    use crate::topk::top_k_exhaustive;
    use socialscope_graph::GraphBuilder;

    /// A small tagging site with two friend groups and overlapping tags.
    fn site() -> (SiteModel, Vec<NodeId>, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let users: Vec<NodeId> = (0..6).map(|i| b.add_user(&format!("u{i}"))).collect();
        let items: Vec<NodeId> =
            (0..5).map(|i| b.add_item(&format!("i{i}"), &["destination"])).collect();
        // Group A: u0-u1-u2 clique.
        b.befriend(users[0], users[1]);
        b.befriend(users[1], users[2]);
        b.befriend(users[0], users[2]);
        // Group B: u3-u4-u5 clique.
        b.befriend(users[3], users[4]);
        b.befriend(users[4], users[5]);
        b.befriend(users[3], users[5]);
        // Tags: group A tags items 0-2 with "baseball"; group B tags 2-4
        // with "museum"; item 2 is shared.
        b.tag(users[1], items[0], &["baseball"]);
        b.tag(users[2], items[1], &["baseball", "stadium"]);
        b.tag(users[1], items[2], &["baseball"]);
        b.tag(users[4], items[2], &["museum"]);
        b.tag(users[5], items[3], &["museum"]);
        b.tag(users[4], items[4], &["museum", "history"]);
        (SiteModel::from_graph(&b.build()), users, items)
    }

    #[test]
    fn exact_index_scores_match_site_model() {
        let (site, users, items) = site();
        let index = ExactIndex::build(&site);
        // score_baseball(i0, u0): network(u0) = {u1, u2}; u1 tagged i0.
        let list = index.list("baseball", users[0]).unwrap();
        assert_eq!(list.score_of(items[0]), Some(1.0));
        assert_eq!(
            list.score_of(items[0]).unwrap(),
            site.keyword_score(items[0], users[0], "baseball")
        );
        // Every stored entry agrees with the model.
        for tag in site.tags() {
            for u in site.users() {
                if let Some(list) = index.list(tag, u) {
                    for p in list.iter() {
                        assert_eq!(p.score, site.keyword_score(p.item, u, tag));
                    }
                }
            }
        }
    }

    #[test]
    fn lookups_intern_and_normalize_tags() {
        let (site, users, _) = site();
        let index = ExactIndex::build(&site);
        // The interner holds each distinct stored tag exactly once.
        assert_eq!(index.tags().len(), site.tag_count());
        // Any casing of the probe resolves to the same interned list.
        let id = index.tags().get("BASEBALL").unwrap();
        assert_eq!(index.tags().resolve(id), Some("baseball"));
        assert_eq!(
            index.list("BaseBall", users[0]).map(PostingList::len),
            index.list_by_id(id, users[0]).map(PostingList::len)
        );
        assert!(index.list("nonexistent", users[0]).is_none());
    }

    #[test]
    fn exact_index_query_matches_exhaustive_oracle() {
        let (site, users, _) = site();
        let index = ExactIndex::build(&site);
        let keywords = vec!["baseball".to_string(), "museum".to_string()];
        for &u in &users {
            let res = index.query(u, &keywords, 3);
            let oracle = top_k_exhaustive(site.items(), 3, |i| site.query_score(i, u, &keywords));
            // Every returned score is the true score of the returned item.
            for (item, score) in &res.ranked {
                assert_eq!(*score, site.query_score(*item, u, &keywords));
            }
            // The positive part of the ranking (ignoring zero-score padding
            // and tie order) matches the exhaustive oracle.
            let oracle_scores: Vec<f64> =
                oracle.ranked.iter().map(|(_, s)| *s).filter(|s| *s > 0.0).collect();
            let got_scores: Vec<f64> =
                res.ranked.iter().map(|(_, s)| *s).filter(|s| *s > 0.0).collect();
            assert_eq!(got_scores, oracle_scores, "user {u}");
        }
    }

    #[test]
    fn clustered_index_is_smaller_and_bounds_are_admissible() {
        let (site, _, _) = site();
        let exact = ExactIndex::build(&site);
        let clustering = NetworkBasedClustering.cluster(&site, 0.3);
        let clustered = ClusteredIndex::build(&site, clustering);

        let es = exact.stats();
        let cs = clustered.stats();
        assert!(cs.entries <= es.entries, "clustered {cs:?} vs exact {es:?}");
        assert!(cs.lists <= es.lists);

        // Admissibility: every stored bound dominates the exact score of
        // every member of the cluster.
        for tag in site.tags() {
            for (cluster, members) in clustered.clustering.iter() {
                if let Some(list) = clustered.list(tag, cluster) {
                    for p in list.iter() {
                        for &u in members {
                            assert!(
                                p.score + 1e-9 >= site.keyword_score(p.item, u, tag),
                                "bound {} < exact for user {u}",
                                p.score
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clustered_query_returns_true_top_k() {
        let (site, users, _) = site();
        let clustering = NetworkBasedClustering.cluster(&site, 0.3);
        let clustered = ClusteredIndex::build(&site, clustering);
        let keywords = vec!["baseball".to_string()];
        for &u in &users {
            let report = clustered.query(&site, u, &keywords, 2);
            let oracle = top_k_exhaustive(site.items(), 2, |i| site.query_score(i, u, &keywords));
            let oracle_scores: Vec<f64> =
                oracle.ranked.iter().map(|(_, s)| *s).filter(|s| *s > 0.0).collect();
            let got_scores: Vec<f64> =
                report.result.ranked.iter().map(|(_, s)| *s).filter(|s| *s > 0.0).collect();
            assert_eq!(got_scores, oracle_scores, "user {u}");
        }
    }

    #[test]
    fn behavior_clustering_spans_more_network_clusters() {
        let (site, users, _) = site();
        let net = ClusteredIndex::build(&site, NetworkBasedClustering.cluster(&site, 0.5));
        let beh = ClusteredIndex::build(&site, BehaviorBasedClustering.cluster(&site, 0.5));
        let keywords = vec!["baseball".to_string()];
        let net_span = net.query(&site, users[0], &keywords, 2).network_clusters_spanned;
        let beh_span = beh.query(&site, users[0], &keywords, 2).network_clusters_spanned;
        // u0's friends (u1, u2) share one network-based cluster but tag
        // different item sets, so they split across behaviour clusters.
        assert!(beh_span >= net_span);
    }

    #[test]
    fn stats_count_entries_and_bytes() {
        let (site, ..) = site();
        let index = ExactIndex::build(&site);
        let s = index.stats();
        assert!(s.entries > 0);
        assert_eq!(s.bytes, s.entries * BYTES_PER_ENTRY);
        assert!(s.lists > 0);
    }

    #[test]
    fn clustered_stats_account_for_the_refinement_index() {
        let (site, ..) = site();
        let clustered = ClusteredIndex::build(&site, NetworkBasedClustering.cluster(&site, 0.3));
        let bounds = clustered.stats();
        let refinement = clustered.refinement().stats();
        let total = clustered.stats_with_refinement();
        // The refinement arena holds exactly the site's tagger references,
        // one list per (tag, item) group.
        let tagger_refs: usize = site.tag_assignments().map(|(_, _, t)| t.len()).sum();
        let groups = site.tag_assignments().count();
        assert_eq!(refinement.entries, tagger_refs);
        assert_eq!(refinement.lists, groups);
        assert_eq!(refinement.bytes, tagger_refs * BYTES_PER_ENTRY);
        assert_eq!(total.entries, bounds.entries + refinement.entries);
        assert_eq!(total.lists, bounds.lists + refinement.lists);
        assert_eq!(total.bytes, bounds.bytes + refinement.bytes);
    }

    #[test]
    fn unknown_user_or_tag_queries_are_empty() {
        let (site, ..) = site();
        let index = ExactIndex::build(&site);
        let res = index.query(NodeId(9999), &["baseball".to_string()], 3);
        assert!(res.ranked.is_empty());
        let res = index.query(NodeId(1), &["nonexistent".to_string()], 3);
        assert!(res.ranked.is_empty());
    }

    #[test]
    fn refinement_index_stores_the_site_tagger_groups() {
        let (site, _, _) = site();
        let clustered = ClusteredIndex::build(&site, NetworkBasedClustering.cluster(&site, 0.3));
        let refinement = clustered.refinement();
        let mut groups = 0usize;
        for (item, tag, taggers) in site.tag_assignments() {
            let id = clustered.tags().get(tag).expect("stored tag is interned");
            assert_eq!(refinement.taggers(id, item), taggers);
            groups += 1;
        }
        assert_eq!(refinement.group_count(), groups);
    }

    /// Empty keyword sets — literally empty, or all-unknown after workload
    /// tokenization dropped every token — get the *defined* empty result:
    /// empty ranking, zero counters, identical across single and batch
    /// paths of both engines.
    #[test]
    fn empty_keyword_sets_get_the_defined_empty_result() {
        let (site, users, _) = site();
        let exact = ExactIndex::build(&site);
        let clustered = ClusteredIndex::build(&site, NetworkBasedClustering.cluster(&site, 0.3));
        let empty: Vec<String> = Vec::new();
        let unknown = vec!["nonexistent".to_string(), "alsounknown".to_string()];
        for keywords in [&empty, &unknown] {
            for &u in &users {
                let res = exact.query(u, keywords, 3);
                assert_eq!(res, TopKResult::default());
                let report = clustered.query(&site, u, keywords, 3);
                assert_eq!(report.result, TopKResult::default());
                assert!(!report.unclustered, "every site user is clustered");
            }
            let batch = exact.query_batch(&users, keywords, 3);
            assert!(batch.iter().all(|r| r == &TopKResult::default()));
            let batch = clustered.query_batch(&site, &users, keywords, 3);
            for (got, &u) in batch.iter().zip(&users) {
                assert_eq!(got, &clustered.query(&site, u, keywords, 3));
            }
        }
    }

    /// A user added to the site *after* the clustering was built has no
    /// cluster: the documented semantic is an empty ranking with zeroed
    /// counters and `unclustered` set — identical in the single and batch
    /// paths — while `network_clusters_spanned` still reflects the user's
    /// (clustered) friends.
    #[test]
    fn unclustered_users_get_the_empty_with_flag_semantic() {
        // Build the clustering from the original six-user site…
        let (before, users, _) = site();
        let clustering = NetworkBasedClustering.cluster(&before, 0.3);
        // …then rebuild the graph with a late-joining user who befriends u1
        // and tags an item, and index the *new* site with the old
        // clustering (the "user added after clustering was built" case).
        let mut b = GraphBuilder::new();
        let rebuilt: Vec<NodeId> = (0..6).map(|i| b.add_user(&format!("u{i}"))).collect();
        let items: Vec<NodeId> =
            (0..5).map(|i| b.add_item(&format!("i{i}"), &["destination"])).collect();
        b.befriend(rebuilt[0], rebuilt[1]);
        b.befriend(rebuilt[1], rebuilt[2]);
        b.befriend(rebuilt[0], rebuilt[2]);
        b.befriend(rebuilt[3], rebuilt[4]);
        b.befriend(rebuilt[4], rebuilt[5]);
        b.befriend(rebuilt[3], rebuilt[5]);
        b.tag(rebuilt[1], items[0], &["baseball"]);
        b.tag(rebuilt[2], items[1], &["baseball", "stadium"]);
        b.tag(rebuilt[1], items[2], &["baseball"]);
        b.tag(rebuilt[4], items[2], &["museum"]);
        b.tag(rebuilt[5], items[3], &["museum"]);
        b.tag(rebuilt[4], items[4], &["museum", "history"]);
        let late = b.add_user("late-joiner");
        b.befriend(late, rebuilt[1]);
        b.tag(late, items[0], &["baseball"]);
        let site = SiteModel::from_graph(&b.build());
        assert_eq!(rebuilt, users, "rebuilt ids must match the clustering's");
        assert!(clustering.cluster_of(late).is_none());

        let clustered = ClusteredIndex::build(&site, clustering);
        let keywords = vec!["baseball".to_string()];
        let report = clustered.query(&site, late, &keywords, 3);
        assert!(report.unclustered);
        assert!(report.result.ranked.is_empty());
        assert_eq!(report.result.sorted_accesses, 0);
        assert_eq!(report.result.exact_computations, 0);
        // The late joiner's friend u1 is clustered, so the span is visible.
        assert_eq!(report.network_clusters_spanned, 1);
        // Clustered members keep the flag unset, and the batch path agrees
        // element-wise with single queries for both kinds of member.
        let batch = vec![late, users[0], late, users[4]];
        for (got, &u) in clustered.query_batch(&site, &batch, &keywords, 3).iter().zip(&batch) {
            assert_eq!(got, &clustered.query(&site, u, &keywords, 3));
            assert_eq!(got.unclustered, u == late);
        }
    }
}
